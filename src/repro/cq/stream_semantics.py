"""CQ semantics over streams (paper, Section 4, "CQ over streams").

Given a CQ ``Q`` with atom identifiers ``Ω = I(Q)`` and a stream ``S``, the
output at position ``n`` is the set of valuations ``η̂`` obtained from the
t-homomorphisms ``η`` from ``Q`` to the prefix database ``D_n[S]``::

    ⟦Q⟧_n(S) = { η̂ | η is a t-homomorphism from Q to D_n[S] }

where ``η̂(i) = {η(i)}`` maps each atom identifier to the singleton containing
the stream position it was matched to.  This is the yardstick that a PCEA must
match (``P ≡ Q``) and the ground truth for the streaming-engine tests.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set

from repro.cq.database import Database
from repro.cq.homomorphism import enumerate_t_homomorphisms
from repro.cq.query import ConjunctiveQuery
from repro.cq.schema import Schema, Tuple
from repro.valuation import Valuation


def _database_of_prefix(
    tuples: Sequence[Tuple],
    position: int,
    schema: Schema | None,
    query: ConjunctiveQuery | None = None,
    start: int = 0,
) -> Database:
    """Database of positions ``start .. position`` with positions as identifiers.

    When no schema is given, one is inferred from both the observed tuples and
    the query's atoms, so that relations mentioned by the query but not (yet)
    present in the stream prefix are still valid lookup targets.
    """
    if position >= len(tuples):
        raise IndexError(f"position {position} beyond stream of length {len(tuples)}")
    window = {i: tuples[i] for i in range(start, position + 1)}
    if schema is None:
        arities = {}
        if query is not None:
            arities.update(query.infer_schema().arities)
        for tup in window.values():
            arities.setdefault(tup.relation, tup.arity)
        schema = Schema(arities)
    return Database(schema, window)


def cq_stream_output(
    query: ConjunctiveQuery,
    stream: Iterable[Tuple],
    position: int,
    window: int | None = None,
    schema: Schema | None = None,
) -> Set[Valuation]:
    """Compute ``⟦Q⟧_n(S)`` (optionally restricted to a sliding window).

    Parameters
    ----------
    query:
        The conjunctive query; its atom identifiers are the labels of the
        output valuations.
    stream:
        A stream (any iterable of tuples; a :class:`repro.streams.Stream` or a
        plain list both work).
    position:
        The position ``n`` at which to evaluate.
    window:
        When given, only valuations ``ν`` with ``position - min(ν) <= window``
        are returned — the sliding-window output ``⟦Q⟧^w_n(S)`` used to compare
        against Algorithm 1.
    schema:
        Optional schema for the prefix database.

    Returns
    -------
    set of :class:`~repro.valuation.Valuation`
        One valuation per t-homomorphism, mapping atom identifiers to
        singleton position sets.
    """
    tuples = _as_sequence(stream, position)
    database = _database_of_prefix(tuples, position, schema, query)
    outputs: Set[Valuation] = set()
    for t_hom in enumerate_t_homomorphisms(query, database):
        valuation = Valuation({atom_id: {pos} for atom_id, pos in t_hom.items()})
        if window is None or valuation.within_window(position, window):
            outputs.add(valuation)
    return outputs


def cq_stream_new_outputs(
    query: ConjunctiveQuery,
    stream: Iterable[Tuple],
    position: int,
    window: int | None = None,
    schema: Schema | None = None,
) -> Set[Valuation]:
    """Outputs at ``position`` that *use* the tuple at ``position``.

    Streaming engines report, at each position, the outputs fired by the last
    tuple; this helper provides the matching ground truth (the valuations of
    ``⟦Q⟧_n(S)`` whose maximum position equals ``n``).
    """
    return {
        valuation
        for valuation in cq_stream_output(query, stream, position, window, schema)
        if valuation.max_position() == position
    }


def _as_sequence(stream: Iterable[Tuple], position: int) -> Sequence[Tuple]:
    if hasattr(stream, "materialise"):
        return stream.materialise(position + 1)  # type: ignore[attr-defined]
    if isinstance(stream, Sequence):
        return stream
    return list(stream)
