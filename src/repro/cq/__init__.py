"""Conjunctive-query substrate.

This subpackage implements the relational machinery that the paper's Section 2
and Section 4 depend on:

* schemas, tuples and data values (:mod:`repro.cq.schema`),
* bags with element identity (:mod:`repro.cq.bag`),
* relational databases with duplicates (:mod:`repro.cq.database`),
* conjunctive queries and their structural classes
  (:mod:`repro.cq.query`, :mod:`repro.cq.hierarchical`, :mod:`repro.cq.acyclic`),
* homomorphisms, t-homomorphisms and bag semantics
  (:mod:`repro.cq.homomorphism`),
* CQ semantics over streams (:mod:`repro.cq.stream_semantics`).
"""

from repro.cq.bag import Bag
from repro.cq.schema import Schema, Tuple
from repro.cq.database import Database
from repro.cq.query import Atom, ConjunctiveQuery, Variable
from repro.cq.hierarchical import is_hierarchical, build_q_tree, QTree
from repro.cq.acyclic import is_acyclic, build_join_tree
from repro.cq.homomorphism import (
    Homomorphism,
    THomomorphism,
    enumerate_homomorphisms,
    enumerate_t_homomorphisms,
    bag_semantics,
    chaudhuri_vardi_semantics,
)
from repro.cq.stream_semantics import cq_stream_output

__all__ = [
    "Bag",
    "Schema",
    "Tuple",
    "Database",
    "Atom",
    "ConjunctiveQuery",
    "Variable",
    "is_hierarchical",
    "build_q_tree",
    "QTree",
    "is_acyclic",
    "build_join_tree",
    "Homomorphism",
    "THomomorphism",
    "enumerate_homomorphisms",
    "enumerate_t_homomorphisms",
    "bag_semantics",
    "chaudhuri_vardi_semantics",
    "cq_stream_output",
]
