"""Bags (multisets) with element identity (paper, Section 4).

The paper represents a bag as a surjective function ``B : I -> U`` from a
finite set of identifiers to the underlying set.  Identity matters because the
bag semantics of conjunctive queries is defined through *t-homomorphisms*,
which map atom identifiers to tuple identifiers.

:class:`Bag` keeps that representation literally: it is a mapping from
identifiers (arbitrary hashable keys, by default consecutive integers) to
elements.  Equality between bags is multiplicity equality ("equal up to a
renaming of the identifiers"), exactly as in the paper.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Generic, Hashable, Iterable, Iterator, Mapping, Tuple as Tup, TypeVar

E = TypeVar("E", bound=Hashable)
I = TypeVar("I", bound=Hashable)


class Bag(Generic[E]):
    """A bag ``B : I -> U`` with explicit element identity.

    Parameters
    ----------
    elements:
        Either an iterable of elements (identifiers ``0..n-1`` are assigned in
        iteration order, mirroring the paper's ``{{a_0, ..., a_{n-1}}}``
        notation) or a mapping from identifiers to elements.

    Examples
    --------
    >>> b = Bag(["a", "a", "b"])
    >>> b.multiplicity("a")
    2
    >>> sorted(b.identifiers())
    [0, 1, 2]
    >>> b == Bag({"x": "a", "y": "a", "z": "b"})
    True
    """

    __slots__ = ("_mapping",)

    def __init__(self, elements: Iterable[E] | Mapping[Hashable, E] = ()) -> None:
        if isinstance(elements, Mapping):
            self._mapping: Dict[Hashable, E] = dict(elements)
        else:
            self._mapping = {index: element for index, element in enumerate(elements)}

    # ------------------------------------------------------------------ basic
    def identifiers(self) -> frozenset:
        """The identifier set ``I(B)``."""
        return frozenset(self._mapping)

    def underlying_set(self) -> frozenset:
        """The underlying set ``U(B)``."""
        return frozenset(self._mapping.values())

    def __getitem__(self, identifier: Hashable) -> E:
        return self._mapping[identifier]

    def get(self, identifier: Hashable, default: E | None = None) -> E | None:
        return self._mapping.get(identifier, default)

    def items(self) -> Iterator[Tup[Hashable, E]]:
        """Iterate over ``(identifier, element)`` pairs."""
        return iter(self._mapping.items())

    def __iter__(self) -> Iterator[E]:
        """Iterate over elements *with multiplicity* (identifier order is arbitrary)."""
        return iter(self._mapping.values())

    def __len__(self) -> int:
        """Total number of elements, counting multiplicity."""
        return len(self._mapping)

    def __bool__(self) -> bool:
        return bool(self._mapping)

    def __contains__(self, element: object) -> bool:
        """``a in B`` iff ``B(i) = a`` for some identifier ``i``."""
        return element in self._mapping.values()

    # ------------------------------------------------------ bag-algebra layer
    def multiplicity(self, element: E) -> int:
        """``mult_B(a)``: number of identifiers mapped to ``element``."""
        return sum(1 for value in self._mapping.values() if value == element)

    def counter(self) -> Counter:
        """Return the multiplicity function as a :class:`collections.Counter`."""
        return Counter(self._mapping.values())

    def contained_in(self, other: "Bag[E]") -> bool:
        """``self ⊆ other`` iff every multiplicity in ``self`` is ≤ in ``other``."""
        mine, theirs = self.counter(), other.counter()
        return all(theirs[element] >= count for element, count in mine.items())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Bag):
            return self.counter() == other.counter()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self.counter().items()))

    # ----------------------------------------------------------- constructors
    def restrict(self, predicate) -> "Bag[E]":
        """Sub-bag of elements satisfying ``predicate``, keeping identifiers."""
        return Bag({i: e for i, e in self._mapping.items() if predicate(e)})

    def restrict_identifiers(self, identifiers: Iterable[Hashable]) -> "Bag[E]":
        """Sub-bag restricted to the given identifiers (missing ids are ignored)."""
        wanted = set(identifiers)
        return Bag({i: e for i, e in self._mapping.items() if i in wanted})

    def map(self, func) -> "Bag":
        """Point-wise application of ``func`` to elements, keeping identifiers."""
        return Bag({i: func(e) for i, e in self._mapping.items()})

    def with_element(self, identifier: Hashable, element: E) -> "Bag[E]":
        """Return a copy with ``identifier -> element`` added (or replaced)."""
        mapping = dict(self._mapping)
        mapping[identifier] = element
        return Bag(mapping)

    def union(self, other: "Bag[E]") -> "Bag[E]":
        """Additive (bag) union; identifiers of ``other`` are re-keyed to avoid clashes."""
        mapping: Dict[Hashable, E] = dict(self._mapping)
        for identifier, element in other.items():
            key = identifier
            while key in mapping:
                key = (key, "+")
            mapping[key] = element
        return Bag(mapping)

    def as_mapping(self) -> Dict[Hashable, E]:
        """Return a copy of the underlying ``I -> U`` mapping."""
        return dict(self._mapping)

    def __repr__(self) -> str:
        inner = ", ".join(f"{i}: {e!r}" for i, e in sorted(self._mapping.items(), key=lambda kv: str(kv[0])))
        return f"Bag({{{inner}}})"


def bag_of(*elements: E) -> Bag[E]:
    """Build a bag ``{{e_0, ..., e_{n-1}}}`` with integer identifiers."""
    return Bag(elements)
