"""Conjunctive queries (paper, Section 4).

A CQ has the form ``Q(x̄) ← R_0(x̄_0), ..., R_{m-1}(x̄_{m-1})`` where each
``x̄_i`` mixes variables and data values (constants).  The body is treated as a
*bag of atoms*: ``I(Q)`` is the set of atom positions ``0..m-1`` and ``U(Q)``
the set of distinct atoms, which is what the bag semantics (t-homomorphisms)
relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Sequence, Tuple as Tup, Union

from repro.cq.bag import Bag
from repro.cq.schema import DataValue, Schema, SchemaError, Tuple


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable, disjoint from the set of data values.

    >>> x = Variable("x")
    >>> x.name
    'x'
    """

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


Term = Union[Variable, DataValue]


def is_variable(term: Term) -> bool:
    """Return ``True`` when ``term`` is a :class:`Variable` (not a constant)."""
    return isinstance(term, Variable)


@dataclass(frozen=True)
class Atom:
    """A query atom ``R(x̄)`` whose terms mix variables and constants.

    >>> x, y = Variable("x"), Variable("y")
    >>> a = Atom("S", (x, y))
    >>> sorted(v.name for v in a.variables())
    ['x', 'y']
    >>> str(a)
    'S(x, y)'
    """

    relation: str
    terms: Tup[Term, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.terms, tuple):
            object.__setattr__(self, "terms", tuple(self.terms))
        # Precomputed fast-path flag for ``matches``: with pairwise-distinct
        # variables and no constants, any tuple of the right relation and
        # arity is a homomorphic image — no per-call assignment dict needed.
        trivially_matched = len(set(self.terms)) == len(self.terms) and all(
            isinstance(term, Variable) for term in self.terms
        )
        object.__setattr__(self, "_trivially_matched", trivially_matched)

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> frozenset[Variable]:
        """The set of variables ``{x̄}`` appearing in the atom."""
        return frozenset(t for t in self.terms if isinstance(t, Variable))

    def constants(self) -> frozenset:
        """The set of data values (constants) appearing in the atom."""
        return frozenset(t for t in self.terms if not isinstance(t, Variable))

    def positions_of(self, term: Term) -> tuple[int, ...]:
        """All positions where ``term`` occurs in the atom."""
        return tuple(i for i, t in enumerate(self.terms) if t == term)

    def matches(self, tup: Tuple) -> bool:
        """Whether some homomorphism maps this atom onto ``tup``.

        This is exactly the unary predicate ``U_{R(x̄)}`` of the Theorem 4.1
        construction: same relation name, same arity, repeated variables carry
        equal values, constants are matched literally.
        """
        if tup.relation != self.relation or tup.arity != self.arity:
            return False
        if self._trivially_matched:
            return True
        assignment: Dict[Variable, DataValue] = {}
        for term, value in zip(self.terms, tup.values):
            if isinstance(term, Variable):
                if term in assignment and assignment[term] != value:
                    return False
                assignment[term] = value
            elif term != value:
                return False
        return True

    def instantiate(self, assignment: Dict[Variable, DataValue]) -> Tuple:
        """Apply a homomorphism (variable assignment) producing a concrete tuple."""
        values = []
        for term in self.terms:
            if isinstance(term, Variable):
                if term not in assignment:
                    raise KeyError(f"assignment does not bind {term}")
                values.append(assignment[term])
            else:
                values.append(term)
        return Tuple(self.relation, tuple(values))

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.terms)
        return f"{self.relation}({inner})"

    def __repr__(self) -> str:
        return f"Atom({self.relation!r}, {self.terms!r})"


class ConjunctiveQuery:
    """A conjunctive query ``Q(x̄) ← R_0(x̄_0), ..., R_{m-1}(x̄_{m-1})``.

    Parameters
    ----------
    head:
        The sequence of head variables ``x̄``.
    body:
        The sequence of atoms; the *position* of an atom is its identifier in
        the bag-of-atoms view, so repeated atoms are kept.
    name:
        Optional name for the output relation (defaults to ``"Q"``).
    schema:
        Optional schema; when given, every atom is validated against it.

    Examples
    --------
    >>> x, y = Variable("x"), Variable("y")
    >>> q0 = ConjunctiveQuery([x, y], [Atom("T", (x,)), Atom("S", (x, y)), Atom("R", (x, y))])
    >>> q0.is_full()
    True
    >>> q0.has_self_joins()
    False
    """

    __slots__ = ("name", "head", "atoms", "schema")

    def __init__(
        self,
        head: Sequence[Variable],
        body: Sequence[Atom],
        name: str = "Q",
        schema: Schema | None = None,
    ) -> None:
        self.name = name
        self.head: Tup[Variable, ...] = tuple(head)
        self.atoms: Tup[Atom, ...] = tuple(body)
        if not self.atoms:
            raise ValueError("a conjunctive query needs at least one atom")
        for variable in self.head:
            if not isinstance(variable, Variable):
                raise TypeError(f"head must contain variables, got {variable!r}")
        if schema is not None:
            for atom in self.atoms:
                if atom.relation not in schema:
                    raise SchemaError(f"atom relation {atom.relation!r} not in schema")
                if atom.arity != schema.arity(atom.relation):
                    raise SchemaError(
                        f"atom {atom} has arity {atom.arity}, schema expects "
                        f"{schema.arity(atom.relation)}"
                    )
        self.schema = schema
        head_vars = set(self.head)
        body_vars = self.variables()
        missing = head_vars - body_vars
        if missing:
            raise ValueError(f"head variables {sorted(v.name for v in missing)} not in body")

    # ----------------------------------------------------------- bag-of-atoms
    def as_bag(self) -> Bag[Atom]:
        """The body as a bag of atoms with positions as identifiers."""
        return Bag(self.atoms)

    def atom_identifiers(self) -> range:
        """The identifier set ``I(Q)`` (atom positions)."""
        return range(len(self.atoms))

    def atom(self, identifier: int) -> Atom:
        """The atom at position ``identifier``."""
        return self.atoms[identifier]

    def __len__(self) -> int:
        return len(self.atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self.atoms)

    # -------------------------------------------------------------- structure
    def variables(self) -> frozenset[Variable]:
        """All variables appearing in the body."""
        result: set[Variable] = set()
        for atom in self.atoms:
            result |= atom.variables()
        return frozenset(result)

    def relations(self) -> frozenset[str]:
        """All relation names appearing in the body."""
        return frozenset(atom.relation for atom in self.atoms)

    def atoms_with(self, variable: Variable) -> Bag[Atom]:
        """``atoms(x)``: the bag of atoms in which ``variable`` occurs."""
        return Bag(
            {i: atom for i, atom in enumerate(self.atoms) if variable in atom.variables()}
        )

    def atom_ids_with(self, variable: Variable) -> frozenset[int]:
        """Identifiers of the atoms in which ``variable`` occurs."""
        return frozenset(
            i for i, atom in enumerate(self.atoms) if variable in atom.variables()
        )

    def is_full(self) -> bool:
        """Whether every body variable also appears in the head."""
        return self.variables() <= set(self.head)

    def has_self_joins(self) -> bool:
        """Whether two atoms share the same relation name."""
        return len(self.relations()) < len(self.atoms)

    def self_join_groups(self) -> Dict[str, tuple[int, ...]]:
        """Map each relation name occurring more than once to its atom identifiers."""
        groups: Dict[str, list[int]] = {}
        for i, atom in enumerate(self.atoms):
            groups.setdefault(atom.relation, []).append(i)
        return {name: tuple(ids) for name, ids in groups.items() if len(ids) > 1}

    def is_connected_hierarchically(self) -> bool:
        """The paper's notion of connectivity for hierarchical CQ.

        A hierarchical query is connected iff some variable occurs in *every*
        atom (footnote 1 of the paper: for HCQ this coincides with Gaifman
        connectivity).
        """
        if not self.variables():
            return len(self.atoms) <= 1
        return any(
            len(self.atom_ids_with(variable)) == len(self.atoms)
            for variable in self.variables()
        )

    def is_gaifman_connected(self) -> bool:
        """Connectivity of the Gaifman graph (atoms sharing a variable are linked)."""
        if len(self.atoms) <= 1:
            return True
        adjacency: Dict[int, set[int]] = {i: set() for i in range(len(self.atoms))}
        for variable in self.variables():
            ids = sorted(self.atom_ids_with(variable))
            for a, b in zip(ids, ids[1:]):
                adjacency[a].add(b)
                adjacency[b].add(a)
        seen = {0}
        frontier = [0]
        while frontier:
            current = frontier.pop()
            for neighbour in adjacency[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == len(self.atoms)

    def infer_schema(self) -> Schema:
        """Derive a schema from the atoms (first occurrence fixes the arity)."""
        arities: Dict[str, int] = {}
        for atom in self.atoms:
            if atom.relation in arities and arities[atom.relation] != atom.arity:
                raise SchemaError(
                    f"relation {atom.relation!r} used with arities "
                    f"{arities[atom.relation]} and {atom.arity}"
                )
            arities.setdefault(atom.relation, atom.arity)
        return Schema(arities)

    # ------------------------------------------------------------------ misc
    def __str__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        body = ", ".join(str(a) for a in self.atoms)
        return f"{self.name}({head}) <- {body}"

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({self!s})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConjunctiveQuery):
            return self.head == other.head and self.atoms == other.atoms
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.head, self.atoms))


def parse_query(text: str, name: str = "Q") -> ConjunctiveQuery:
    """Parse a CQ from a compact textual form.

    The accepted syntax mirrors the paper's notation::

        Q(x, y) <- T(x), S(x, y), R(x, y)

    Lower-case identifiers are variables, integer literals and single-quoted
    strings are constants.  The parser is intentionally small: it exists so
    that examples and tests can state queries readably, not as a general
    Datalog front-end.

    >>> q = parse_query("Q(x, y) <- T(x), S(x, y), R(x, y)")
    >>> len(q)
    3
    """
    import re

    text = text.strip()
    if "<-" not in text:
        raise ValueError("query must contain '<-' separating head and body")
    head_text, body_text = (part.strip() for part in text.split("<-", 1))
    atom_re = re.compile(r"([A-Za-z_][A-Za-z_0-9]*)\s*\(([^()]*)\)")

    def parse_term(token: str) -> Term:
        token = token.strip()
        if not token:
            raise ValueError("empty term")
        if token.startswith("'") and token.endswith("'"):
            return token[1:-1]
        if re.fullmatch(r"-?\d+", token):
            return int(token)
        if token[0].islower() or token[0] == "_":
            return Variable(token)
        raise ValueError(f"cannot parse term {token!r}")

    head_match = atom_re.fullmatch(head_text)
    if head_match is None:
        raise ValueError(f"cannot parse head {head_text!r}")
    head_name = head_match.group(1)
    head_terms = [parse_term(t) for t in head_match.group(2).split(",") if t.strip()]
    if not all(isinstance(t, Variable) for t in head_terms):
        raise ValueError("head may only contain variables")

    atoms = []
    for match in atom_re.finditer(body_text):
        relation = match.group(1)
        terms = [parse_term(t) for t in match.group(2).split(",") if t.strip()]
        atoms.append(Atom(relation, tuple(terms)))
    if not atoms:
        raise ValueError("query body is empty")
    return ConjunctiveQuery(head_terms, atoms, name=head_name or name)
