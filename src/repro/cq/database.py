"""Relational databases with duplicates (paper, Section 4).

A database ``D`` over a schema ``σ`` is a bag of tuples.  ``R^D`` is the
sub-bag of ``D`` containing only the ``R``-tuples, keeping the original
identifiers — this is what allows t-homomorphisms to refer to concrete
occurrences of a tuple.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, Iterable, Iterator, Mapping, Tuple as Tup

from repro.cq.bag import Bag
from repro.cq.schema import DataValue, Schema, SchemaError, Tuple


class Database:
    """A relational database (bag of tuples) over a schema.

    Parameters
    ----------
    schema:
        The schema the tuples must conform to.
    tuples:
        Either an iterable of :class:`~repro.cq.schema.Tuple` (identifiers
        ``0..n-1`` assigned in order) or a mapping from identifiers to tuples.

    Examples
    --------
    >>> sigma0 = Schema({"R": 2, "S": 2, "T": 1})
    >>> d0 = Database(sigma0, [Tuple("S", (2, 11)), Tuple("T", (2,)), Tuple("R", (1, 10))])
    >>> len(d0)
    3
    >>> sorted(str(t) for t in d0.relation("T"))
    ['T(2)']
    """

    __slots__ = ("schema", "_bag", "_by_relation", "_index_cache")

    def __init__(
        self,
        schema: Schema,
        tuples: Iterable[Tuple] | Mapping[Hashable, Tuple] = (),
    ) -> None:
        self.schema = schema
        bag = Bag(tuples)
        for tup in bag:
            schema.validate(tup)
        self._bag: Bag[Tuple] = bag
        by_relation: Dict[str, Dict[Hashable, Tuple]] = defaultdict(dict)
        for identifier, tup in bag.items():
            by_relation[tup.relation][identifier] = tup
        self._by_relation = {name: Bag(mapping) for name, mapping in by_relation.items()}
        self._index_cache: Dict[Tup[str, Tup[int, ...]], Dict[tuple, list]] = {}

    # ----------------------------------------------------------------- access
    def as_bag(self) -> Bag[Tuple]:
        """The database as a bag of tuples."""
        return self._bag

    def identifiers(self) -> frozenset:
        """All tuple identifiers ``I(D)``."""
        return self._bag.identifiers()

    def __getitem__(self, identifier: Hashable) -> Tuple:
        return self._bag[identifier]

    def __len__(self) -> int:
        return len(self._bag)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._bag)

    def __contains__(self, tup: object) -> bool:
        return tup in self._bag

    def items(self) -> Iterator[Tup[Hashable, Tuple]]:
        return self._bag.items()

    def relation(self, name: str) -> Bag[Tuple]:
        """The bag ``R^D`` of ``name``-tuples, keeping identifiers."""
        if name not in self.schema:
            raise SchemaError(f"unknown relation name {name!r}")
        return self._by_relation.get(name, Bag())

    def multiplicity(self, tup: Tuple) -> int:
        """``mult_D(t)``."""
        return self._bag.multiplicity(tup)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Database):
            return self.schema == other.schema and self._bag == other._bag
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.schema, self._bag))

    def __repr__(self) -> str:
        return f"Database({len(self._bag)} tuples over {sorted(self.schema.relation_names)})"

    # ----------------------------------------------------------------- update
    def insert(self, tup: Tuple, identifier: Hashable | None = None) -> "Database":
        """Return a new database with ``tup`` inserted under ``identifier``.

        When ``identifier`` is ``None`` the next unused integer is chosen.
        Databases are immutable value objects; streaming components build the
        prefix databases ``D_n[S]`` incrementally through their own indexes
        instead of repeatedly calling this method.
        """
        self.schema.validate(tup)
        if identifier is None:
            used = self._bag.identifiers()
            identifier = 0
            while identifier in used:
                identifier += 1
        elif identifier in self._bag.identifiers():
            raise ValueError(f"identifier {identifier!r} already present")
        return Database(self.schema, self._bag.with_element(identifier, tup).as_mapping())

    # ------------------------------------------------------------------ index
    def index(self, relation: str, positions: Tup[int, ...]) -> Dict[tuple, list]:
        """Hash index of ``relation`` on the given attribute positions.

        Maps each key (projection of a tuple onto ``positions``) to the list of
        ``(identifier, tuple)`` pairs having that key.  Used by the
        join-based evaluators; results are cached per database instance.
        """
        cache_key = (relation, tuple(positions))
        if cache_key not in self._index_cache:
            index: Dict[tuple, list] = defaultdict(list)
            for identifier, tup in self.relation(relation).items():
                index[tup.project(positions)].append((identifier, tup))
            self._index_cache[cache_key] = dict(index)
        return self._index_cache[cache_key]


def database_from_rows(
    schema: Schema, rows: Iterable[Tup[str, Tup[DataValue, ...]]]
) -> Database:
    """Build a database from ``(relation, values)`` rows.

    >>> sigma = Schema({"T": 1})
    >>> db = database_from_rows(sigma, [("T", (1,)), ("T", (2,))])
    >>> len(db)
    2
    """
    return Database(schema, [schema.tuple(rel, *values) for rel, values in rows])
