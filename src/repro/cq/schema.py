"""Relational schemas, tuples and data values (paper, Section 2).

The paper fixes a set ``D`` of data values and defines a relational schema as a
pair ``(T, arity)`` mapping relation names to arities.  An ``R``-tuple is an
object ``R(a_0, ..., a_{k-1})`` with ``a_i in D`` and ``k = arity(R)``.

In this reproduction data values are arbitrary hashable Python objects
(integers and strings in practice).  The *size* of a tuple, used by the
complexity statements (``|t|``), is the number of data values it carries plus
one for the relation name; callers that need a finer notion (e.g. string
lengths) can override :func:`value_size`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Iterator, Mapping


DataValue = Hashable


def value_size(value: DataValue) -> int:
    """Return the size ``|a|`` of a data value.

    Integers and other atomic values have size 1; strings contribute their
    length (at least 1) so that ``|t|``-dependent cost statements remain
    meaningful for string-valued streams.
    """
    if isinstance(value, str):
        return max(1, len(value))
    return 1


class SchemaError(ValueError):
    """Raised when a tuple or query does not conform to its schema."""


@dataclass(frozen=True)
class Schema:
    """A relational schema ``(T, arity)``.

    Parameters
    ----------
    arities:
        Mapping from relation name to arity.

    Examples
    --------
    >>> sigma0 = Schema({"R": 2, "S": 2, "T": 1})
    >>> sigma0.arity("R")
    2
    >>> "T" in sigma0
    True
    """

    arities: Mapping[str, int]

    def __post_init__(self) -> None:
        for name, arity in self.arities.items():
            if not isinstance(name, str) or not name:
                raise SchemaError(f"relation name must be a non-empty string, got {name!r}")
            if not isinstance(arity, int) or arity < 0:
                raise SchemaError(f"arity of {name!r} must be a non-negative int, got {arity!r}")
        # Freeze the mapping so the dataclass is genuinely immutable/hashable.
        object.__setattr__(self, "arities", dict(self.arities))

    @property
    def relation_names(self) -> frozenset[str]:
        """The set ``T`` of relation names."""
        return frozenset(self.arities)

    def arity(self, name: str) -> int:
        """Return ``arity(name)``, raising :class:`SchemaError` for unknown names."""
        try:
            return self.arities[name]
        except KeyError as exc:
            raise SchemaError(f"unknown relation name {name!r}") from exc

    def __contains__(self, name: object) -> bool:
        return name in self.arities

    def __iter__(self) -> Iterator[str]:
        return iter(self.arities)

    def __len__(self) -> int:
        return len(self.arities)

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.arities.items())))

    def validate(self, tup: "Tuple") -> None:
        """Raise :class:`SchemaError` if ``tup`` is not a tuple of this schema."""
        if tup.relation not in self.arities:
            raise SchemaError(f"tuple relation {tup.relation!r} not in schema")
        expected = self.arities[tup.relation]
        if len(tup.values) != expected:
            raise SchemaError(
                f"tuple {tup} has arity {len(tup.values)}, schema expects {expected}"
            )

    def tuple(self, relation: str, *values: DataValue) -> "Tuple":
        """Build a validated :class:`Tuple` of this schema."""
        tup = Tuple(relation, tuple(values))
        self.validate(tup)
        return tup


@dataclass(frozen=True, order=True)
class Tuple:
    """An ``R``-tuple ``R(a_0, ..., a_{k-1})``.

    Tuples are immutable value objects: two tuples with the same relation name
    and the same values are equal (their *identity* in a bag or a stream is
    carried by the bag identifier / stream position, never by the object).

    Examples
    --------
    >>> t = Tuple("S", (2, 11))
    >>> t.relation, t.values
    ('S', (2, 11))
    >>> t.size
    3
    >>> str(t)
    'S(2, 11)'
    """

    relation: str
    values: tuple[DataValue, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))

    @property
    def arity(self) -> int:
        """Number of data values of the tuple."""
        return len(self.values)

    @property
    def size(self) -> int:
        """The size ``|t|`` used by the complexity statements."""
        return 1 + sum(value_size(v) for v in self.values)

    def value(self, index: int) -> DataValue:
        """Return the ``index``-th data value."""
        return self.values[index]

    def project(self, indexes: Iterable[int]) -> tuple[DataValue, ...]:
        """Project the tuple onto the given positions (in the given order)."""
        return tuple(self.values[i] for i in indexes)

    def __str__(self) -> str:
        inner = ", ".join(repr(v) if isinstance(v, str) else str(v) for v in self.values)
        return f"{self.relation}({inner})"

    def __repr__(self) -> str:
        return f"Tuple({self.relation!r}, {self.values!r})"


def make_tuple(relation: str, *values: DataValue) -> Tuple:
    """Convenience constructor mirroring the paper's ``R(a, b)`` notation."""
    return Tuple(relation, tuple(values))


def tuples_of(schema: Schema, relation: str, rows: Iterable[Iterable[Any]]) -> list[Tuple]:
    """Build a list of validated tuples of ``relation`` from raw value rows."""
    result = []
    for row in rows:
        result.append(schema.tuple(relation, *row))
    return result
