"""Homomorphisms, t-homomorphisms and CQ bag semantics (paper, Section 4 and Appendix B).

Two equivalent bag semantics are implemented:

* :func:`bag_semantics` — the paper's presentation via *t-homomorphisms*
  (functions from atom identifiers to tuple identifiers), where each output
  tuple is witnessed by exactly one t-homomorphism;
* :func:`chaudhuri_vardi_semantics` — the classical presentation of
  Chaudhuri & Vardi via homomorphisms and multiplicities.

Appendix B proves both coincide; ``tests/test_homomorphism.py`` checks this
property on random queries and databases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, Mapping, Tuple as Tup

from repro.cq.bag import Bag
from repro.cq.database import Database
from repro.cq.query import Atom, ConjunctiveQuery, Variable
from repro.cq.schema import DataValue, Tuple


@dataclass(frozen=True)
class Homomorphism:
    """A homomorphism ``h`` restricted to the variables of a query.

    Data values are implicitly mapped to themselves, so only the variable
    bindings are stored.
    """

    bindings: Mapping[Variable, DataValue]

    def __post_init__(self) -> None:
        object.__setattr__(self, "bindings", dict(self.bindings))

    def __getitem__(self, variable: Variable) -> DataValue:
        return self.bindings[variable]

    def __contains__(self, variable: object) -> bool:
        return variable in self.bindings

    def apply(self, atom: Atom) -> Tuple:
        """``h(R(x̄)) := R(h(x̄))``."""
        return atom.instantiate(dict(self.bindings))

    def head_tuple(self, query: ConjunctiveQuery) -> Tuple:
        """The output tuple ``Q(h(x̄))`` for the query head."""
        return Tuple(query.name, tuple(self.bindings[v] for v in query.head))

    def items(self):
        return self.bindings.items()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Homomorphism):
            return dict(self.bindings) == dict(other.bindings)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self.bindings.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{v.name}->{val!r}" for v, val in sorted(self.bindings.items()))
        return f"Homomorphism({inner})"


@dataclass(frozen=True)
class THomomorphism:
    """A t-homomorphism ``η : I(Q) -> I(D)`` with its associated homomorphism."""

    assignment: Mapping[int, Hashable]
    homomorphism: Homomorphism

    def __post_init__(self) -> None:
        object.__setattr__(self, "assignment", dict(self.assignment))

    def __getitem__(self, atom_id: int) -> Hashable:
        return self.assignment[atom_id]

    def items(self):
        return self.assignment.items()

    def positions(self) -> frozenset:
        """The set of database identifiers used by this t-homomorphism."""
        return frozenset(self.assignment.values())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, THomomorphism):
            return dict(self.assignment) == dict(other.assignment)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self.assignment.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{i}->{j!r}" for i, j in sorted(self.assignment.items(), key=str))
        return f"THomomorphism({inner})"


def _candidate_ids(
    database: Database, atom: Atom, partial: Dict[Variable, DataValue]
) -> Iterator[Tup[Hashable, Tuple]]:
    """Yield ``(identifier, tuple)`` candidates of ``atom`` consistent with ``partial``.

    Uses a hash index on the atom's already-bound variable positions when
    possible, falling back to a scan of the relation otherwise.
    """
    bound_positions = []
    bound_values = []
    for position, term in enumerate(atom.terms):
        if isinstance(term, Variable):
            if term in partial:
                bound_positions.append(position)
                bound_values.append(partial[term])
        else:
            bound_positions.append(position)
            bound_values.append(term)
    if bound_positions:
        index = database.index(atom.relation, tuple(bound_positions))
        yield from index.get(tuple(bound_values), ())
    else:
        yield from database.relation(atom.relation).items()


def _extend(
    atom: Atom, tup: Tuple, partial: Dict[Variable, DataValue]
) -> Dict[Variable, DataValue] | None:
    """Try to extend ``partial`` so that it maps ``atom`` onto ``tup``."""
    extended = dict(partial)
    for term, value in zip(atom.terms, tup.values):
        if isinstance(term, Variable):
            if term in extended:
                if extended[term] != value:
                    return None
            else:
                extended[term] = value
        elif term != value:
            return None
    return extended


def enumerate_t_homomorphisms(
    query: ConjunctiveQuery, database: Database
) -> Iterator[THomomorphism]:
    """Enumerate every t-homomorphism from ``query`` to ``database``.

    The enumeration is a straightforward backtracking join over the atoms in
    body order, using per-relation hash indexes on the already-bound
    positions.  It is the reference (obviously correct) evaluator that the
    streaming algorithms are tested against; it makes no sub-exponential
    complexity claim.
    """

    atoms = query.atoms

    def recurse(
        atom_index: int,
        partial: Dict[Variable, DataValue],
        chosen: Dict[int, Hashable],
    ) -> Iterator[THomomorphism]:
        if atom_index == len(atoms):
            yield THomomorphism(dict(chosen), Homomorphism(dict(partial)))
            return
        atom = atoms[atom_index]
        for identifier, tup in _candidate_ids(database, atom, partial):
            extended = _extend(atom, tup, partial)
            if extended is None:
                continue
            chosen[atom_index] = identifier
            yield from recurse(atom_index + 1, extended, chosen)
            del chosen[atom_index]

    yield from recurse(0, {}, {})


def enumerate_homomorphisms(
    query: ConjunctiveQuery, database: Database
) -> Iterator[Homomorphism]:
    """Enumerate ``Hom(Q, D)`` (each homomorphism exactly once)."""
    seen: set[Homomorphism] = set()
    for t_hom in enumerate_t_homomorphisms(query, database):
        if t_hom.homomorphism not in seen:
            seen.add(t_hom.homomorphism)
            yield t_hom.homomorphism


def bag_semantics(query: ConjunctiveQuery, database: Database) -> Bag[Tuple]:
    """The paper's bag semantics ``⟦Q⟧(D)``.

    Each t-homomorphism ``η`` contributes one occurrence of the output tuple
    ``Q(h_η(x̄))``; the t-homomorphism itself is used as the bag identifier so
    outputs and witnesses are in one-to-one correspondence.
    """
    mapping: Dict[THomomorphism, Tuple] = {}
    for t_hom in enumerate_t_homomorphisms(query, database):
        mapping[t_hom] = t_hom.homomorphism.head_tuple(query)
    return Bag(mapping)


def multiplicity_of_homomorphism(
    query: ConjunctiveQuery, database: Database, homomorphism: Homomorphism
) -> int:
    """``mult_{Q,D}(h) = Π_i mult_D(h(R_i(x̄_i)))``."""
    result = 1
    for atom in query.atoms:
        result *= database.multiplicity(homomorphism.apply(atom))
        if result == 0:
            return 0
    return result


def chaudhuri_vardi_semantics(query: ConjunctiveQuery, database: Database) -> Bag[Tuple]:
    """The classical bag semantics ``⌈⌈Q⌋⌋(D)`` of Chaudhuri & Vardi.

    Each output tuple ``Q(ā)`` receives multiplicity
    ``Σ_{h : h(x̄)=ā} mult_{Q,D}(h)``.  Appendix B of the paper shows this bag
    equals :func:`bag_semantics`; the equality is property-tested.
    """
    multiplicities: Dict[Tuple, int] = {}
    for homomorphism in enumerate_homomorphisms(query, database):
        output = homomorphism.head_tuple(query)
        multiplicities[output] = multiplicities.get(output, 0) + multiplicity_of_homomorphism(
            query, database, homomorphism
        )
    mapping: Dict[Hashable, Tuple] = {}
    for output, count in multiplicities.items():
        for occurrence in range(count):
            mapping[(output, occurrence)] = output
    return Bag(mapping)
