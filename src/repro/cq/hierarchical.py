"""Hierarchical conjunctive queries and q-trees (paper, Section 4 and Appendix B).

A CQ ``Q`` is *hierarchical* iff it is full and for every pair of variables
``x, y`` the atom sets ``atoms(x)`` and ``atoms(y)`` are comparable by
inclusion or disjoint.  Berkholz, Keppeler and Schweikardt showed that a CQ is
hierarchical and connected iff it admits a *q-tree*: a labelled tree whose
inner nodes are the variables, whose leaves are the atom identifiers, and where
the inner nodes on the path from the root to a leaf ``i`` are exactly the
variables of atom ``i``.

This module provides the hierarchy test, q-tree construction, the *compact*
q-tree (inner nodes with a single child contracted away) used by the PCEA
construction of Theorem 4.1, and a validator used by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.cq.query import ConjunctiveQuery, Variable


NodeLabel = Union[Variable, int]


class NotHierarchicalError(ValueError):
    """Raised when a q-tree is requested for a non-hierarchical or disconnected CQ."""


def is_hierarchical(query: ConjunctiveQuery, require_full: bool = True) -> bool:
    """Return whether ``query`` is a hierarchical CQ.

    Parameters
    ----------
    query:
        The conjunctive query to test.
    require_full:
        The paper's definition of HCQ additionally requires the query to be
        *full* (every body variable appears in the head).  Set to ``False`` to
        test only the atoms(x)/atoms(y) containment condition.
    """
    if require_full and not query.is_full():
        return False
    variables = sorted(query.variables(), key=lambda v: v.name)
    atom_sets = {variable: query.atom_ids_with(variable) for variable in variables}
    for i, x in enumerate(variables):
        for y in variables[i + 1 :]:
            ax, ay = atom_sets[x], atom_sets[y]
            if not (ax <= ay or ay <= ax or not (ax & ay)):
                return False
    return True


@dataclass
class QTreeNode:
    """A node of a (possibly compact) q-tree.

    ``label`` is a :class:`Variable` for inner nodes and an atom identifier
    (``int``) for leaves.
    """

    label: NodeLabel
    children: List["QTreeNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_variable(self) -> bool:
        return isinstance(self.label, Variable)

    def iter_nodes(self) -> Iterator["QTreeNode"]:
        """Pre-order traversal of the subtree rooted at this node."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def leaves(self) -> Iterator["QTreeNode"]:
        """All leaf nodes below (or equal to) this node."""
        for node in self.iter_nodes():
            if node.is_leaf:
                yield node

    def __repr__(self) -> str:
        return f"QTreeNode({self.label!r}, children={len(self.children)})"


@dataclass
class QTree:
    """A q-tree (or compact q-tree) for a connected hierarchical CQ."""

    query: ConjunctiveQuery
    root: QTreeNode
    compact: bool = False

    # ------------------------------------------------------------- navigation
    def nodes(self) -> Iterator[QTreeNode]:
        return self.root.iter_nodes()

    def variable_nodes(self) -> Iterator[QTreeNode]:
        for node in self.nodes():
            if node.is_variable:
                yield node

    def leaf_nodes(self) -> Iterator[QTreeNode]:
        yield from self.root.leaves()

    def node_of(self, label: NodeLabel) -> QTreeNode:
        """Return the unique node carrying ``label``."""
        for node in self.nodes():
            if node.label == label:
                return node
        raise KeyError(f"label {label!r} not in q-tree")

    def parent_map(self) -> Dict[NodeLabel, Optional[NodeLabel]]:
        """Map each node label to its parent's label (``None`` for the root)."""
        parents: Dict[NodeLabel, Optional[NodeLabel]] = {self.root.label: None}
        stack = [self.root]
        while stack:
            node = stack.pop()
            for child in node.children:
                parents[child.label] = node.label
                stack.append(child)
        return parents

    def descendants(self, label: NodeLabel) -> frozenset[NodeLabel]:
        """Labels of all descendants of ``label`` (including itself)."""
        node = self.node_of(label)
        return frozenset(n.label for n in node.iter_nodes())

    def descendant_atoms(self, label: NodeLabel) -> frozenset[int]:
        """Atom identifiers at the leaves below ``label``."""
        return frozenset(l for l in self.descendants(label) if isinstance(l, int))

    def ancestors(self, label: NodeLabel) -> tuple[NodeLabel, ...]:
        """Labels on the path from the root to ``label`` (inclusive)."""
        parents = self.parent_map()
        path: List[NodeLabel] = [label]
        while parents[path[-1]] is not None:
            path.append(parents[path[-1]])  # type: ignore[arg-type]
        return tuple(reversed(path))

    def path_variables(self, atom_id: int) -> frozenset[Variable]:
        """Variables on the path from the root to the leaf of ``atom_id``."""
        return frozenset(
            label for label in self.ancestors(atom_id) if isinstance(label, Variable)
        )

    def depth(self) -> int:
        """Length (in edges) of the longest root-to-leaf path."""

        def rec(node: QTreeNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(rec(child) for child in node.children)

        return rec(self.root)

    # -------------------------------------------------------------- transform
    def compacted(self) -> "QTree":
        """Return the compact q-tree (single-child inner nodes contracted).

        Following Appendix B: for every inner node with a single child, the
        node is removed and its child takes its place.  The root of a compact
        q-tree of a query with at least two atoms is always a variable with at
        least two children.
        """

        def compact(node: QTreeNode) -> QTreeNode:
            while node.is_variable and len(node.children) == 1:
                node = node.children[0]
            if node.is_leaf:
                return QTreeNode(node.label)
            return QTreeNode(node.label, [compact(child) for child in node.children])

        return QTree(self.query, compact(self.root), compact=True)

    def pretty(self) -> str:
        """Human-readable indented rendering (used by examples and docs)."""
        lines: List[str] = []

        def walk(node: QTreeNode, depth: int) -> None:
            if node.is_variable:
                text = str(node.label)
            else:
                text = f"[{node.label}] {self.query.atom(node.label)}"
            lines.append("  " * depth + text)
            for child in node.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        kind = "compact q-tree" if self.compact else "q-tree"
        return f"QTree({kind} of {self.query.name}, {sum(1 for _ in self.nodes())} nodes)"


def build_q_tree(query: ConjunctiveQuery) -> QTree:
    """Build a q-tree for a connected hierarchical CQ.

    Raises
    ------
    NotHierarchicalError
        If the query is not hierarchical (atom-set condition), not full, or
        not connected (no variable occurs in every atom).
    """
    if not query.is_full():
        raise NotHierarchicalError(f"{query} is not full")
    if not is_hierarchical(query):
        raise NotHierarchicalError(f"{query} is not hierarchical")
    if not query.is_connected_hierarchically():
        raise NotHierarchicalError(f"{query} is not connected (no variable in every atom)")

    def occurrences(variable: Variable, atom_ids: Sequence[int]) -> int:
        return sum(1 for i in atom_ids if variable in query.atom(i).variables())

    def build(atom_ids: List[int], remaining: frozenset[Variable]) -> QTreeNode:
        """Build the subtree for ``atom_ids`` whose unplaced variables are ``remaining``."""
        relevant = {
            v for v in remaining if any(v in query.atom(i).variables() for i in atom_ids)
        }
        if len(atom_ids) == 1 and not relevant:
            return QTreeNode(atom_ids[0])
        # A variable occurring in every atom of the group must exist for
        # hierarchical connected groups; pick deterministically by name.
        common = sorted(
            (v for v in relevant if occurrences(v, atom_ids) == len(atom_ids)),
            key=lambda v: v.name,
        )
        if not common:
            raise NotHierarchicalError(
                f"no common variable for atom group {sorted(atom_ids)}; query is not "
                "hierarchical or not connected"
            )
        pivot = common[0]
        node = QTreeNode(pivot)
        rest = frozenset(relevant) - {pivot}
        # Atoms whose unplaced variables are exhausted become leaf children.
        # The others are grouped into connected components w.r.t. the
        # remaining variables and recursed upon.
        exhausted = [
            i for i in atom_ids if not (query.atom(i).variables() & rest)
        ]
        pending = [i for i in atom_ids if i not in exhausted]
        for atom_id in sorted(exhausted):
            node.children.append(QTreeNode(atom_id))
        for component in _components(query, pending, rest):
            node.children.append(build(component, rest))
        return node

    atom_ids = list(range(len(query.atoms)))
    root = build(atom_ids, query.variables())
    return QTree(query, root, compact=False)


def _components(
    query: ConjunctiveQuery, atom_ids: List[int], variables: frozenset[Variable]
) -> List[List[int]]:
    """Connected components of ``atom_ids`` linked by sharing a variable of ``variables``."""
    remaining = set(atom_ids)
    components: List[List[int]] = []
    while remaining:
        seed = min(remaining)
        component = {seed}
        frontier = [seed]
        while frontier:
            current = frontier.pop()
            current_vars = query.atom(current).variables() & variables
            for other in list(remaining - component):
                if query.atom(other).variables() & current_vars:
                    component.add(other)
                    frontier.append(other)
        components.append(sorted(component))
        remaining -= component
    return components


def validate_q_tree(tree: QTree) -> None:
    """Check the defining conditions of a q-tree, raising ``AssertionError`` otherwise.

    Used by the test suite; works for both plain and compact q-trees (for the
    compact variant the path condition is relaxed to "path variables are a
    subset of the atom's variables and determine them within the tree").
    """
    query = tree.query
    variable_labels = [node.label for node in tree.variable_nodes()]
    leaf_labels = [node.label for node in tree.leaf_nodes()]
    assert len(set(leaf_labels)) == len(leaf_labels), "duplicate leaf labels"
    assert set(leaf_labels) == set(query.atom_identifiers()), "leaves must be the atom ids"
    assert len(set(variable_labels)) == len(variable_labels), "duplicate variable nodes"
    for node in tree.variable_nodes():
        assert node.children, "variable nodes must be inner nodes"
    if not tree.compact:
        assert set(variable_labels) == set(query.variables()), "inner nodes must be the variables"
        for atom_id in query.atom_identifiers():
            expected = query.atom(atom_id).variables()
            assert tree.path_variables(atom_id) == expected, (
                f"path to atom {atom_id} carries {tree.path_variables(atom_id)}, "
                f"expected {expected}"
            )
    else:
        for atom_id in query.atom_identifiers():
            expected = query.atom(atom_id).variables()
            assert tree.path_variables(atom_id) <= expected, "compact path variables must shrink"
