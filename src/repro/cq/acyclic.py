"""Acyclic conjunctive queries and join trees (paper, Section 4).

A CQ is *acyclic* iff it has a join tree: a tree over the distinct atoms such
that, for every variable ``x``, the atoms containing ``x`` form a connected
subtree.  Acyclicity is decided with the classical GYO (Graham–Yu–Özsoyoğlu)
reduction on the query's hypergraph, and a join tree is produced as a witness.

Theorem 4.2 states that acyclic but non-hierarchical CQ cannot be expressed by
any PCEA; the benchmark ``benchmarks/bench_expressiveness.py`` uses this module
to classify queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple as Tup

from repro.cq.query import ConjunctiveQuery, Variable


@dataclass
class JoinTreeNode:
    """A node of a join tree, labelled by a distinct atom of the query.

    ``atom_ids`` collects every body position carrying this atom (relevant for
    queries with repeated atoms).
    """

    atom_index: int
    atom_ids: Tup[int, ...]
    children: List["JoinTreeNode"] = field(default_factory=list)

    def iter_nodes(self):
        yield self
        for child in self.children:
            yield from child.iter_nodes()


@dataclass
class JoinTree:
    """A join tree witnessing acyclicity of a CQ."""

    query: ConjunctiveQuery
    root: JoinTreeNode

    def nodes(self):
        return self.root.iter_nodes()

    def edges(self) -> List[Tup[int, int]]:
        """Parent/child pairs of representative atom identifiers."""
        result: List[Tup[int, int]] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            for child in node.children:
                result.append((node.atom_index, child.atom_index))
                stack.append(child)
        return result

    def validate(self) -> None:
        """Check the connectedness condition, raising ``AssertionError`` otherwise."""
        query = self.query
        representative_atoms = {node.atom_index for node in self.nodes()}
        distinct = {}
        for i, atom in enumerate(query.atoms):
            distinct.setdefault(atom, i)
        assert representative_atoms == set(distinct.values()), "join tree must cover distinct atoms"
        adjacency: Dict[int, set[int]] = {node.atom_index: set() for node in self.nodes()}
        for a, b in self.edges():
            adjacency[a].add(b)
            adjacency[b].add(a)
        for variable in query.variables():
            holders = [
                node.atom_index
                for node in self.nodes()
                if variable in query.atom(node.atom_index).variables()
            ]
            if len(holders) <= 1:
                continue
            seen = {holders[0]}
            frontier = [holders[0]]
            allowed = set(holders)
            while frontier:
                current = frontier.pop()
                for neighbour in adjacency[current]:
                    if neighbour in allowed and neighbour not in seen:
                        seen.add(neighbour)
                        frontier.append(neighbour)
            assert seen == set(holders), f"atoms of variable {variable} are not connected"


def _hyperedges(query: ConjunctiveQuery) -> Dict[int, FrozenSet[Variable]]:
    """Hyperedges of the query hypergraph, one per *distinct* atom (representative id)."""
    edges: Dict[int, FrozenSet[Variable]] = {}
    seen = {}
    for i, atom in enumerate(query.atoms):
        if atom in seen:
            continue
        seen[atom] = i
        edges[i] = atom.variables()
    return edges


def gyo_reduction(query: ConjunctiveQuery) -> Tup[bool, List[Tup[int, Optional[int]]]]:
    """Run the GYO reduction.

    Returns a pair ``(acyclic, elimination)`` where ``elimination`` records, in
    order, each eliminated hyperedge together with the hyperedge it was found
    to be an *ear* of (``None`` when it was isolated).  The query is acyclic
    iff all hyperedges get eliminated.
    """
    edges = dict(_hyperedges(query))
    elimination: List[Tup[int, Optional[int]]] = []
    changed = True
    while changed and len(edges) > 1:
        changed = False
        for edge_id in sorted(edges):
            variables = edges[edge_id]
            others = {k: v for k, v in edges.items() if k != edge_id}
            # Variables exclusive to this edge can be ignored for ear detection.
            shared = set()
            for variable in variables:
                if any(variable in other for other in others.values()):
                    shared.add(variable)
            if not shared:
                elimination.append((edge_id, None))
                del edges[edge_id]
                changed = True
                break
            witness = None
            for other_id, other_vars in others.items():
                if shared <= other_vars:
                    witness = other_id
                    break
            if witness is not None:
                elimination.append((edge_id, witness))
                del edges[edge_id]
                changed = True
                break
    acyclic = len(edges) <= 1
    if acyclic and edges:
        last = next(iter(edges))
        elimination.append((last, None))
    return acyclic, elimination


def is_acyclic(query: ConjunctiveQuery) -> bool:
    """Whether the query has a join tree (GYO reduction succeeds)."""
    acyclic, _ = gyo_reduction(query)
    return acyclic


def build_join_tree(query: ConjunctiveQuery) -> JoinTree:
    """Build a join tree for an acyclic CQ.

    The tree is reconstructed from the GYO elimination order: each eliminated
    ear becomes a child of its witness; isolated edges become children of the
    final root (so the result is a single tree even for Gaifman-disconnected
    queries).

    Raises
    ------
    ValueError
        If the query is not acyclic.
    """
    acyclic, elimination = gyo_reduction(query)
    if not acyclic:
        raise ValueError(f"{query} is not acyclic")
    atom_occurrences: Dict[int, Tup[int, ...]] = {}
    distinct = {}
    for i, atom in enumerate(query.atoms):
        distinct.setdefault(atom, i)
    for atom, representative in distinct.items():
        atom_occurrences[representative] = tuple(
            i for i, other in enumerate(query.atoms) if other == atom
        )
    root_id = elimination[-1][0]
    nodes: Dict[int, JoinTreeNode] = {
        edge_id: JoinTreeNode(edge_id, atom_occurrences[edge_id])
        for edge_id, _ in elimination
    }
    for edge_id, witness in elimination[:-1]:
        parent_id = witness if witness is not None else root_id
        if parent_id == edge_id:
            continue
        nodes[parent_id].children.append(nodes[edge_id])
    return JoinTree(query, nodes[root_id])
