"""The asyncio ingestion server: many sockets in, one engine, matches out.

Architecture — four cooperating task kinds on one event loop:

* **Reader tasks** (one per connection) parse length-prefixed frames
  (:func:`~repro.runtime.frames.frame_length` validates the prefix before
  the body is read, so an oversized frame never allocates) and admit work
  into the shared ingest queue.
* **One driver task** owns the engine.  It drains whatever is queued — up
  to ``max_batch`` tuples — into a single ``ingest_batch`` call (one
  eviction sweep per batch, the `drive_batch` seam), fans the matches out,
  and acks.  It blocks on an event when the queue is empty: the coalescer
  is adaptive by construction — batch size is whatever accumulated while
  the engine was busy — and it never busy-waits.
* **Writer tasks** (one per connection) flush that connection's outbox
  FIFO with ``await drain()``, so kernel-level TCP backpressure propagates
  to slow readers without blocking anyone else.

Flow control, both directions, hard-bounded:

* **Ingest backpressure**: the queue admits at most ``max_queue`` tuples.
  A reader whose frame does not fit *stops reading its socket* until the
  driver drains — the client's sends then fill the kernel buffers and
  block, which is the backpressure signal.  Nothing server-side grows past
  the cap (``peak_queue_depth`` is tracked and test-asserted).
* **Subscriber shedding**: each connection's outbox holds at most
  ``max_outbox`` encoded frames.  When a match frame would exceed it the
  subscriber is shed per ``shed_policy`` — ``"disconnect"`` (default:
  drop the whole connection; a consumer that cannot keep up should not
  silently lose data) or ``"drop"`` (drop that match frame, keep the
  connection).  Either way ``repro_net_shed_total`` counts it.  Control
  frames (acks, replies) bypass the cap with a runaway backstop at
  ``4 × max_outbox``.

Determinism: the driver is the only task touching the engine, and
register/unregister ride the ingest queue as control entries, so the total
operation order is exactly the queue admission order — which per-connection
FIFO acks expose to clients (`ack` ⇒ every earlier match already sent).
The differential tests rebuild that order and verify bit-identical outputs
against a direct in-process engine.

Matches shared by multiple subscribers are encoded **once**
(:func:`~repro.runtime.frames.encode_frame`) and the same bytes are queued
to every subscriber — the same encode-once broadcast discipline as the
shard coordinator's batch fan-out.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple as Tup

from repro.multi.registry import QueryHandle
from repro.net import protocol
from repro.runtime.frames import (
    HEADER_SIZE,
    MAX_FRAME_BYTES,
    FrameProtocolError,
    decode_body,
    encode_frame,
    frame_length,
)

#: Control frames may exceed ``max_outbox`` by this factor before the
#: connection is dropped outright (a peer that never reads its socket).
_CONTROL_BACKSTOP = 4


class SingleEngineFeed:
    """Adapt a single-query evaluator to the multi-shaped server feed.

    ``StreamingEvaluator`` / ``GeneralStreamingEvaluator`` evaluate one
    compiled query and return bare valuation lists from ``process_many``;
    the server speaks the multi-engine shape (per-tuple ``{handle_id:
    valuations}`` dicts, register/unregister).  This feed pins the one
    query to handle id 0: clients subscribe with ``query=None`` and
    ``window=None``, and register/unregister become refcount no-ops (the
    engine's query cannot be dropped).
    """

    def __init__(self, engine, name: str = "q0") -> None:
        self._engine = engine
        window = getattr(engine, "window", None)
        self._handle = QueryHandle(0, name, window)

    @property
    def engine(self):
        return self._engine

    @property
    def position(self) -> int:
        return self._engine.position

    def handles(self) -> List[QueryHandle]:
        return [self._handle]

    def register(self, query, window, name=None) -> QueryHandle:
        if query is not None:
            raise ValueError(
                "single-query server: subscribe with query=None to receive "
                "the engine's compiled query"
            )
        if window is not None and window != self._handle.window:
            raise ValueError(
                f"single-query server evaluates window {self._handle.window}, "
                f"cannot register window {window}"
            )
        return self._handle

    def unregister(self, handle) -> None:
        pass  # the single engine's query outlives every subscription

    def ingest_batch(self, tuples: Sequence[Any]):
        base = self._engine.position + 1
        outputs = self._engine.process_many(tuples)
        return base, [{0: out} if out else {} for out in outputs]

    def attach_observer(self, observer) -> None:
        observer.attach(self._engine)


class _Subscription:
    """One engine-side registration, shared by its subscribers (refcounted)."""

    __slots__ = ("key", "handle", "subscribers")

    def __init__(self, key, handle, subscribers=None) -> None:
        self.key = key
        self.handle = handle
        self.subscribers: Set[_Client] = subscribers if subscribers is not None else set()


class _Client:
    """Per-connection state: reader/writer tasks and the bounded outbox."""

    __slots__ = (
        "id",
        "reader",
        "writer",
        "outbox",
        "outbox_event",
        "reader_task",
        "writer_task",
        "closing",
        "closed",
        "shed",
        "subs",
    )

    def __init__(self, client_id: int, reader, writer) -> None:
        self.id = client_id
        self.reader = reader
        self.writer = writer
        self.outbox: Deque[bytes] = deque()
        self.outbox_event = asyncio.Event()
        self.reader_task: Optional[asyncio.Task] = None
        self.writer_task: Optional[asyncio.Task] = None
        self.closing = False  # no new frames accepted; outbox flushes then closes
        self.closed = False  # fully cleaned up
        self.shed = 0
        self.subs: Dict[int, _Subscription] = {}


class IngestServer:
    """One engine served over TCP — see the module docstring for the design.

    Parameters
    ----------
    engine:
        Anything exposing the multi-engine feed surface (``register`` /
        ``unregister`` / ``ingest_batch`` / ``position`` — a
        :class:`~repro.multi.engine.MultiQueryEngine`, a
        :class:`~repro.shard.coordinator.ShardedEngine`, or a
        :class:`SingleEngineFeed` wrapping a single-query evaluator).
    max_batch:
        Most tuples the driver feeds the engine per batch (and per
        eviction sweep).
    max_queue:
        Hard bound on queued-but-unprocessed tuples across all
        connections; admission past it stops reading the sender's socket.
    max_outbox:
        Hard bound on encoded frames queued to one subscriber.
    shed_policy:
        ``"disconnect"`` or ``"drop"`` — what happens to a subscriber
        whose outbox is full when a match frame arrives.
    observer:
        Optional :class:`repro.obs.Observer`; the server binds its
        instruments in the observer's registry (one Prometheus exposition
        covers engine and server) and attaches it to the engine so
        ``batch`` spans and engine gauges flow.
    """

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_batch: int = 512,
        max_queue: int = 8192,
        max_outbox: int = 1024,
        shed_policy: str = "disconnect",
        max_frame_bytes: int = MAX_FRAME_BYTES,
        observer=None,
        exit_after_clients: Optional[int] = None,
        sndbuf: Optional[int] = None,
        write_buffer_limit: Optional[int] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if max_outbox < 1:
            raise ValueError("max_outbox must be >= 1")
        if shed_policy not in ("disconnect", "drop"):
            raise ValueError(f"unknown shed policy {shed_policy!r}")
        self.engine = engine
        self.host = host
        self.port = port  # rebound to the real port by start()
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.max_outbox = max_outbox
        self.shed_policy = shed_policy
        self.max_frame_bytes = max_frame_bytes
        self.exit_after_clients = exit_after_clients
        # Test/tuning knobs: shrink the kernel send buffer and the transport
        # write buffer so slow-subscriber backpressure (and therefore the
        # shedding policy) engages at small data volumes.
        self.sndbuf = sndbuf
        self.write_buffer_limit = write_buffer_limit

        # ("t", tuple, marker|None) ingest entries and ("c", client, message)
        # control entries; only "t" entries count toward max_queue.
        self._queue: Deque[Tup] = deque()
        self._queued_tuples = 0
        self._not_empty = asyncio.Event()
        self._not_full = asyncio.Event()
        self._not_full.set()

        self._clients: Dict[int, _Client] = {}
        self._next_client_id = 0
        self._subs: Dict[Tup, _Subscription] = {}  # (query, window) → subscription
        self._subs_by_handle: Dict[int, _Subscription] = {}

        self._server: Optional[asyncio.AbstractServer] = None
        self._driver_task: Optional[asyncio.Task] = None
        self._running = False
        self._stopping = False
        self._stopped = asyncio.Event()

        self.observer = observer
        registry = observer.metrics if observer is not None else None
        if registry is None:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
        self.metrics = registry
        self._m_tuples = registry.counter("repro_ingest_tuples_total")
        self._m_frames = registry.counter("repro_ingest_frames_total")
        self._m_queue_depth = registry.gauge("repro_ingest_queue_depth")
        self._m_shed = registry.counter("repro_net_shed_total")
        self._m_coalesce = registry.histogram("repro_ingest_batch_tuples")
        self._m_clients = registry.gauge("repro_net_clients")
        self._m_subs = registry.gauge("repro_net_subscriptions")
        self._m_egress_frames = registry.counter("repro_net_egress_frames_total")
        self._m_egress_bytes = registry.counter("repro_net_egress_bytes_total")
        if observer is not None and hasattr(engine, "attach_observer"):
            engine.attach_observer(observer)

        # Totals surfaced by observe() / the CLI "# net:" stats line.
        self.clients_served = 0
        self.frames_in = 0
        self.tuples_in = 0
        self.batches = 0
        self.match_frames_out = 0
        self.acks_out = 0
        self.shed_total = 0
        self.protocol_errors = 0
        self.peak_queue_depth = 0
        self.peak_outbox = 0
        self.driver_error: Optional[BaseException] = None

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Bind the listening socket and launch the driver."""
        self._running = True
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._driver_task = asyncio.ensure_future(self._drive())

    async def serve_forever(self) -> None:
        """Serve until :meth:`stop` (or the ``exit_after_clients`` budget)."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Stop accepting, flush nothing further, tear everything down."""
        if self._stopping:
            return
        self._stopping = True
        self._running = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Wake every waiter so tasks observe the stop.
        self._not_empty.set()
        self._not_full.set()
        if self._driver_task is not None and self._driver_task is not asyncio.current_task():
            await asyncio.gather(self._driver_task, return_exceptions=True)
        pending: List[asyncio.Task] = []
        for client in list(self._clients.values()):
            for task in (client.reader_task, client.writer_task):
                if task is not None and task is not asyncio.current_task():
                    pending.append(task)
            await self._cleanup(client)
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._stopped.set()

    def observe(self) -> Dict[str, object]:
        """Point-in-time server counters (the ``# net:`` stats surface)."""
        return {
            "host": self.host,
            "port": self.port,
            "clients": len(self._clients),
            "clients_served": self.clients_served,
            "subscriptions": len(self._subs),
            "frames_in": self.frames_in,
            "tuples_in": self.tuples_in,
            "batches": self.batches,
            "queue_depth": self._queued_tuples,
            "peak_queue_depth": self.peak_queue_depth,
            "peak_outbox": self.peak_outbox,
            "match_frames_out": self.match_frames_out,
            "acks_out": self.acks_out,
            "shed": self.shed_total,
            "protocol_errors": self.protocol_errors,
            "position": self.engine.position,
        }

    # ----------------------------------------------------------- connections
    async def _on_connection(self, reader, writer) -> None:
        if self.sndbuf is not None:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, self.sndbuf)
        if self.write_buffer_limit is not None:
            writer.transport.set_write_buffer_limits(high=self.write_buffer_limit)
        client = _Client(self._next_client_id, reader, writer)
        self._next_client_id += 1
        self._clients[client.id] = client
        self.clients_served += 1
        self._m_clients.set(len(self._clients))
        client.writer_task = asyncio.ensure_future(self._write_loop(client))
        client.reader_task = asyncio.ensure_future(self._read_loop(client))

    async def _read_loop(self, client: _Client) -> None:
        reader = client.reader
        try:
            while self._running and not client.closing:
                header = await reader.readexactly(HEADER_SIZE)
                length = frame_length(header, self.max_frame_bytes)
                body = await reader.readexactly(length)
                message = protocol.validate_client_message(decode_body(body))
                self.frames_in += 1
                await self._handle(client, message)
        except (asyncio.IncompleteReadError, ConnectionError):
            # EOF or reset: a clean (or at least unilateral) disconnect.
            await self._disconnect(client)
        except FrameProtocolError as exc:
            self.protocol_errors += 1
            self._kick(client, str(exc))
        except asyncio.CancelledError:
            raise

    async def _handle(self, client: _Client, message: Tup) -> None:
        command = message[0]
        if command == "ingest":
            await self._admit(client, message[1], message[2])
        elif command in ("subscribe", "unsubscribe"):
            # Control entries ride the queue so the engine sees them in
            # admission order relative to tuples — the one total order the
            # differential tests replay.
            self._queue.append(("c", client, message))
            self._not_empty.set()
        elif command == "ping":
            self._enqueue(
                client, encode_frame(protocol.pong(message[1], self.engine.position))
            )
        elif command == "hello":
            kind = type(self.engine).__name__
            self._enqueue(client, encode_frame(protocol.welcome(kind)))

    async def _admit(self, client: _Client, seq: int, tuples: Sequence[Any]) -> None:
        count = len(tuples)
        if count > self.max_queue:
            raise FrameProtocolError(
                f"ingest frame of {count} tuples exceeds the queue bound "
                f"({self.max_queue}); split the batch"
            )
        # Backpressure: stop consuming this socket until the batch fits.
        while (
            self._queued_tuples + count > self.max_queue
            and self._running
            and not client.closing
        ):
            self._not_full.clear()
            await self._not_full.wait()
        if not self._running or client.closing:
            return
        queue = self._queue
        last = count - 1
        for index, tup in enumerate(tuples):
            queue.append(("t", tup, (client, seq, count) if index == last else None))
        self._queued_tuples += count
        if self._queued_tuples > self.peak_queue_depth:
            self.peak_queue_depth = self._queued_tuples
        self.tuples_in += count
        self._m_tuples.inc(count)
        self._m_frames.inc()
        self._m_queue_depth.set(self._queued_tuples)
        self._not_empty.set()

    # ---------------------------------------------------------------- driver
    async def _drive(self) -> None:
        queue = self._queue
        while self._running:
            if not queue:
                self._not_empty.clear()
                self._m_queue_depth.set(0)
                await self._not_empty.wait()
                continue
            if queue[0][0] == "c":
                _, client, message = queue.popleft()
                self._control(client, message)
                continue
            # Adaptive coalescing: drain whatever ingest entries are
            # contiguous at the head, up to max_batch.
            entries: List[Tup] = []
            while queue and queue[0][0] == "t" and len(entries) < self.max_batch:
                entries.append(queue.popleft())
            self._queued_tuples -= len(entries)
            self._m_queue_depth.set(self._queued_tuples)
            try:
                base, outputs = self.engine.ingest_batch([entry[1] for entry in entries])
            except Exception as exc:
                # The engine is the shared resource: if it fails mid-batch,
                # position continuity is gone and serving on is unsound.
                self.driver_error = exc
                self._running = False
                asyncio.ensure_future(self.stop())
                return
            self.batches += 1
            self._m_coalesce.record(len(entries))
            self._fan_out(base, outputs, entries)
            self._not_full.set()
            # Yield once per batch so readers refill the queue (and writers
            # flush) while the next batch accumulates.
            await asyncio.sleep(0)

    def _control(self, client: _Client, message: Tup) -> None:
        if client.closed:
            return
        if message[0] == "subscribe":
            self._subscribe(client, message[1], message[2], message[3])
        else:
            self._unsubscribe(client, message[1])

    def _subscribe(self, client, query, window, name) -> None:
        key = (query, window)
        sub = self._subs.get(key)
        if sub is None:
            try:
                handle = self.engine.register(query, window, name=name)
            except Exception as exc:  # compile/validate errors → refusal
                self._enqueue(client, encode_frame(protocol.refused(str(exc))))
                return
            sub = _Subscription(key, handle)
            self._subs[key] = sub
            self._subs_by_handle[handle.id] = sub
        if client in sub.subscribers:
            self._enqueue(
                client,
                encode_frame(protocol.refused(f"already subscribed to handle {sub.handle.id}")),
            )
            return
        sub.subscribers.add(client)
        client.subs[sub.handle.id] = sub
        self._m_subs.set(len(self._subs))
        self._enqueue(
            client,
            encode_frame(
                protocol.subscribed(sub.handle.id, sub.handle.name, sub.handle.window)
            ),
        )

    def _unsubscribe(self, client: _Client, handle_id: int) -> None:
        sub = client.subs.pop(handle_id, None)
        if sub is None:
            self._enqueue(
                client, encode_frame(protocol.refused(f"not subscribed to handle {handle_id}"))
            )
            return
        self._release(sub, client)
        self._enqueue(client, encode_frame(protocol.unsubscribed(handle_id)))

    def _release(self, sub: _Subscription, client: _Client) -> None:
        sub.subscribers.discard(client)
        if not sub.subscribers:
            del self._subs[sub.key]
            del self._subs_by_handle[sub.handle.id]
            try:
                self.engine.unregister(sub.handle)
            except KeyError:
                pass
        self._m_subs.set(len(self._subs))

    def _fan_out(self, base: int, outputs, entries) -> None:
        # Group this batch's matches per handle, in stream order.
        per_handle: Dict[int, List[Tup]] = {}
        for offset, matches in enumerate(outputs):
            if not matches:
                continue
            position = base + offset
            for handle_id, valuations in matches.items():
                if valuations:
                    per_handle.setdefault(handle_id, []).append((position, valuations))
        for handle_id, batch in per_handle.items():
            sub = self._subs_by_handle.get(handle_id)
            if sub is None or not sub.subscribers:
                continue
            frame = encode_frame(("matches", handle_id, batch))  # encode once
            for subscriber in list(sub.subscribers):
                if self._enqueue_match(subscriber, frame):
                    self.match_frames_out += 1
        # Acks strictly after this batch's matches: per-connection FIFO then
        # guarantees the ack is a barrier for everything it covers.
        for offset, (_kind, _tup, marker) in enumerate(entries):
            if marker is None:
                continue
            origin, seq, count = marker
            if origin.closed or origin.closing:
                continue
            last_position = base + offset
            self._enqueue(
                origin,
                encode_frame(protocol.ack(seq, last_position - count + 1, count)),
            )
            self.acks_out += 1

    # ---------------------------------------------------------------- egress
    def _enqueue_match(self, client: _Client, frame: bytes) -> bool:
        """Queue a (sheddable) match frame; apply the shedding policy at cap."""
        if client.closed or client.closing:
            return False
        if len(client.outbox) >= self.max_outbox:
            self.shed_total += 1
            client.shed += 1
            self._m_shed.inc()
            if self.shed_policy == "disconnect":
                self._kick(client, "slow subscriber: outbox full")
            return False  # "drop": this match frame is shed, connection lives
        self._push(client, frame)
        return True

    def _enqueue(self, client: _Client, frame: bytes) -> None:
        """Queue a control frame (ack/reply); bypasses the cap with a backstop."""
        if client.closed or client.closing:
            return
        if len(client.outbox) >= self.max_outbox * _CONTROL_BACKSTOP:
            self._kick(client, "peer is not reading its socket")
            return
        self._push(client, frame)

    def _push(self, client: _Client, frame: bytes) -> None:
        client.outbox.append(frame)
        if len(client.outbox) > self.peak_outbox:
            self.peak_outbox = len(client.outbox)
        client.outbox_event.set()

    async def _write_loop(self, client: _Client) -> None:
        writer = client.writer
        try:
            while True:
                if not client.outbox:
                    if client.closing or not self._running:
                        break
                    client.outbox_event.clear()
                    await client.outbox_event.wait()
                    continue
                frame = client.outbox.popleft()
                writer.write(frame)
                await writer.drain()
                self._m_egress_frames.inc()
                self._m_egress_bytes.inc(len(frame))
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass
        finally:
            await self._cleanup(client)

    # ----------------------------------------------------------- termination
    def _kick(self, client: _Client, reason: str) -> None:
        """Protocol-error or shed close: error frame, flush, disconnect."""
        if client.closing or client.closed:
            return
        client.outbox.append(encode_frame(protocol.error(reason)))
        client.closing = True
        client.outbox_event.set()
        if (
            client.reader_task is not None
            and client.reader_task is not asyncio.current_task()
        ):
            client.reader_task.cancel()

    async def _disconnect(self, client: _Client) -> None:
        """Peer went away: no error frame, just flush and clean up."""
        if client.closing or client.closed:
            return
        client.closing = True
        client.outbox_event.set()

    async def _cleanup(self, client: _Client) -> None:
        if client.closed:
            return
        client.closed = True
        client.closing = True
        self._clients.pop(client.id, None)
        for sub in list(client.subs.values()):
            self._release(sub, client)
        client.subs.clear()
        client.outbox.clear()
        for task in (client.reader_task, client.writer_task):
            if task is not None and task is not asyncio.current_task():
                task.cancel()
        client.outbox_event.set()
        try:
            client.writer.close()
            await asyncio.wait_for(client.writer.wait_closed(), timeout=5)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            try:
                client.writer.transport.abort()
            except Exception:
                pass
        self._m_clients.set(len(self._clients))
        # Unblock an admission wait that belonged to this client.
        self._not_full.set()
        if (
            self.exit_after_clients is not None
            and self.clients_served >= self.exit_after_clients
            and not self._clients
            and self._running
        ):
            asyncio.ensure_future(self.stop())


class ServerThread:
    """Run an :class:`IngestServer` on a background event loop.

    The synchronous harness the tests, the benchmark, and the CLI smoke
    share: enter the context, connect :class:`~repro.net.client.IngestClient`
    instances to ``.port``, exit to stop.  The engine must only be touched
    by the server loop while the context is open.
    """

    def __init__(self, engine, **kwargs) -> None:
        self._engine = engine
        self._kwargs = kwargs
        self.server: Optional[IngestServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self.server = IngestServer(self._engine, **self._kwargs)
        loop.run_until_complete(self.server.start())
        self._started.set()
        try:
            loop.run_until_complete(self.server.serve_forever())
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, name="repro-ingest", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("ingest server failed to start within 30s")
        return self

    def stop(self) -> None:
        if self._loop is None or self.server is None:
            return
        if self._thread is not None and self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop)
            self._thread.join(timeout=30)

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the server to exit on its own (``exit_after_clients``)."""
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
