"""The ingest wire protocol: message shapes over shared pickle frames.

Transport framing is :mod:`repro.runtime.frames` — the same 4-byte
length-prefixed ``pickle.HIGHEST_PROTOCOL`` frames the sharding layer
speaks over pipes, here over a TCP byte stream.  Every message is a plain
tuple ``(command, *args)``.

Client → server
---------------
``("hello", version)``
    Optional handshake; the server replies ``("welcome", version, engine)``.
``("subscribe", query, window, name)``
    Register a query and subscribe to its matches.  ``query`` is a query
    string (or ``None`` against a single-query server, which subscribes the
    engine's one compiled query); ``window`` is a positive int (``None``
    with ``query=None``).  Reply: ``("subscribed", handle_id, name,
    window)`` — or ``("refused", reason)`` for a well-formed request the
    engine rejects (unparseable query, bad window).  Subscribing a
    ``(query, window)`` pair another client already registered shares the
    engine-side handle (refcounted); matches are encoded once and the same
    frame bytes fan out to every subscriber.
``("unsubscribe", handle_id)``
    Drop this client's subscription.  Reply ``("unsubscribed", handle_id)``
    or ``("refused", reason)``.  The engine unregisters the query when its
    last subscriber leaves (riding the incremental merged-index patch).
``("ingest", seq, tuples)``
    Push a batch of :class:`~repro.cq.schema.Tuple` into the stream.
    ``seq`` is a client-chosen cookie echoed in the ack.  Reply (after the
    engine batch containing the frame's **last** tuple): ``("ack", seq,
    base_position, count)`` where ``base_position`` is the global stream
    position assigned to the frame's first tuple.  Per-connection FIFO
    guarantees every match produced at positions ≤ ``base_position +
    count - 1`` for this client's subscriptions is delivered *before* the
    ack — the ack is a match barrier, which is how the differential tests
    and the benchmark reconstruct the exact interleaved order.
``("ping", token)``
    Reply ``("pong", token, position)``; a flush barrier past everything
    already enqueued for this client.

Server → client
---------------
``("matches", handle_id, batch)``
    ``batch`` is ``[(position, [Valuation, ...]), ...]`` — every match the
    last engine batch produced for that handle, in stream order.
``("error", reason)``
    Protocol violation (malformed frame, unknown command, bad argument
    shapes, oversized frame).  The server closes this connection after
    sending it; other clients and the stream position are unaffected.

Security note: frames are **pickle** — the server trusts its network, the
same trust boundary as the sharding layer's worker pipes.  Malformed
pickles are contained (``FrameProtocolError`` → error-close), but the
protocol is not designed for hostile peers; bind to loopback or a private
network.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple as Tup

from repro.cq.schema import Tuple
from repro.runtime.frames import FrameProtocolError

#: Protocol version spoken by this build (echoed in ``welcome``).
PROTOCOL_VERSION = 1

#: Commands a client may send.
CLIENT_COMMANDS = frozenset({"hello", "subscribe", "unsubscribe", "ingest", "ping"})


def validate_client_message(message: Any) -> Tup:
    """Check shape and argument types of an inbound client message.

    Returns the message when well-formed; raises
    :class:`~repro.runtime.frames.FrameProtocolError` otherwise.  This is
    the server's single admission gate — everything past it may assume the
    documented shapes.
    """
    if not isinstance(message, tuple) or not message:
        raise FrameProtocolError(f"message is not a command tuple: {message!r:.80}")
    command = message[0]
    if command not in CLIENT_COMMANDS:
        raise FrameProtocolError(f"unknown command {command!r:.80}")
    if command == "hello":
        if len(message) != 2 or not isinstance(message[1], int):
            raise FrameProtocolError("hello expects (hello, version:int)")
    elif command == "subscribe":
        if len(message) != 4:
            raise FrameProtocolError("subscribe expects (subscribe, query, window, name)")
        _, query, window, name = message
        if query is not None and not isinstance(query, str):
            raise FrameProtocolError("subscribe query must be a string or None")
        if window is not None and (isinstance(window, bool) or not isinstance(window, int)):
            raise FrameProtocolError("subscribe window must be an int or None")
        if name is not None and not isinstance(name, str):
            raise FrameProtocolError("subscribe name must be a string or None")
    elif command == "unsubscribe":
        if len(message) != 2 or isinstance(message[1], bool) or not isinstance(message[1], int):
            raise FrameProtocolError("unsubscribe expects (unsubscribe, handle_id:int)")
    elif command == "ingest":
        if len(message) != 3:
            raise FrameProtocolError("ingest expects (ingest, seq, tuples)")
        _, seq, tuples = message
        if isinstance(seq, bool) or not isinstance(seq, int):
            raise FrameProtocolError("ingest seq must be an int")
        if not isinstance(tuples, (list, tuple)) or not tuples:
            raise FrameProtocolError("ingest tuples must be a non-empty list")
        for item in tuples:
            if not isinstance(item, Tuple):
                raise FrameProtocolError(
                    f"ingest items must be repro Tuple, got {type(item).__name__}"
                )
            if not isinstance(item.relation, str):
                raise FrameProtocolError("ingest tuple relation must be a string")
            try:
                hash(item.values)
            except TypeError as exc:
                raise FrameProtocolError(
                    f"ingest tuple values must be hashable: {exc}"
                ) from exc
    elif command == "ping":
        if len(message) != 2:
            raise FrameProtocolError("ping expects (ping, token)")
    return message


# ----------------------------------------------------------- reply builders
def welcome(engine_kind: str) -> Tup:
    return ("welcome", PROTOCOL_VERSION, engine_kind)


def subscribed(handle_id: int, name: str, window: Optional[int]) -> Tup:
    return ("subscribed", handle_id, name, window)


def unsubscribed(handle_id: int) -> Tup:
    return ("unsubscribed", handle_id)


def refused(reason: str) -> Tup:
    return ("refused", reason)


def ack(seq: int, base_position: int, count: int) -> Tup:
    return ("ack", seq, base_position, count)


def pong(token: Any, position: int) -> Tup:
    return ("pong", token, position)


def error(reason: str) -> Tup:
    return ("error", reason)
