"""A blocking (synchronous) client for the ingest server.

One socket, one :class:`~repro.runtime.frames.FrameAssembler`, and a small
pump: every receive dispatches matches and acks into local buffers, so a
caller can interleave pushes and waits however it likes.  Concurrency is a
thread-per-client affair — the tests and the benchmark run many of these
against one server.

The ack contract (see :mod:`repro.net.protocol`) makes this client enough
to reconstruct global order: ``wait_ack(seq)`` returns the
``(base_position, count)`` the server assigned to that ingest frame, and
every match at covered positions for this client's subscriptions has
already been delivered when it returns.
"""

from __future__ import annotations

import itertools
import socket
from typing import Any, Dict, List, Optional, Sequence, Tuple as Tup

from repro.net import protocol
from repro.runtime.frames import FrameAssembler, FrameProtocolError, encode_frame


class NetClientError(RuntimeError):
    """The server refused a request, errored the connection, or went away."""


class IngestClient:
    """Synchronous framed client; see the module docstring.

    Matches accumulate in :attr:`matches` — ``{handle_id: [(position,
    [Valuation, ...]), ...]}`` in delivery order — and acks in
    :attr:`acks` (``{seq: (base_position, count)}``).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        rcvbuf: Optional[int] = None,
    ) -> None:
        if rcvbuf is None:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        else:
            # A receive buffer must be shrunk before connecting (window
            # scaling is negotiated at the handshake) — the slow-subscriber
            # tests use this to make backpressure bite at small volumes.
            self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)
            self._sock.settimeout(timeout)
            self._sock.connect((host, port))
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._assembler = FrameAssembler()
        self._inbox: List[Tup] = []  # decoded but undelivered messages
        self._seq = itertools.count()
        self.matches: Dict[int, List[Tup]] = {}
        self.acks: Dict[int, Tup] = {}
        self.errors: List[str] = []
        self.closed = False

    # ------------------------------------------------------------------ I/O
    def _send(self, message: Tup) -> None:
        try:
            self._sock.sendall(encode_frame(message))
        except OSError as exc:
            raise NetClientError(f"send failed: {exc}") from exc

    def _recv_message(self) -> Tup:
        while not self._inbox:
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout as exc:
                raise NetClientError("timed out waiting for the server") from exc
            except OSError as exc:
                raise NetClientError(f"receive failed: {exc}") from exc
            if not chunk:
                raise NetClientError("server closed the connection")
            try:
                self._inbox.extend(self._assembler.feed(chunk))
            except FrameProtocolError as exc:
                raise NetClientError(f"bad frame from server: {exc}") from exc
        return self._inbox.pop(0)

    def _dispatch(self, message: Tup) -> None:
        kind = message[0]
        if kind == "matches":
            self.matches.setdefault(message[1], []).extend(message[2])
        elif kind == "ack":
            self.acks[message[1]] = (message[2], message[3])
        elif kind == "error":
            self.errors.append(message[1])
            raise NetClientError(f"server error: {message[1]}")

    def _pump_until(self, *kinds: str) -> Tup:
        """Dispatch messages until one of ``kinds`` arrives; return it."""
        while True:
            message = self._recv_message()
            if message[0] in kinds:
                return message
            self._dispatch(message)

    # ------------------------------------------------------------- requests
    def hello(self) -> Tup:
        """Handshake; returns ``(version, engine_kind)``."""
        self._send(("hello", protocol.PROTOCOL_VERSION))
        reply = self._pump_until("welcome")
        return reply[1], reply[2]

    def subscribe(
        self,
        query: Optional[str] = None,
        window: Optional[int] = None,
        name: Optional[str] = None,
    ) -> Tup:
        """Register + subscribe; returns ``(handle_id, name, window)``."""
        self._send(("subscribe", query, window, name))
        reply = self._pump_until("subscribed", "refused")
        if reply[0] == "refused":
            raise NetClientError(f"subscribe refused: {reply[1]}")
        return reply[1], reply[2], reply[3]

    def unsubscribe(self, handle_id: int) -> None:
        self._send(("unsubscribe", handle_id))
        reply = self._pump_until("unsubscribed", "refused")
        if reply[0] == "refused":
            raise NetClientError(f"unsubscribe refused: {reply[1]}")

    def ingest(self, tuples: Sequence[Any], seq: Optional[int] = None) -> int:
        """Push one ingest frame; returns its ``seq`` (ack arrives later)."""
        if seq is None:
            seq = next(self._seq)
        self._send(("ingest", seq, list(tuples)))
        return seq

    def wait_ack(self, seq: int) -> Tup:
        """Block until ``seq``'s ack; returns ``(base_position, count)``.

        All matches covering this frame's positions (for this client's
        subscriptions) have been dispatched into :attr:`matches` when this
        returns — the ack is a match barrier.
        """
        while seq not in self.acks:
            self._dispatch(self._recv_message())
        return self.acks[seq]

    def ingest_all(
        self, tuples: Sequence[Any], frame_size: int = 256, pipeline: int = 32
    ) -> Tup:
        """Push ``tuples`` in ``frame_size`` chunks, at most ``pipeline``
        frames outstanding; wait for every ack.

        The pipeline bound matters: a sender that never reads while pushing
        lets its own acks pile up server-side until the control backstop
        kicks it.  Returns the last frame's ``(base_position, count)``.
        """
        items = list(tuples)
        if not items:
            raise ValueError("no tuples to ingest")
        outstanding: List[int] = []
        ack = None
        for start in range(0, len(items), frame_size):
            if len(outstanding) >= pipeline:
                ack = self.wait_ack(outstanding.pop(0))
            outstanding.append(self.ingest(items[start : start + frame_size]))
        for seq in outstanding:
            ack = self.wait_ack(seq)
        return ack

    def ping(self) -> int:
        """Round-trip barrier; returns the engine's stream position."""
        token = f"ping-{next(self._seq)}"
        self._send(("ping", token))
        while True:
            message = self._pump_until("pong")
            if message[1] == token:
                return message[2]

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "IngestClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
