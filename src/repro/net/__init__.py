"""Network serving: the asyncio ingestion server and its wire protocol.

Clients push :class:`~repro.cq.schema.Tuple` batches and subscribe to
query matches over one TCP connection speaking the shared length-prefixed
pickle frames (:mod:`repro.runtime.frames` — the same codec as the shard
pipes).  The server coalesces everything buffered across all connections
into adaptive engine batches (one eviction sweep per batch) and fans
matches out encode-once, with hard-bounded queues in both directions —
see :mod:`repro.net.server` for the flow-control design and the README's
"Serving over the network" section for the operator view.
"""

from repro.net.client import IngestClient, NetClientError
from repro.net.protocol import PROTOCOL_VERSION
from repro.net.server import IngestServer, ServerThread, SingleEngineFeed

__all__ = [
    "IngestClient",
    "IngestServer",
    "NetClientError",
    "PROTOCOL_VERSION",
    "ServerThread",
    "SingleEngineFeed",
]
