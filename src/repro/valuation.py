"""Valuations ``ν : Ω -> 2^N`` and their algebra (paper, Sections 2, 3 and 5).

A valuation maps labels to finite sets of stream positions.  It is the single
output type shared by:

* CCEA and PCEA runs (``ν_ρ`` / ``ν_τ``),
* CQ-over-stream semantics (``η̂`` for a t-homomorphism ``η``), and
* the enumeration data structure of Section 5 (``⟦n⟧``).

Valuations are immutable and hashable, labels mapped to the empty set are
normalised away, and the product ``⊕`` together with the *simple* check mirror
the definitions used by the enumeration data structure.

Because the streaming engine constructs one valuation per enumerated output
(and ``within_window`` is consulted on every node visited during enumeration),
the extreme positions ``min(ν)`` / ``max(ν)`` are computed once at construction
and cached, and the hot constructors (:meth:`Valuation.singleton` and
:meth:`Valuation.product`) bypass the normalising ``__init__``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Mapping, Tuple


Label = Hashable
PositionSet = FrozenSet[int]


class Valuation:
    """An immutable valuation ``ν : Ω -> 2^N``.

    Examples
    --------
    >>> v = Valuation({"dot": {1, 3, 5}})
    >>> v["dot"]
    frozenset({1, 3, 5})
    >>> v.min_position(), v.max_position()
    (1, 5)
    >>> (v ⊕ Valuation({"dot": {7}})) if False else None  # doctest: +SKIP
    """

    __slots__ = ("_mapping", "_hash", "_min", "_max")

    def __init__(self, mapping: Mapping[Label, Iterable[int]] | None = None) -> None:
        normalised: Dict[Label, PositionSet] = {}
        lo: int | None = None
        hi: int | None = None
        if mapping:
            for label, positions in mapping.items():
                frozen = frozenset(positions)
                if frozen:
                    normalised[label] = frozen
                    for position in frozen:
                        if lo is None or position < lo:
                            lo = position
                        if hi is None or position > hi:
                            hi = position
        self._mapping: Dict[Label, PositionSet] = normalised
        self._hash: int | None = None
        self._min: int | None = lo
        self._max: int | None = hi

    @classmethod
    def _from_parts(
        cls, mapping: Dict[Label, PositionSet], lo: int | None, hi: int | None
    ) -> "Valuation":
        """Internal fast constructor: ``mapping`` must already be normalised
        (non-empty frozensets only) and ``lo``/``hi`` must be its extreme
        positions."""
        self = object.__new__(cls)
        self._mapping = mapping
        self._hash = None
        self._min = lo
        self._max = hi
        return self

    # ------------------------------------------------------------ constructors
    @classmethod
    def singleton(cls, labels: Iterable[Label], position: int) -> "Valuation":
        """The valuation ``ν_{L,i}`` mapping every label of ``labels`` to ``{i}``."""
        positions = frozenset((position,))
        mapping = dict.fromkeys(labels, positions)
        if not mapping:
            return cls._from_parts({}, None, None)
        return cls._from_parts(mapping, position, position)

    @classmethod
    def empty(cls) -> "Valuation":
        """The everywhere-empty valuation."""
        return cls({})

    # ----------------------------------------------------------------- access
    def __getitem__(self, label: Label) -> PositionSet:
        return self._mapping.get(label, frozenset())

    def get(self, label: Label) -> PositionSet:
        return self._mapping.get(label, frozenset())

    def labels(self) -> FrozenSet[Label]:
        """Labels mapped to a non-empty set of positions."""
        return frozenset(self._mapping)

    def items(self) -> Iterator[Tuple[Label, PositionSet]]:
        return iter(self._mapping.items())

    def positions(self) -> FrozenSet[int]:
        """All positions appearing in the valuation."""
        result: set[int] = set()
        for positions in self._mapping.values():
            result |= positions
        return frozenset(result)

    def min_position(self) -> int:
        """``min(ν)``: the smallest position appearing in the valuation (cached).

        Raises :class:`ValueError` for the empty valuation, mirroring the fact
        that the paper only applies ``min`` to outputs of accepting runs.
        """
        if self._min is None:
            raise ValueError("min() of an empty valuation")
        return self._min

    def max_position(self) -> int:
        """``max`` over all positions appearing in the valuation (cached)."""
        if self._max is None:
            raise ValueError("max() of an empty valuation")
        return self._max

    def size(self) -> int:
        """``|ν|``: total number of (label, position) pairs."""
        return sum(len(positions) for positions in self._mapping.values())

    def is_empty(self) -> bool:
        return not self._mapping

    def within_window(self, position: int, window: int) -> bool:
        """Whether ``|position - min(ν)| <= window`` (sliding-window condition)."""
        if self._min is None:
            return True
        return position - self._min <= window

    # ---------------------------------------------------------------- algebra
    def product(self, other: "Valuation") -> "Valuation":
        """The product ``ν ⊕ ν'`` (label-wise union of position sets).

        Returns one of the operands unchanged when the other is empty
        (valuations are immutable, so sharing is safe), and avoids rebuilding
        position sets for labels occurring on only one side — the common case
        in the enumeration data structure, whose products are *simple*.
        """
        if not other._mapping:
            return self
        if not self._mapping:
            return other
        merged: Dict[Label, PositionSet] = dict(self._mapping)
        for label, positions in other._mapping.items():
            existing = merged.get(label)
            merged[label] = positions if existing is None else existing | positions
        lo = self._min if self._min <= other._min else other._min  # type: ignore[operator]
        hi = self._max if self._max >= other._max else other._max  # type: ignore[operator]
        return Valuation._from_parts(merged, lo, hi)

    __or__ = product

    def simple_with(self, other: "Valuation") -> bool:
        """Whether the product ``self ⊕ other`` is *simple* (label-wise disjoint)."""
        for label, positions in self.items():
            if positions & other.get(label):
                return False
        return True

    def restrict_labels(self, labels: Iterable[Label]) -> "Valuation":
        """Keep only the given labels."""
        wanted = set(labels)
        return Valuation({l: p for l, p in self.items() if l in wanted})

    def rename_labels(self, renaming: Mapping[Label, Label]) -> "Valuation":
        """Rename labels according to ``renaming`` (missing labels kept as-is)."""
        return Valuation({renaming.get(l, l): p for l, p in self.items()})

    # ------------------------------------------------------------- comparison
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Valuation):
            return self._mapping == other._mapping
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._mapping.items()))
        return self._hash

    def __len__(self) -> int:
        return len(self._mapping)

    def __bool__(self) -> bool:
        return bool(self._mapping)

    def as_dict(self) -> Dict[Label, PositionSet]:
        """A plain ``dict`` copy of the mapping."""
        return dict(self._mapping)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{label!r}: {sorted(positions)}" for label, positions in sorted(self._mapping.items(), key=lambda kv: str(kv[0]))
        )
        return f"Valuation({{{inner}}})"


def product_of(valuations: Iterable[Valuation]) -> Valuation:
    """``⊕`` over a sequence of valuations (empty sequence yields the empty valuation)."""
    result = Valuation.empty()
    for valuation in valuations:
        result = result.product(valuation)
    return result


def is_simple_product(valuations: Iterable[Valuation]) -> bool:
    """Whether the product of the given valuations is simple (pairwise label-disjoint)."""
    seen: Dict[Label, set[int]] = {}
    for valuation in valuations:
        for label, positions in valuation.items():
            bucket = seen.setdefault(label, set())
            if bucket & positions:
                return False
            bucket |= positions
    return True
