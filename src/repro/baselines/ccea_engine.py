"""CCEA streaming engine: the chain-restricted setting of Grez & Riveros ([16]).

A CCEA can only correlate the current tuple with the *previous* tuple of the
run, which is why it cannot express conjunctive patterns such as the automaton
``P_0`` of Example 3.3 (Proposition 3.4).  This engine evaluates a CCEA over a
sliding window by embedding it into a PCEA (every CCEA is a PCEA whose
transitions have at most one source) and reusing Algorithm 1 — the embedding is
exactly the observation made after Example 3.3, and it keeps the comparison in
experiment E7 about *expressiveness*, not implementation details.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.ccea import CCEA
from repro.core.datastructure import DataStructure
from repro.core.evaluation import StreamingEvaluator
from repro.cq.schema import Tuple
from repro.valuation import Valuation


class CCEAStreamingEngine:
    """Sliding-window streaming evaluation of a CCEA (chain automata)."""

    def __init__(self, ccea: CCEA, window: int, datastructure: DataStructure | None = None) -> None:
        self.ccea = ccea
        self.window = window
        self._evaluator = StreamingEvaluator(ccea.to_pcea(), window, datastructure=datastructure)

    @property
    def position(self) -> int:
        return self._evaluator.position

    @property
    def stats(self):
        return self._evaluator.stats

    def process(self, tup: Tuple) -> List[Valuation]:
        """Process one tuple, returning the new outputs inside the window."""
        return self._evaluator.process(tup)

    def run(self, stream, collect: bool = True) -> Dict[int, List[Valuation]]:
        return self._evaluator.run(stream, collect=collect)
