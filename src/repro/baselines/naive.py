"""Naive per-tuple re-evaluation baseline.

At every stream position the engine rebuilds the database of the last ``w + 1``
tuples and re-enumerates every t-homomorphism of the query, keeping those that
use the newest tuple.  Its update time therefore grows with the window content
(and with the number of partial matches), which is the behaviour the streaming
algorithm of Theorem 5.1 is designed to avoid; experiment E4 contrasts the two.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple as Tup

from repro.cq.database import Database
from repro.cq.homomorphism import enumerate_t_homomorphisms
from repro.cq.query import ConjunctiveQuery
from repro.cq.schema import Schema, Tuple
from repro.valuation import Valuation


class NaiveRecomputeEngine:
    """Re-evaluate the query from scratch at every position.

    The engine exposes the same ``process`` interface as
    :class:`repro.core.evaluation.StreamingEvaluator` so benchmarks can swap
    engines without touching the workload code.
    """

    def __init__(self, query: ConjunctiveQuery, window: int, schema: Schema | None = None) -> None:
        self.query = query
        self.window = window
        self.schema = schema or query.infer_schema()
        self.position = -1
        self._buffer: Deque[Tup[int, Tuple]] = deque()

    def process(self, tup: Tuple) -> List[Valuation]:
        """Insert ``tup`` and return the new matches (those using the new position)."""
        self.position += 1
        self._buffer.append((self.position, tup))
        low = self.position - self.window
        while self._buffer and self._buffer[0][0] < low:
            self._buffer.popleft()
        database = Database(self.schema, {position: t for position, t in self._buffer})
        outputs: List[Valuation] = []
        for t_hom in enumerate_t_homomorphisms(self.query, database):
            positions = t_hom.positions()
            if self.position not in positions:
                continue
            outputs.append(Valuation({atom_id: {pos} for atom_id, pos in t_hom.items()}))
        return outputs

    def run(self, stream, collect: bool = True) -> Dict[int, List[Valuation]]:
        """Process a finite stream, mirroring ``StreamingEvaluator.run``."""
        results: Dict[int, List[Valuation]] = {}
        for tup in stream:
            outputs = self.process(tup)
            if collect:
                results[self.position] = outputs
        return results
