"""Baseline evaluation engines used by the comparison experiments (E4, E7)."""

from repro.baselines.naive import NaiveRecomputeEngine
from repro.baselines.delta_join import DeltaJoinEngine
from repro.baselines.ccea_engine import CCEAStreamingEngine

__all__ = ["NaiveRecomputeEngine", "DeltaJoinEngine", "CCEAStreamingEngine"]
