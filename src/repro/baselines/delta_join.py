"""Delta-join baseline (incremental join without factorisation).

The engine keeps, per relation, a hash index of the tuples inside the window.
When a new tuple arrives it is joined — via backtracking over the query's
atoms — against the stored tuples, producing every new match explicitly.  This
is the classical "update time linear in the data / proportional to the number
of new outputs" strategy of incremental view maintenance and of θ-join CER
engines ([19] and the stream-join literature of the related-work section): it
does not maintain a factorised representation, so positions that fire many new
matches pay for each of them during the *update* phase, not only during
enumeration.  Experiment E4 uses it as the stronger baseline.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, Hashable, Iterator, List, Tuple as Tup

from repro.cq.query import Atom, ConjunctiveQuery, Variable
from repro.cq.schema import DataValue, Schema, Tuple
from repro.valuation import Valuation


class DeltaJoinEngine:
    """Incremental (non-factorised) join evaluation of a CQ over a sliding window."""

    def __init__(self, query: ConjunctiveQuery, window: int, schema: Schema | None = None) -> None:
        self.query = query
        self.window = window
        self.schema = schema or query.infer_schema()
        self.position = -1
        # Per relation: deque of (position, tuple) inside the window, plus a
        # hash index keyed by the full value tuple for fast candidate lookup.
        self._by_relation: Dict[str, Deque[Tup[int, Tuple]]] = defaultdict(deque)

    # -------------------------------------------------------------- streaming
    def process(self, tup: Tuple) -> List[Valuation]:
        self.position += 1
        self._evict()
        outputs = list(self._new_matches(tup))
        self._by_relation[tup.relation].append((self.position, tup))
        return outputs

    def run(self, stream, collect: bool = True) -> Dict[int, List[Valuation]]:
        results: Dict[int, List[Valuation]] = {}
        for tup in stream:
            outputs = self.process(tup)
            if collect:
                results[self.position] = outputs
        return results

    # ----------------------------------------------------------------- joins
    def _evict(self) -> None:
        low = self.position - self.window
        for buffer in self._by_relation.values():
            while buffer and buffer[0][0] < low:
                buffer.popleft()

    def _new_matches(self, tup: Tuple) -> Iterator[Valuation]:
        """Enumerate matches that use the new tuple for at least one atom.

        The new tuple is pinned, in turn, to each atom it can instantiate; the
        remaining atoms are matched against the stored window.  To avoid
        emitting a match twice (when the new tuple could instantiate several
        atoms), atoms before the pinned one are not allowed to map to the new
        position.
        """
        for pinned_index, atom in enumerate(self.query.atoms):
            if not atom.matches(tup):
                continue
            binding: Dict[Variable, DataValue] = {}
            if not self._bind(atom, tup, binding):
                continue
            assignment = {pinned_index: self.position}
            yield from self._extend(0, pinned_index, binding, assignment, tup)

    def _extend(
        self,
        atom_index: int,
        pinned_index: int,
        binding: Dict[Variable, DataValue],
        assignment: Dict[int, int],
        new_tuple: Tuple,
    ) -> Iterator[Valuation]:
        if atom_index == len(self.query.atoms):
            yield Valuation({atom_id: {pos} for atom_id, pos in assignment.items()})
            return
        if atom_index == pinned_index:
            yield from self._extend(atom_index + 1, pinned_index, binding, assignment, new_tuple)
            return
        atom = self.query.atom(atom_index)
        allow_new = atom_index > pinned_index
        for position, stored in self._candidates(atom, new_tuple, allow_new):
            extended = dict(binding)
            if not self._bind(atom, stored, extended):
                continue
            assignment[atom_index] = position
            yield from self._extend(atom_index + 1, pinned_index, extended, assignment, new_tuple)
            del assignment[atom_index]

    def _candidates(
        self, atom: Atom, new_tuple: Tuple, allow_new: bool
    ) -> Iterator[Tup[int, Tuple]]:
        """Stored window tuples of the atom's relation, plus the new tuple when allowed.

        The new tuple is allowed only for atoms *after* the pinned one: the
        pinned atom is the first atom mapped to the new position, so earlier
        atoms must map to stored tuples (this is what makes every match be
        emitted exactly once, including self-join matches that reuse the new
        position for several atoms).
        """
        yield from self._by_relation.get(atom.relation, ())
        if allow_new and atom.relation == new_tuple.relation:
            yield (self.position, new_tuple)

    def _bind(self, atom: Atom, tup: Tuple, binding: Dict[Variable, DataValue]) -> bool:
        if tup.relation != atom.relation or tup.arity != atom.arity:
            return False
        for term, value in zip(atom.terms, tup.values):
            if isinstance(term, Variable):
                if term in binding and binding[term] != value:
                    return False
                binding[term] = value
            elif term != value:
                return False
        return True
