"""Closure operations on PFA / DFA languages.

PFA recognise exactly the regular languages (Proposition 3.2), so the usual
Boolean closure operations are available by going through the determinization.
The operations here are used by tests (language comparisons between models) and
by the expressiveness benchmark; union is also provided directly on PFA, where
it is a simple disjoint union of the automata.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, Sequence, Set, Tuple

from repro.automata.nfa import DFA
from repro.automata.pfa import PFA, determinize_pfa


State = Hashable
Symbol = Hashable


def _tag_states(pfa: PFA, tag: str) -> PFA:
    """Rename every state of ``pfa`` to ``(tag, state)`` (disjointness helper)."""
    rename = lambda state: (tag, state)  # noqa: E731
    transitions = {
        (frozenset(rename(s) for s in sources), symbol, rename(target))
        for sources, symbol, target in pfa.transitions
    }
    return PFA(
        {rename(s) for s in pfa.states},
        pfa.alphabet,
        transitions,
        {rename(s) for s in pfa.initial},
        {rename(s) for s in pfa.final},
    )


def pfa_union(first: PFA, second: PFA) -> PFA:
    """A PFA recognising ``L(first) ∪ L(second)`` (disjoint union of the automata)."""
    left = _tag_states(first, "L")
    right = _tag_states(second, "R")
    return PFA(
        left.states | right.states,
        left.alphabet | right.alphabet,
        left.transitions | right.transitions,
        left.initial | right.initial,
        left.final | right.final,
    )


def dfa_product(first: DFA, second: DFA, accept: Callable[[bool, bool], bool]) -> DFA:
    """The product DFA with acceptance combined by ``accept`` (e.g. ``and``/``or``).

    Both automata must share their alphabet; missing transitions are treated as
    a rejecting sink.
    """
    if first.alphabet != second.alphabet:
        raise ValueError("product requires identical alphabets")
    alphabet = first.alphabet
    sink = ("sink", "sink")
    initial = (first.initial, second.initial)
    states: Set[Tuple[State, State]] = {initial, sink}
    transition: Dict[Tuple[Tuple[State, State], Symbol], Tuple[State, State]] = {}
    frontier = [initial]
    while frontier:
        current = frontier.pop()
        for symbol in alphabet:
            if current == sink:
                successor = sink
            else:
                left = first.transition.get((current[0], symbol))
                right = second.transition.get((current[1], symbol))
                successor = (left, right) if left is not None and right is not None else sink
                if successor == (None, None):
                    successor = sink
            transition[(current, symbol)] = successor
            if successor not in states:
                states.add(successor)
                frontier.append(successor)
    for symbol in alphabet:
        transition.setdefault((sink, symbol), sink)
    final = {
        state
        for state in states
        if state != sink and accept(state[0] in first.final, state[1] in second.final)
    }
    # The sink can still be accepting for operations like NOR; handle explicitly.
    if accept(False, False):
        final.add(sink)
    return DFA(states, alphabet, transition, initial, final)


def pfa_intersection_dfa(first: PFA, second: PFA) -> DFA:
    """A DFA for ``L(first) ∩ L(second)`` obtained through determinization."""
    return dfa_product(
        _pad_alphabet(determinize_pfa(first), first.alphabet | second.alphabet),
        _pad_alphabet(determinize_pfa(second), first.alphabet | second.alphabet),
        lambda a, b: a and b,
    )


def pfa_difference_dfa(first: PFA, second: PFA) -> DFA:
    """A DFA for ``L(first) ∖ L(second)``."""
    return dfa_product(
        _pad_alphabet(determinize_pfa(first), first.alphabet | second.alphabet),
        _pad_alphabet(determinize_pfa(second), first.alphabet | second.alphabet),
        lambda a, b: a and not b,
    )


def _pad_alphabet(dfa: DFA, alphabet: FrozenSet[Symbol] | Set[Symbol]) -> DFA:
    """Extend a DFA to a larger alphabet (unknown symbols go nowhere / reject)."""
    if set(alphabet) == set(dfa.alphabet):
        return dfa
    return DFA(dfa.states, alphabet, dfa.transition, dfa.initial, dfa.final)


def languages_equal_up_to(first: PFA, second: PFA, max_length: int) -> bool:
    """Whether both PFA accept the same words of length ≤ ``max_length``.

    A bounded language-equivalence check used in tests and benchmarks; for a
    complete check one would compare the determinized automata up to
    bisimulation, which the bounded check approximates well for the small
    alphabets used here.
    """
    alphabet = sorted(first.alphabet | second.alphabet, key=repr)
    words: Sequence[Tuple[Symbol, ...]] = [()]
    for _ in range(max_length + 1):
        next_words = []
        for word in words:
            if first.accepts(word) != second.accepts(word):
                return False
            if len(word) < max_length:
                next_words.extend(word + (symbol,) for symbol in alphabet)
        words = next_words
        if not words:
            break
    return True
