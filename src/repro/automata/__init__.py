"""Classical automata substrate: NFA/DFA and Parallelized Finite Automata (PFA)."""

from repro.automata.nfa import NFA, DFA
from repro.automata.pfa import PFA, determinize_pfa

__all__ = ["NFA", "DFA", "PFA", "determinize_pfa"]
