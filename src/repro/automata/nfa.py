"""Non-deterministic and deterministic finite automata (paper, Section 2).

These are the classical models that Parallelized Finite Automata generalise.
They are used by the PFA determinization result (Proposition 3.2), by the
property tests that compare PFA languages with regular languages, and by the
expressiveness benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Mapping, Sequence, Set, Tuple


State = Hashable
Symbol = Hashable


@dataclass(frozen=True)
class NFA:
    """A non-deterministic finite automaton ``(Q, Σ, Δ, I, F)``.

    Transitions are triples ``(p, a, q)``.

    Examples
    --------
    >>> nfa = NFA(states={0, 1}, alphabet={"a", "b"},
    ...           transitions={(0, "a", 0), (0, "b", 0), (0, "a", 1)},
    ...           initial={0}, final={1})
    >>> nfa.accepts(["b", "a"])
    True
    >>> nfa.accepts(["b", "b"])
    False
    """

    states: FrozenSet[State]
    alphabet: FrozenSet[Symbol]
    transitions: FrozenSet[Tuple[State, Symbol, State]]
    initial: FrozenSet[State]
    final: FrozenSet[State]

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        transitions: Iterable[Tuple[State, Symbol, State]],
        initial: Iterable[State],
        final: Iterable[State],
    ) -> None:
        object.__setattr__(self, "states", frozenset(states))
        object.__setattr__(self, "alphabet", frozenset(alphabet))
        object.__setattr__(self, "transitions", frozenset(transitions))
        object.__setattr__(self, "initial", frozenset(initial))
        object.__setattr__(self, "final", frozenset(final))
        self._validate()

    def _validate(self) -> None:
        if not self.initial <= self.states:
            raise ValueError("initial states must be states")
        if not self.final <= self.states:
            raise ValueError("final states must be states")
        for source, symbol, target in self.transitions:
            if source not in self.states or target not in self.states:
                raise ValueError(f"transition ({source}, {symbol}, {target}) uses unknown states")
            if symbol not in self.alphabet:
                raise ValueError(f"transition symbol {symbol!r} not in alphabet")

    # -------------------------------------------------------------- semantics
    def step(self, current: Set[State], symbol: Symbol) -> Set[State]:
        """One subset-construction step."""
        return {
            target
            for source, sym, target in self.transitions
            if sym == symbol and source in current
        }

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Whether the automaton accepts ``word``."""
        current: Set[State] = set(self.initial)
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return False
        return bool(current & self.final)

    def runs(self, word: Sequence[Symbol]) -> Iterator[List[State]]:
        """Enumerate all runs (state sequences) of the automaton over ``word``."""

        def recurse(position: int, state: State, path: List[State]) -> Iterator[List[State]]:
            if position == len(word):
                yield list(path)
                return
            for source, symbol, target in self.transitions:
                if source == state and symbol == word[position]:
                    path.append(target)
                    yield from recurse(position + 1, target, path)
                    path.pop()

        for start in self.initial:
            yield from recurse(0, start, [start])

    def determinize(self) -> "DFA":
        """Classical subset construction."""
        initial = frozenset(self.initial)
        transition: Dict[Tuple[FrozenSet[State], Symbol], FrozenSet[State]] = {}
        states: Set[FrozenSet[State]] = {initial}
        frontier = [initial]
        while frontier:
            subset = frontier.pop()
            for symbol in self.alphabet:
                successor = frozenset(self.step(set(subset), symbol))
                transition[(subset, symbol)] = successor
                if successor not in states:
                    states.add(successor)
                    frontier.append(successor)
        final = {subset for subset in states if subset & self.final}
        return DFA(states, self.alphabet, transition, initial, final)

    def size(self) -> int:
        """Number of states plus transitions."""
        return len(self.states) + len(self.transitions)


@dataclass(frozen=True)
class DFA:
    """A deterministic finite automaton with a (partial) transition function."""

    states: FrozenSet[State]
    alphabet: FrozenSet[Symbol]
    transition: Mapping[Tuple[State, Symbol], State]
    initial: State
    final: FrozenSet[State]

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        transition: Mapping[Tuple[State, Symbol], State],
        initial: State,
        final: Iterable[State],
    ) -> None:
        object.__setattr__(self, "states", frozenset(states))
        object.__setattr__(self, "alphabet", frozenset(alphabet))
        object.__setattr__(self, "transition", dict(transition))
        object.__setattr__(self, "initial", initial)
        object.__setattr__(self, "final", frozenset(final))
        if initial not in self.states:
            raise ValueError("initial state must be a state")
        if not self.final <= self.states:
            raise ValueError("final states must be states")

    def accepts(self, word: Sequence[Symbol]) -> bool:
        current: State | None = self.initial
        for symbol in word:
            current = self.transition.get((current, symbol))
            if current is None:
                return False
        return current in self.final

    def size(self) -> int:
        return len(self.states) + len(self.transition)

    def reachable_states(self) -> FrozenSet[State]:
        """States reachable from the initial state."""
        seen = {self.initial}
        frontier = [self.initial]
        while frontier:
            current = frontier.pop()
            for symbol in self.alphabet:
                target = self.transition.get((current, symbol))
                if target is not None and target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return frozenset(seen)

    def trim(self) -> "DFA":
        """Restrict to reachable states (useful after subset constructions)."""
        reachable = self.reachable_states()
        transition = {
            (source, symbol): target
            for (source, symbol), target in self.transition.items()
            if source in reachable and target in reachable
        }
        return DFA(reachable, self.alphabet, transition, self.initial, self.final & reachable)
