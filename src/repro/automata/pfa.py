"""Parallelized Finite Automata (paper, Section 3).

A PFA is a tuple ``P = (Q, Σ, Δ, I, F)`` whose transitions have the form
``(P, a, q)`` with ``P ⊆ Q``: to move into state ``q`` while reading ``a``,
*one parallel run per state of P* must have been completed already.  A run is
therefore a tree whose leaves (all at depth ``n``) carry initial states, whose
root carries the last state, and where the children of an inner node are
labelled exactly by the source set of the transition it takes.

Two independent semantics are provided:

* :meth:`PFA.accepts` — the forward "subset" simulation used by the proof of
  Proposition 3.2 (linear in ``|word| · |Δ|``);
* :meth:`PFA.run_trees` / :meth:`PFA.accepts_by_run_tree` — the literal
  run-tree semantics (exponential, used as ground truth in property tests).

:func:`determinize_pfa` materialises the DFA of Proposition 3.2 with at most
``2^|Q|`` states.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.automata.nfa import DFA, NFA


State = Hashable
Symbol = Hashable
PFATransition = Tuple[FrozenSet[State], Symbol, State]


@dataclass(frozen=True)
class PFARunNode:
    """A node of a PFA run tree: a state together with its children."""

    state: State
    children: Tuple["PFARunNode", ...] = ()

    def depth(self) -> int:
        """Length of the longest path to a leaf below this node."""
        if not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def leaves(self) -> Iterator["PFARunNode"]:
        if not self.children:
            yield self
        else:
            for child in self.children:
                yield from child.leaves()

    def __repr__(self) -> str:
        return f"PFARunNode({self.state!r}, {len(self.children)} children)"


@dataclass(frozen=True)
class PFA:
    """A Parallelized Finite Automaton ``(Q, Σ, Δ, I, F)``.

    Examples
    --------
    The automaton ``P_0`` of Example 3.1 — "a ``T`` and an ``S`` (in any
    order), later joined by an ``R``":

    >>> sigma = {"T", "S", "R"}
    >>> loops = {(frozenset({s}), a, s) for s in (0, 1, 2, 3) for a in sigma}
    >>> p0 = PFA(states={0, 1, 2, 3, 4}, alphabet=sigma,
    ...          transitions=loops | {
    ...              (frozenset(), "T", 0), (frozenset({0}), "T", 1),
    ...              (frozenset(), "S", 2), (frozenset({2}), "S", 3),
    ...              (frozenset({1, 3}), "R", 4)},
    ...          initial={0, 2}, final={4})
    >>> p0.accepts(["S", "T", "R"])  # doctest: +SKIP
    """

    states: FrozenSet[State]
    alphabet: FrozenSet[Symbol]
    transitions: FrozenSet[PFATransition]
    initial: FrozenSet[State]
    final: FrozenSet[State]

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        transitions: Iterable[Tuple[Iterable[State], Symbol, State]],
        initial: Iterable[State],
        final: Iterable[State],
    ) -> None:
        object.__setattr__(self, "states", frozenset(states))
        object.__setattr__(self, "alphabet", frozenset(alphabet))
        object.__setattr__(
            self,
            "transitions",
            frozenset((frozenset(sources), symbol, target) for sources, symbol, target in transitions),
        )
        object.__setattr__(self, "initial", frozenset(initial))
        object.__setattr__(self, "final", frozenset(final))
        self._validate()

    def _validate(self) -> None:
        if not self.initial <= self.states or not self.final <= self.states:
            raise ValueError("initial/final states must be states")
        for sources, symbol, target in self.transitions:
            if not sources <= self.states or target not in self.states:
                raise ValueError(f"transition ({set(sources)}, {symbol!r}, {target}) uses unknown states")
            if symbol not in self.alphabet:
                raise ValueError(f"transition symbol {symbol!r} not in alphabet")

    # ----------------------------------------------------------------- sizing
    def size(self) -> int:
        """``|P| = |Q| + Σ_{(P,a,q)} (|P| + 1)`` as defined in the paper."""
        return len(self.states) + sum(len(sources) + 1 for sources, _, _ in self.transitions)

    # -------------------------------------------------- forward (fast) semantics
    def step(self, current: Set[State], symbol: Symbol) -> Set[State]:
        """One step of the Proposition 3.2 simulation: states reachable by firing
        any transition whose source set is contained in ``current``.

        Transitions with an empty source set are skipped: in the run-tree
        semantics a node taking such a transition would be a leaf below depth
        ``n``, which the definition forbids, so they can never participate in
        an accepting run.  Skipping them keeps :meth:`accepts` and
        :meth:`accepts_by_run_tree` in exact agreement (the paper's automata
        never use empty sources for PFA; they only do for PCEA, where they play
        the role of the initial function).
        """
        return {
            target
            for sources, sym, target in self.transitions
            if sources and sym == symbol and sources <= current
        }

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Language membership via the forward subset simulation (Prop. 3.2)."""
        if not word:
            return bool(self.initial & self.final)
        current: Set[State] = set(self.initial)
        for symbol in word:
            current = self.step(current, symbol)
        return bool(current & self.final)

    # --------------------------------------------------- run-tree (reference) semantics
    def accepts_by_run_tree(self, word: Sequence[Symbol]) -> bool:
        """Language membership by directly checking run-tree existence.

        This is the literal Section 3 definition and serves as the reference
        implementation the fast simulation is property-tested against.
        """
        word = tuple(word)
        length = len(word)
        if length == 0:
            return bool(self.initial & self.final)

        @lru_cache(maxsize=None)
        def can_root(state: State, depth: int) -> bool:
            """Whether a run subtree rooted at (state, depth) exists with all leaves at depth n."""
            if depth == length:
                return state in self.initial
            symbol = word[length - depth - 1]
            for sources, sym, target in self.transitions:
                if sym != symbol or target != state or not sources:
                    continue
                if all(can_root(source, depth + 1) for source in sources):
                    return True
            return False

        return any(can_root(final, 0) for final in self.final)

    def run_trees(self, word: Sequence[Symbol], limit: int | None = None) -> Iterator[PFARunNode]:
        """Enumerate accepting run trees over ``word`` (up to ``limit``).

        Intended for witnesses in tests and examples; the number of run trees
        can be exponential.
        """
        word = tuple(word)
        length = len(word)
        emitted = 0

        if length == 0:
            for state in sorted(self.initial & self.final, key=repr):
                yield PFARunNode(state)
                emitted += 1
                if limit is not None and emitted >= limit:
                    return
            return

        def subtrees(state: State, depth: int) -> Iterator[PFARunNode]:
            if depth == length:
                if state in self.initial:
                    yield PFARunNode(state)
                return
            symbol = word[length - depth - 1]
            for sources, sym, target in sorted(self.transitions, key=repr):
                if sym != symbol or target != state or not sources:
                    continue
                yield from _combine(sorted(sources, key=repr), depth, state)

        def _combine(sources: List[State], depth: int, state: State) -> Iterator[PFARunNode]:
            choices: List[List[PFARunNode]] = []
            for source in sources:
                alternatives = list(subtrees(source, depth + 1))
                if not alternatives:
                    return
                choices.append(alternatives)
            for combination in _product(choices):
                yield PFARunNode(state, tuple(combination))

        for final in sorted(self.final, key=repr):
            for tree in subtrees(final, 0):
                yield tree
                emitted += 1
                if limit is not None and emitted >= limit:
                    return

    # ----------------------------------------------------------- conversions
    @classmethod
    def from_nfa(cls, nfa: NFA) -> "PFA":
        """Embed an NFA as a PFA (every run tree is a line)."""
        transitions = set()
        for source, symbol, target in nfa.transitions:
            transitions.add((frozenset({source}), symbol, target))
        # Initial states are reached by empty-source transitions in PCEA style;
        # for PFA the initial set itself plays that role, so no change needed.
        return cls(nfa.states, nfa.alphabet, transitions, nfa.initial, nfa.final)

    def __repr__(self) -> str:
        return (
            f"PFA(|Q|={len(self.states)}, |Σ|={len(self.alphabet)}, "
            f"|Δ|={len(self.transitions)}, size={self.size()})"
        )


def _product(choices: List[List[PFARunNode]]) -> Iterator[List[PFARunNode]]:
    """Cartesian product of per-child alternatives."""
    if not choices:
        yield []
        return
    head, *tail = choices
    for first in head:
        for rest in _product(tail):
            yield [first] + rest


def determinize_pfa(pfa: PFA, trim: bool = True) -> DFA:
    """Build the DFA of Proposition 3.2: ``δ(S, a) = {q | ∃(P, a, q) ∈ Δ, P ⊆ S}``.

    The DFA has at most ``2^|Q|`` states; with ``trim=True`` only the states
    reachable from the initial subset are materialised (this is what the
    construction in the proof explores as well).
    """
    initial = frozenset(pfa.initial)
    transition: Dict[Tuple[FrozenSet[State], Symbol], FrozenSet[State]] = {}
    states: Set[FrozenSet[State]] = {initial}
    frontier = [initial]
    while frontier:
        subset = frontier.pop()
        for symbol in pfa.alphabet:
            successor = frozenset(pfa.step(set(subset), symbol))
            transition[(subset, symbol)] = successor
            if successor not in states:
                states.add(successor)
                frontier.append(successor)
    final = {subset for subset in states if subset & pfa.final}
    dfa = DFA(states, pfa.alphabet, transition, initial, final)
    return dfa.trim() if trim else dfa


def pfa_language_sample(pfa: PFA, max_length: int) -> Set[Tuple[Symbol, ...]]:
    """All accepted words of length at most ``max_length`` (alphabet must be small).

    Utility for tests and the expressiveness benchmarks.
    """
    alphabet = sorted(pfa.alphabet, key=repr)
    accepted: Set[Tuple[Symbol, ...]] = set()
    words: List[Tuple[Symbol, ...]] = [()]
    for _ in range(max_length + 1):
        next_words: List[Tuple[Symbol, ...]] = []
        for word in words:
            if pfa.accepts(word):
                accepted.add(word)
            if len(word) < max_length:
                for symbol in alphabet:
                    next_words.append(word + (symbol,))
        words = next_words
        if not words:
            break
    return accepted
