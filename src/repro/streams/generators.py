"""Synthetic workload generators for tests, examples and benchmarks.

The paper has no data sets; these generators produce streams whose *match
density* (how many outputs a query produces per position) and *key skew* are
controllable, which is what the experiments of EXPERIMENTS.md sweep over.

Three families are provided:

* :class:`HCQWorkloadGenerator` — a parametric star-shaped HCQ together with a
  stream of tuples whose join keys are drawn from a configurable domain; used
  by the update-time and delay experiments (E1–E4).
* :class:`StockStreamGenerator` — a small market-data scenario (buy / sell /
  news events per symbol) motivating the CER examples.
* :class:`SensorStreamGenerator` — an IoT scenario (temperature / humidity /
  alarm events per sensor).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.cq.query import Atom, ConjunctiveQuery, Variable
from repro.cq.schema import Schema, Tuple
from repro.streams.stream import Stream


def random_stream(
    schema: Schema,
    length: int,
    domain_size: int = 10,
    seed: int | None = 0,
    relation_weights: Dict[str, float] | None = None,
) -> Stream:
    """A finite stream of uniformly random tuples over ``schema``.

    Parameters
    ----------
    schema:
        Relation names and arities to draw from.
    length:
        Number of tuples.
    domain_size:
        Data values are integers in ``[0, domain_size)``.
    seed:
        Seed for reproducibility (``None`` for nondeterministic).
    relation_weights:
        Optional relative frequency per relation name.
    """
    rng = random.Random(seed)
    names = sorted(schema.relation_names)
    weights = [relation_weights.get(name, 1.0) if relation_weights else 1.0 for name in names]
    tuples: List[Tuple] = []
    for _ in range(length):
        relation = rng.choices(names, weights=weights, k=1)[0]
        values = tuple(rng.randrange(domain_size) for _ in range(schema.arity(relation)))
        tuples.append(Tuple(relation, values))
    return Stream(tuples, schema)


@dataclass
class HCQWorkloadGenerator:
    """Parametric star-HCQ workload.

    The query is the star ``Q(x, y_1, ..., y_k) <- R_1(x, y_1), ..., R_k(x, y_k)``
    which is hierarchical (the centre variable ``x`` occurs in every atom).
    Tuples ``R_j(key, payload)`` are generated with keys drawn from
    ``key_domain`` values and payloads from ``payload_domain`` values, so the
    expected number of matches per position can be tuned through the domain
    sizes and the number of relations.

    Examples
    --------
    >>> workload = HCQWorkloadGenerator(arms=3, key_domain=5, seed=1)
    >>> query = workload.query()
    >>> stream = workload.stream(100)
    >>> len(stream)
    100
    """

    arms: int = 3
    key_domain: int = 10
    payload_domain: int = 100
    seed: Optional[int] = 0
    relation_prefix: str = "R"

    def schema(self) -> Schema:
        return Schema({f"{self.relation_prefix}{j}": 2 for j in range(1, self.arms + 1)})

    def query(self) -> ConjunctiveQuery:
        """The star HCQ over the workload's schema."""
        x = Variable("x")
        head: List[Variable] = [x]
        atoms: List[Atom] = []
        for j in range(1, self.arms + 1):
            y = Variable(f"y{j}")
            head.append(y)
            atoms.append(Atom(f"{self.relation_prefix}{j}", (x, y)))
        return ConjunctiveQuery(head, atoms, name="Star")

    def tuples(self, length: int) -> Iterator[Tuple]:
        rng = random.Random(self.seed)
        relations = [f"{self.relation_prefix}{j}" for j in range(1, self.arms + 1)]
        for _ in range(length):
            relation = rng.choice(relations)
            key = rng.randrange(self.key_domain)
            payload = rng.randrange(self.payload_domain)
            yield Tuple(relation, (key, payload))

    def stream(self, length: int) -> Stream:
        """A finite stream of ``length`` tuples."""
        return Stream(list(self.tuples(length)), self.schema())

    def hot_key_stream(self, length: int, hot_fraction: float = 0.5) -> Stream:
        """A skewed stream where ``hot_fraction`` of the tuples share key ``0``.

        Produces many matches per position; used by the enumeration-delay
        experiment (E3), where the number of outputs must be controllable.
        """
        rng = random.Random(self.seed)
        relations = [f"{self.relation_prefix}{j}" for j in range(1, self.arms + 1)]
        tuples: List[Tuple] = []
        for _ in range(length):
            relation = rng.choice(relations)
            if rng.random() < hot_fraction:
                key = 0
            else:
                key = rng.randrange(1, max(2, self.key_domain))
            payload = rng.randrange(self.payload_domain)
            tuples.append(Tuple(relation, (key, payload)))
        return Stream(tuples, self.schema())


def star_hcq(arms: int, relation_prefix: str = "R") -> ConjunctiveQuery:
    """The star HCQ ``Q(x, ȳ) <- R_1(x, y_1), ..., R_k(x, y_k)`` (used by E5)."""
    return HCQWorkloadGenerator(arms=arms, relation_prefix=relation_prefix).query()


def deep_hcq(depth: int, relation_prefix: str = "D") -> ConjunctiveQuery:
    """A "telescope" HCQ with a q-tree of depth ``depth``.

    Atom ``j`` (for ``j = 1..depth``) is ``D_j(x_1, ..., x_j)``; the variable
    sets are nested, so the query is hierarchical and its q-tree is a path of
    variables with one leaf hanging at each level.
    """
    variables = [Variable(f"x{i}") for i in range(1, depth + 1)]
    atoms = [
        Atom(f"{relation_prefix}{j}", tuple(variables[:j])) for j in range(1, depth + 1)
    ]
    return ConjunctiveQuery(variables, atoms, name="Telescope")


def self_join_hcq(copies: int, relation: str = "R") -> ConjunctiveQuery:
    """A star HCQ whose ``copies`` atoms all share one relation name.

    ``Q(x, y_1, ..., y_k) <- R(x, y_1), ..., R(x, y_k)`` has exponentially many
    self-join groups, which is what makes the Theorem 4.1 construction blow up
    (experiment E5's exponential branch).
    """
    x = Variable("x")
    head: List[Variable] = [x]
    atoms: List[Atom] = []
    for j in range(1, copies + 1):
        y = Variable(f"y{j}")
        head.append(y)
        atoms.append(Atom(relation, (x, y)))
    return ConjunctiveQuery(head, atoms, name="SelfJoinStar")


@dataclass
class StockStreamGenerator:
    """Synthetic market-data stream: ``Buy(symbol, price)``, ``Sell(symbol, price)``,
    ``News(symbol)`` events.

    The motivating CER pattern (see ``examples/stock_correlation.py``) asks for
    a news item about a symbol followed (in any order) by a buy and a sell of
    that symbol at correlated prices — a hierarchical conjunctive pattern.
    """

    symbols: int = 20
    price_levels: int = 50
    news_probability: float = 0.1
    seed: Optional[int] = 0

    def schema(self) -> Schema:
        return Schema({"Buy": 2, "Sell": 2, "News": 1})

    def query(self) -> ConjunctiveQuery:
        symbol, price_buy, price_sell = Variable("s"), Variable("pb"), Variable("ps")
        return ConjunctiveQuery(
            [symbol, price_buy, price_sell],
            [
                Atom("News", (symbol,)),
                Atom("Buy", (symbol, price_buy)),
                Atom("Sell", (symbol, price_sell)),
            ],
            name="NewsTrade",
        )

    def stream(self, length: int) -> Stream:
        rng = random.Random(self.seed)
        tuples: List[Tuple] = []
        for _ in range(length):
            symbol = rng.randrange(self.symbols)
            if rng.random() < self.news_probability:
                tuples.append(Tuple("News", (symbol,)))
            elif rng.random() < 0.5:
                tuples.append(Tuple("Buy", (symbol, rng.randrange(self.price_levels))))
            else:
                tuples.append(Tuple("Sell", (symbol, rng.randrange(self.price_levels))))
        return Stream(tuples, self.schema())


@dataclass
class SensorStreamGenerator:
    """Synthetic IoT stream: ``Temp(sensor, value)``, ``Humid(sensor, value)``,
    ``Alarm(sensor)`` events.

    The motivating pattern (``examples/sensor_network.py``) detects an alarm on
    a sensor that also reported a high temperature and a high humidity inside
    the sliding window.
    """

    sensors: int = 10
    value_levels: int = 100
    alarm_probability: float = 0.05
    seed: Optional[int] = 0

    def schema(self) -> Schema:
        return Schema({"Temp": 2, "Humid": 2, "Alarm": 1})

    def query(self) -> ConjunctiveQuery:
        sensor, temperature, humidity = Variable("s"), Variable("t"), Variable("h")
        return ConjunctiveQuery(
            [sensor, temperature, humidity],
            [
                Atom("Alarm", (sensor,)),
                Atom("Temp", (sensor, temperature)),
                Atom("Humid", (sensor, humidity)),
            ],
            name="AlarmContext",
        )

    def stream(self, length: int) -> Stream:
        rng = random.Random(self.seed)
        tuples: List[Tuple] = []
        for _ in range(length):
            sensor = rng.randrange(self.sensors)
            roll = rng.random()
            if roll < self.alarm_probability:
                tuples.append(Tuple("Alarm", (sensor,)))
            elif roll < 0.5 + self.alarm_probability / 2:
                tuples.append(Tuple("Temp", (sensor, rng.randrange(self.value_levels))))
            else:
                tuples.append(Tuple("Humid", (sensor, rng.randrange(self.value_levels))))
        return Stream(tuples, self.schema())
