"""Streams of tuples (paper, Section 2) and their prefix databases (Section 4).

A stream ``S = t_0 t_1 t_2 ...`` is an unbounded sequence of tuples over a
schema; position ``i`` is the identifier of tuple ``t_i``.  The database of
``S`` at position ``n`` is the bag ``D_n[S] = {{t_0, ..., t_n}}`` whose
identifiers coincide with stream positions — this is how CQ semantics over
streams is defined and how the equivalence ``⟦P_Q⟧_n(S) = ⟦Q⟧_n(S)`` is
phrased.

:class:`Stream` wraps either a finite materialised sequence (tests, examples)
or a lazy generator (benchmarks over long synthetic streams).  The streaming
engines only ever consume it through :meth:`Stream.__iter__` /
:meth:`Stream.yield_next`, mirroring the paper's ``yield[S]`` interface.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.cq.database import Database
from repro.cq.schema import Schema, Tuple


class Stream:
    """A stream of tuples over a schema.

    Parameters
    ----------
    tuples:
        Iterable of tuples.  If it is a :class:`Sequence` the stream is
        finite and supports random access; otherwise it is consumed lazily
        (and :meth:`materialise` can capture a finite prefix).
    schema:
        Optional schema used to validate tuples on access.

    Examples
    --------
    >>> sigma0 = Schema({"R": 2, "S": 2, "T": 1})
    >>> s0 = Stream([Tuple("S", (2, 11)), Tuple("T", (2,)), Tuple("R", (1, 10))], sigma0)
    >>> s0[1]
    Tuple('T', (2,))
    >>> len(s0)
    3
    """

    def __init__(
        self,
        tuples: Iterable[Tuple],
        schema: Schema | None = None,
    ) -> None:
        self.schema = schema
        if isinstance(tuples, Sequence):
            self._materialised: Optional[List[Tuple]] = list(tuples)
            self._source: Optional[Iterator[Tuple]] = None
        else:
            self._materialised = None
            self._source = iter(tuples)
        if schema is not None and self._materialised is not None:
            for tup in self._materialised:
                schema.validate(tup)

    # ------------------------------------------------------------ consumption
    def __iter__(self) -> Iterator[Tuple]:
        if self._materialised is not None:
            yield from self._materialised
        else:
            assert self._source is not None
            buffered: List[Tuple] = []
            for tup in self._source:
                if self.schema is not None:
                    self.schema.validate(tup)
                buffered.append(tup)
                yield tup
            # Once a lazy stream has been fully consumed it becomes finite.
            self._materialised = buffered
            self._source = None

    def yield_next(self) -> Iterator[Tuple]:
        """The paper's ``yield[S]`` interface: an iterator over the stream."""
        return iter(self)

    def __len__(self) -> int:
        if self._materialised is None:
            raise TypeError("lazy streams have no length until materialised")
        return len(self._materialised)

    def __getitem__(self, position: int) -> Tuple:
        if self._materialised is None:
            raise TypeError("lazy streams do not support random access")
        return self._materialised[position]

    def prefix(self, length: int) -> "Stream":
        """The finite stream made of the first ``length`` tuples."""
        return Stream(self.materialise(length), self.schema)

    def materialise(self, length: int | None = None) -> List[Tuple]:
        """Return (up to) the first ``length`` tuples as a list.

        For lazy streams the prefix is consumed from the source; the stream is
        left materialised with exactly the consumed prefix, so this method is
        intended for test/benchmark setup, not for interleaving with streaming
        consumption.
        """
        if self._materialised is not None:
            return list(self._materialised) if length is None else list(self._materialised[:length])
        assert self._source is not None
        collected: List[Tuple] = []
        for tup in self._source:
            collected.append(tup)
            if length is not None and len(collected) >= length:
                break
        self._materialised = collected
        self._source = None
        return list(collected)

    # ----------------------------------------------------------- derived data
    def database_at(self, position: int) -> Database:
        """The prefix database ``D_position[S] = {{t_0, ..., t_position}}``.

        Identifiers of the database are the stream positions.
        """
        tuples = self.materialise(position + 1)
        if len(tuples) <= position:
            raise IndexError(f"stream has only {len(tuples)} tuples, position {position} requested")
        schema = self.schema or _infer_schema(tuples[: position + 1])
        return Database(schema, {i: tup for i, tup in enumerate(tuples[: position + 1])})

    def window_database(self, position: int, window: int) -> Database:
        """The database of the last ``window + 1`` positions ending at ``position``.

        Contains the tuples at positions ``max(0, position - window) .. position``
        with stream positions as identifiers.  Used by the naive sliding-window
        baseline.
        """
        tuples = self.materialise(position + 1)
        start = max(0, position - window)
        schema = self.schema or _infer_schema(tuples[start : position + 1])
        return Database(
            schema, {i: tuples[i] for i in range(start, position + 1)}
        )

    def __repr__(self) -> str:
        if self._materialised is not None:
            return f"Stream({len(self._materialised)} tuples)"
        return "Stream(lazy)"


def _infer_schema(tuples: Iterable[Tuple]) -> Schema:
    arities = {}
    for tup in tuples:
        arities.setdefault(tup.relation, tup.arity)
    return Schema(arities)


def prefix_database(stream: Stream, position: int) -> Database:
    """Module-level convenience alias for :meth:`Stream.database_at`."""
    return stream.database_at(position)


def stream_from_rows(
    schema: Schema, rows: Iterable[tuple[str, tuple]], validate: bool = True
) -> Stream:
    """Build a finite stream from ``(relation, values)`` rows."""
    tuples = [schema.tuple(rel, *values) if validate else Tuple(rel, tuple(values)) for rel, values in rows]
    return Stream(tuples, schema)


def lazy_stream(generator: Callable[[], Iterator[Tuple]], schema: Schema | None = None) -> Stream:
    """Wrap a generator function into a lazy :class:`Stream`."""
    return Stream(generator(), schema)
