"""Stream substrate: tuple streams and synthetic workload generators."""

from repro.streams.stream import Stream, prefix_database
from repro.streams.generators import (
    StockStreamGenerator,
    SensorStreamGenerator,
    HCQWorkloadGenerator,
    random_stream,
)

__all__ = [
    "Stream",
    "prefix_database",
    "StockStreamGenerator",
    "SensorStreamGenerator",
    "HCQWorkloadGenerator",
    "random_stream",
]
