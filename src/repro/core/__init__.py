"""The paper's contribution: predicates, CCEA, PCEA, the HCQ translation and the
streaming evaluation algorithm (Sections 2–5)."""

from repro.core.predicates import (
    UnaryPredicate,
    TruePredicate,
    RelationPredicate,
    AtomUnaryPredicate,
    SelfJoinUnaryPredicate,
    LambdaUnaryPredicate,
    AttributeFilter,
    BinaryPredicate,
    LambdaBinaryPredicate,
    EqualityPredicate,
    ProjectionEquality,
    AtomJoinEquality,
    VariableAtomEquality,
    unify_self_join_atoms,
)
from repro.core.ccea import CCEA, CCEATransition
from repro.core.runtree import Configuration, RunTreeNode
from repro.core.pcea import PCEA, PCEATransition, check_unambiguous_on_stream
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.core.arena import ArenaDataStructure, BOTTOM_ID
from repro.core.datastructure import DataStructure, Node, BOTTOM
from repro.core.dispatch import CompiledTransition, TransitionDispatchIndex
from repro.core.evaluation import StreamingEvaluator, evaluate_pcea

__all__ = [
    "UnaryPredicate",
    "TruePredicate",
    "RelationPredicate",
    "AtomUnaryPredicate",
    "SelfJoinUnaryPredicate",
    "LambdaUnaryPredicate",
    "AttributeFilter",
    "BinaryPredicate",
    "LambdaBinaryPredicate",
    "EqualityPredicate",
    "ProjectionEquality",
    "AtomJoinEquality",
    "VariableAtomEquality",
    "unify_self_join_atoms",
    "CCEA",
    "CCEATransition",
    "Configuration",
    "RunTreeNode",
    "PCEA",
    "PCEATransition",
    "check_unambiguous_on_stream",
    "hcq_to_pcea",
    "ArenaDataStructure",
    "BOTTOM_ID",
    "DataStructure",
    "Node",
    "BOTTOM",
    "CompiledTransition",
    "TransitionDispatchIndex",
    "StreamingEvaluator",
    "evaluate_pcea",
]
