"""Chain Complex Event Automata (paper, Section 2).

A CCEA reads a stream and selects *subsequences*: a run is a chain of
configurations whose positions strictly increase, where each transition checks
a unary predicate on the current tuple and a binary predicate against the
previous tuple of the chain.  CCEA is the model of Grez & Riveros (ICDT 2020)
extended with a label set ``Ω`` so its outputs are valuations; PCEA strictly
generalises it (Proposition 3.4).

The evaluator implemented here is the naive reference one (it materialises all
partial runs); the streaming engine with guarantees lives in
:mod:`repro.core.evaluation` and works on the PCEA embedding of a CCEA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple as Tup

from repro.core.predicates import BinaryPredicate, TrueEquality, UnaryPredicate
from repro.core.runtree import Configuration
from repro.cq.schema import Tuple
from repro.valuation import Valuation


State = Hashable
Label = Hashable


@dataclass(frozen=True)
class CCEATransition:
    """A CCEA transition ``(p, U, B, L, q)``."""

    source: State
    unary: UnaryPredicate
    binary: BinaryPredicate
    labels: FrozenSet[Label]
    target: State

    def __init__(
        self,
        source: State,
        unary: UnaryPredicate,
        binary: BinaryPredicate,
        labels: Iterable[Label],
        target: State,
    ) -> None:
        labels = frozenset(labels)
        if not labels:
            raise ValueError("transition label sets must be non-empty")
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "unary", unary)
        object.__setattr__(self, "binary", binary)
        object.__setattr__(self, "labels", labels)
        object.__setattr__(self, "target", target)


@dataclass(frozen=True)
class _PartialRun:
    """A partial CCEA run: the configurations so far plus the last tuple read."""

    configurations: Tup[Configuration, ...]
    last_tuple: Tuple

    @property
    def last(self) -> Configuration:
        return self.configurations[-1]

    def valuation(self) -> Valuation:
        result = Valuation.empty()
        for configuration in self.configurations:
            result = result.product(configuration.valuation())
        return result


class CCEA:
    """A Chain Complex Event Automaton ``(Q, U, B, Ω, Δ, I, F)``.

    Parameters
    ----------
    states:
        The state set ``Q``.
    initial:
        The partial initial function ``I : Q -> U × (2^Ω ∖ {∅})`` given as a
        mapping from states to ``(unary predicate, labels)`` pairs.
    transitions:
        The transition relation as :class:`CCEATransition` objects.
    final:
        The final states ``F``.
    labels:
        The label set ``Ω``; inferred from the transitions when omitted.
    """

    def __init__(
        self,
        states: Iterable[State],
        initial: Mapping[State, Tup[UnaryPredicate, Iterable[Label]]],
        transitions: Iterable[CCEATransition],
        final: Iterable[State],
        labels: Iterable[Label] | None = None,
    ) -> None:
        self.states: FrozenSet[State] = frozenset(states)
        self.initial: Dict[State, Tup[UnaryPredicate, FrozenSet[Label]]] = {
            state: (unary, frozenset(lbls)) for state, (unary, lbls) in initial.items()
        }
        self.transitions: Tup[CCEATransition, ...] = tuple(transitions)
        self.final: FrozenSet[State] = frozenset(final)
        inferred: Set[Label] = set()
        for _, lbls in self.initial.values():
            inferred |= lbls
        for transition in self.transitions:
            inferred |= transition.labels
        self.labels: FrozenSet[Label] = frozenset(labels) if labels is not None else frozenset(inferred)
        self._validate()

    def _validate(self) -> None:
        if not self.final <= self.states:
            raise ValueError("final states must be states")
        for state, (_, lbls) in self.initial.items():
            if state not in self.states:
                raise ValueError(f"initial state {state!r} not in states")
            if not lbls:
                raise ValueError("initial label sets must be non-empty")
        for transition in self.transitions:
            if transition.source not in self.states or transition.target not in self.states:
                raise ValueError("transition endpoints must be states")

    def size(self) -> int:
        """``|C|``: number of states plus encoded transitions."""
        return len(self.states) + sum(1 + len(t.labels) for t in self.transitions) + len(self.initial)

    # -------------------------------------------------------------- semantics
    def runs_at(self, stream: Sequence[Tuple], position: int) -> Iterator[_PartialRun]:
        """All accepting runs at ``position`` (naive enumeration)."""
        for run in self._all_runs(stream, position):
            if run.last.position == position and run.last.state in self.final:
                yield run

    def _all_runs(self, stream: Sequence[Tuple], upto: int) -> Iterator[_PartialRun]:
        """All runs (accepting or not) whose last position is at most ``upto``."""
        partials: List[_PartialRun] = []
        for position in range(min(upto + 1, len(stream))):
            tup = stream[position]
            new_partials: List[_PartialRun] = []
            # Extend existing runs.
            for partial in partials:
                for transition in self.transitions:
                    if transition.source != partial.last.state:
                        continue
                    if not transition.unary.holds(tup):
                        continue
                    if not transition.binary.holds(partial.last_tuple, tup):
                        continue
                    configuration = Configuration(transition.target, position, transition.labels)
                    new_partials.append(
                        _PartialRun(partial.configurations + (configuration,), tup)
                    )
            # Start new runs via the initial function.
            for state, (unary, labels) in self.initial.items():
                if unary.holds(tup):
                    configuration = Configuration(state, position, labels)
                    new_partials.append(_PartialRun((configuration,), tup))
            partials.extend(new_partials)
            yield from new_partials
        return

    def output_at(self, stream: Sequence[Tuple], position: int) -> Set[Valuation]:
        """``⟦C⟧_position(S)``: the set of valuations of accepting runs at ``position``."""
        return {run.valuation() for run in self.runs_at(stream, position)}

    def outputs_upto(self, stream: Sequence[Tuple], upto: int) -> Dict[int, Set[Valuation]]:
        """Outputs at every position ``0..upto`` (single pass of the naive evaluator)."""
        results: Dict[int, Set[Valuation]] = {i: set() for i in range(upto + 1)}
        for run in self._all_runs(stream, upto):
            if run.last.state in self.final:
                results[run.last.position].add(run.valuation())
        return results

    # ------------------------------------------------------------ conversions
    def to_pcea(self):
        """Embed the CCEA as a PCEA (every transition has at most one source).

        The initial function becomes empty-source transitions, mirroring the
        observation after Example 3.3 in the paper.
        """
        from repro.core.pcea import PCEA, PCEATransition

        transitions: List[PCEATransition] = []
        for state, (unary, labels) in self.initial.items():
            transitions.append(PCEATransition(frozenset(), unary, {}, labels, state))
        for transition in self.transitions:
            transitions.append(
                PCEATransition(
                    frozenset({transition.source}),
                    transition.unary,
                    {transition.source: transition.binary},
                    transition.labels,
                    transition.target,
                )
            )
        return PCEA(self.states, transitions, self.final, labels=self.labels)

    def __repr__(self) -> str:
        return (
            f"CCEA(|Q|={len(self.states)}, |Δ|={len(self.transitions)}, "
            f"|I|={len(self.initial)}, |F|={len(self.final)})"
        )


def chain_ccea(
    steps: Sequence[Tup[UnaryPredicate, Optional[BinaryPredicate], Iterable[Label]]],
) -> CCEA:
    """Build a simple chain CCEA ``q_0 -> q_1 -> ... -> q_k``.

    Each step is ``(unary, binary, labels)``; the binary predicate of the first
    step is ignored (there is no previous tuple).  This is the shape of the
    automaton ``C_0`` of Example 2.1 and is reused by tests and examples.
    """
    if not steps:
        raise ValueError("a chain needs at least one step")
    states = list(range(len(steps)))
    first_unary, _, first_labels = steps[0]
    initial = {0: (first_unary, frozenset(first_labels))}
    transitions = []
    for index, (unary, binary, labels) in enumerate(steps[1:], start=1):
        transitions.append(
            CCEATransition(index - 1, unary, binary or TrueEquality(), labels, index)
        )
    return CCEA(states, initial, transitions, {len(steps) - 1})
