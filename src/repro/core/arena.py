"""Arena-backed ``DS_w``: flat-array node storage with window-bounded reclamation.

:class:`ArenaDataStructure` implements the same interface and the *exact same
semantics* (including enumeration order) as the object-graph
:class:`~repro.core.datastructure.DataStructure`, but represents nodes as dense
integer ids instead of GC-tracked frozen dataclass instances.

Arena layout
------------
Node ids are allocated from one global id space carved into fixed 64-node
*slots* (``slot = id >> 6``).  A slab owns a contiguous range of slots —
``capacity / 64`` of them — and every owned slot maps to the slab in the
slab table, so id-to-slab resolution is one dict lookup regardless of slab
size and the node's offset is ``id - slab.base``.  Each slab stores, per
node:

* ``pos``  — the node's stream position ``i(n)``;
* ``ms``   — ``max_start(n) = max{min(ν) | ν ∈ ⟦n⟧_prod}``;
* ``ul`` / ``ur`` — union links as node ids (``0`` = no link / ``⊥``);
* a label-set id (the distinct label sets come from the compiled transitions,
  so interning makes ``extend`` free of per-call ``frozenset`` construction);
* the union-balancing direction bit;
* the node's product children as a tuple of node ids.  The tuple is allocated
  once per ``extend`` and *shared* by every union path copy of the node
  (copies never re-materialise their child list), so union cost stays a
  constant number of appends per copied level; a live copy keeps the
  originating slab alive transitively through the expiry argument below, never
  through refcounts.

Node id ``0`` is the bottom node ``⊥`` (empty bag): it never carries links or
children and every traversal treats it as expired.

Columnar column storage
-----------------------
With ``columnar=True`` (the default) a slab packs the five int fields of a
node into one interleaved ``array('q')`` record of stride
:data:`_STRIDE`: ``pos, ms, ul, ur, meta`` at word offset ``(id - base) *
5``.  ``meta`` fuses the label id, the direction bit and the product
reference — ``(prod_ref << 32) | (label_id << 1) | direction`` — where
``prod_ref`` is 0 for childless nodes (the vast majority) and otherwise
``1 +`` an index into the slab-local ``prods`` list, which stores only the
*non-empty* child tuples.  A union copy of a prod-carrying node re-appends
the (shared) tuple into its own slab's ``prods`` — one list append, no
re-materialisation — so product data never dangles across released slabs.

The write path is a single :func:`struct.Struct.pack_into` call per node
(five machine words in one C call, matching the list layout's append cost);
the record array grows in :data:`_CHUNK_NODES`-node zero chunks, and sealing
trims the unused tail so sealed slabs are exact-size.  One machine word per
field — instead of a list slot *plus* a boxed ``int`` object per distinct
value — cuts the measured resident bytes of the retained slab set by over 2×
on store-heavy hot-key streams versus the list layout
(``benchmarks/bench_state_footprint.py``;
:meth:`ArenaDataStructure.resident_bytes` is the metric).

``columnar=False`` keeps the pre-columnar layout — parallel plain lists
``pos`` / ``ms`` / ``ul`` / ``ur`` / ``lab`` / ``dirn`` / ``prod`` (one dense
entry per node) — as the ablation baseline and differential oracle.  Both
layouts run the same allocation and traversal logic (the packed record
encode/decode is the only difference), and the structural snapshots of a
columnar and a list-backed arena fed the same operations are identical (the
property tests in ``tests/test_snapshot.py`` assert exactly that).

Adaptive slab sizing
--------------------
Slab capacity adapts to the observed allocation rate.  When a slab seals, the
arena projects how many nodes one window's worth of stream positions
allocates (``capacity / positions-the-slab-lasted × (window + 1)``) and sizes
the next slab so that about :data:`TARGET_SLABS_PER_WINDOW` slabs cover a
window — keeping the retained-slab count O(1) per window on bursty streams
(a burst doubles capacity per seal until slabs last ``~window/8`` positions;
a lull shrinks back toward the 64-node minimum so reclamation granularity
stays tight).  An explicit ``slab_capacity`` disables adaptation (fixed-size
slabs, the pre-adaptive behaviour the unit tests pin down); capacities are
powers of two in ``[64, 65536]``.

Slab lifecycle
--------------
Nodes are allocated by a pointer bump into the newest ("current") slab; a full
slab is *sealed* and a fresh one started, so slabs are generations bucketed by
allocation time and — because ``max_start`` of any allocatable node is within
one window of its allocation position — effectively bucketed by ``max_start``
too.  Each slab tracks ``max_ms``, the largest ``max_start`` it contains.  A
sealed slab is *released wholesale* (its arrays dropped in one dict deletion
per owned slot, O(1) amortised, no graph traversal) once

1. it has **expired**: ``position - max_ms > window``, i.e. every node in it
   enumerates nothing and is pruned by every union, forever (positions only
   grow); and
2. its **external-reference count is zero**: no surviving run-index hash entry
   points into it.  The count is maintained by the evaluator's existing
   eviction sweep — incremented when an entry is registered in an expiry
   bucket, decremented when that bucket is popped — so by the time a slab
   expires, the sweep (which pops the bucket of the same ``max_start`` at the
   same threshold) has already dropped every count it will ever drop.

Slabs are released strictly in allocation order; because ``max_ms`` across
slabs can lag the allocation position by at most one window, an expired slab
waits at most ``O(window)`` positions behind a blocked predecessor, keeping
total retained storage ``O(active window)``.

The external-reference invariant
--------------------------------
References *into* a slab come from three places, each handled differently:

* **product children of live nodes** — always safe without counting: a product
  node's ``max_start`` is ≤ every child's ``max_start``, so a live (non-expired)
  node implies live children, which implies their slabs have not expired and
  therefore have not been released.  The *tuple* holding the child ids lives
  in the node's own slab (copies re-append it, see above), so reading it never
  crosses into another slab at all;
* **union links of live nodes** — may legitimately point at expired nodes (the
  heap condition only bounds ``max_start`` from above).  Traversals read one
  level into such a subtree purely to observe "expired, prune".  These reads
  are guarded at dereference time: a missing slab *means* expired, so the
  lookup ``slabs.get(id >> 6)`` returning ``None`` takes exactly the branch
  the pruning check would have taken.  Counting these references instead would
  chain-pin the entire history (every union top links to the previous top), so
  they are deliberately *not* counted;
* **run-index hash entries** — counted (``ext_refs`` above), so an entry that
  survives in ``H`` never dangles; the count reaches zero exactly when the
  sweep retires the entry's expiry bucket.

Snapshot / restore
------------------
:meth:`ArenaDataStructure.snapshot` captures the complete arena state — the
retained slab set (fields normalised to plain per-column lists, product
children to one dense tuple per node), the allocation cursor, the
adaptive-sizing state and the interned label table — as a plain-Python tree
(dicts / lists / tuples / ints / frozensets) that pickles directly and
JSON-encodes through :mod:`repro.runtime.snapshot`.  The snapshot is
representation-independent: either layout can restore a snapshot taken from
either layout.  :meth:`ArenaDataStructure.restore` replaces the arena's
entire state in place (bound methods held by an
:class:`~repro.runtime.EvictionLane` stay valid), after which allocation,
reclamation and enumeration continue bit-identically to the snapshotted
arena — the per-layer contract behind the engines' ``snapshot()`` /
``restore()`` protocol.

Everything the evaluator consumes (``extend`` / ``union`` / ``enumerate`` /
``expired`` / the validation helpers) takes and returns plain ``int`` ids; the
recursive ``_union`` of the object structure becomes an iterative
descend-then-rebuild loop over the arrays, and enumeration pushes ids on an
explicit stack, mirroring the object traversal order exactly so that the two
representations are interchangeable output-for-output (the differential tests
in ``tests/test_arena.py`` rely on this).
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple as Tup

from repro.core.datastructure import product_odometer
from repro.core.kernel import native_module, resolve_kernel
from repro.valuation import Valuation


Label = Hashable

#: ``max_start`` of the bottom node: expired relative to every position/window.
_NEVER = -(1 << 62)

#: The bottom node ``⊥`` as an id (shared by every arena).
BOTTOM_ID = 0

#: Fixed slot granularity of the id space: ids map to slabs via ``id >> 6``.
_SLOT_BITS = 6

#: Slab capacities are powers of two within these bounds.
MIN_SLAB_CAPACITY = 1 << _SLOT_BITS
MAX_SLAB_CAPACITY = 1 << 16

#: Adaptive sizing aims for about this many slabs per window, balancing
#: reclamation granularity (more, smaller slabs) against slab-table overhead.
TARGET_SLABS_PER_WINDOW = 8

#: Interleaved record stride (words) of the columnar layout:
#: ``pos, ms, ul, ur, meta``.
_STRIDE = 5

#: Record-array growth granularity (nodes): the current slab's array is
#: extended by zeroed chunks of this many records, so the unpacked slack is
#: bounded by one chunk while sealed slabs are trimmed exact.
_CHUNK_NODES = 256

#: ``meta`` field encoding: low 32 bits hold ``label_id << 1 | direction``,
#: the high bits ``1 + prods-index`` (0 = no children).  Keep the three
#: encode sites (``extend`` and the two ``union`` copies) in sync.
_META_LOW = 0xFFFFFFFF
_META_LABEL_DIRN = 0xFFFFFFFE

#: One packed record write: five machine words in a single C call — this is
#: what keeps the columnar allocation path at list-append cost.
_PACK_RECORD = struct.Struct("5q").pack_into

#: One packed record read (the satellite of the write above): where a path
#: touches several fields of the same node, a single ``unpack_from`` boxes
#: all five words in one C call instead of paying one boxed ``array``
#: ``__getitem__`` per field — this is what claws back most of the columnar
#: layout's per-element read tax on CPython.
_UNPACK_RECORD = struct.Struct("5q").unpack_from

#: Record size in bytes (pack offsets), derived from the word stride so the
#: write sites cannot drift from the word-offset reads.
_RECORD_BYTES = 8 * _STRIDE

_ZERO_CHUNK = array("q", bytes(8 * _STRIDE * _CHUNK_NODES))


def _grow_records(slab: "_Slab") -> None:
    """Extend a columnar slab's record array by one zeroed chunk.

    Chunks are capped at the slab's own capacity so small slabs never
    over-allocate beyond the records they can hold (sealing additionally
    trims time-sealed slabs to their exact fill).
    """
    grow = (slab.span << _SLOT_BITS) - slab.avail
    if grow >= _CHUNK_NODES:
        grow = _CHUNK_NODES
        slab.data.extend(_ZERO_CHUNK)
    else:
        slab.data.extend(_ZERO_CHUNK[: grow * _STRIDE])
    slab.avail += grow


class _Slab:
    """One generation of nodes: packed records plus release accounting.

    Columnar slabs fill ``data`` (the interleaved stride-5 record array) and
    ``prods`` (slab-local non-empty child tuples); list slabs fill the
    pre-columnar parallel lists ``pos``/``ms``/``ul``/``ur``/``lab``/
    ``dirn``/``prod`` instead.
    """

    __slots__ = (
        "base",
        "span",
        "data",
        "avail",
        "prods",
        "pos",
        "ms",
        "ul",
        "ur",
        "lab",
        "dirn",
        "prod",
        "count",
        "max_ms",
        "ext_refs",
    )

    def __init__(self, base: int, span: int, columnar: bool = True) -> None:
        self.base = base
        self.span = span  # owned 64-node slots (capacity == span << 6)
        self.avail = 0  # records allocated in ``data`` (columnar growth cursor)
        if columnar:
            self.data = array("q")
            self.prods: List[Tup[int, ...]] = []
            self.pos = None
            self.ms = None
            self.ul = None
            self.ur = None
            self.lab = None
            self.dirn = None
            self.prod = None
        else:
            self.data = None
            self.prods = None
            self.pos: List[int] = []
            self.ms: List[int] = []
            self.ul: List[int] = []
            self.ur: List[int] = []
            self.lab: List[int] = []
            self.dirn: List[bool] = []
            self.prod: List[Tup[int, ...]] = []
        self.count = 0
        self.max_ms = _NEVER
        self.ext_refs = 0


def _round_capacity(value: float) -> int:
    """The smallest valid power-of-two capacity covering ``value``."""
    capacity = MIN_SLAB_CAPACITY
    while capacity < value and capacity < MAX_SLAB_CAPACITY:
        capacity <<= 1
    return capacity


class ArenaDataStructure:
    """``DS_w`` over flat arrays with O(1) amortised window-bounded reclamation.

    Drop-in replacement for :class:`~repro.core.datastructure.DataStructure`
    in which nodes are integer ids (see the module docstring for the layout
    and the release protocol).  The public surface mirrors the object
    structure: :meth:`extend`, :meth:`union`, :meth:`enumerate`,
    :meth:`enumerate_all`, :meth:`expired`, the validation helpers and the
    ``nodes_created`` / ``union_calls`` / ``union_copies`` counters, plus the
    reclamation hooks the streaming evaluators call (:meth:`add_ref`,
    :meth:`drop_ref`, :meth:`release_expired`), the snapshot protocol
    (:meth:`snapshot` / :meth:`restore`) and the memory introspection used by
    ``--stats`` and the benchmarks (:meth:`memory_stats`,
    :meth:`resident_bytes`).

    Parameters
    ----------
    window:
        The sliding-window size ``w``.
    slab_capacity:
        Nodes per slab (rounded up to a power of two within
        ``[64, 65536]``).  Giving it pins the capacity for the arena's
        lifetime (adaptation off unless ``adaptive=True`` is passed
        explicitly); by default the initial capacity tracks the window
        (``min(4096, max(64, window + 1))`` rounded up) and then adapts to
        the observed allocation volume.
    adaptive:
        Whether slab capacity follows the observed per-window allocation
        volume (see the module docstring).  Defaults to ``True`` when
        ``slab_capacity`` is not given, ``False`` when it is.
    columnar:
        With ``True`` (default) slabs use the packed columnar layout
        (interleaved ``array('q')`` records, fused ``meta`` field, sparse
        product table); ``False`` keeps the parallel plain lists (the
        pre-columnar ablation layout, structurally identical operation for
        operation — see the module docstring).
    kernel:
        Which record-operation backend runs the hot path: ``"python"``,
        ``"native"`` (the optional C extension, columnar only) or ``"auto"``
        / ``None`` to defer to ``REPRO_KERNEL`` and auto-detection — see
        :mod:`repro.core.kernel` for the precedence and the backend
        contract.  Both kernels share this arena's slab buffers, so cold
        readers, snapshots and outputs are identical either way.
    """

    def __init__(
        self,
        window: int,
        slab_capacity: Optional[int] = None,
        adaptive: Optional[bool] = None,
        columnar: bool = True,
        kernel: Optional[str] = None,
    ) -> None:
        if window < 0:
            raise ValueError("window size must be non-negative")
        self.window = window
        self._columnar = columnar
        self.kernel = resolve_kernel(kernel, columnar)
        if self.kernel == "native":
            # One C kernel per arena, created once and *reused* across
            # restore() (bound methods handed to EvictionLane must survive a
            # restore, and the kernel's are bound below).
            self._nk = native_module().Kernel(window)
            self._nk.set_request_slab(self._request_slab)
        else:
            self._nk = None
        if adaptive is None:
            adaptive = slab_capacity is None
        self._adaptive = adaptive
        if slab_capacity is None:
            slab_capacity = min(4096, max(MIN_SLAB_CAPACITY, window + 1))
        self._cap = _round_capacity(slab_capacity)
        self._bits = _SLOT_BITS
        self._slabs: Dict[int, _Slab] = {}
        self._slab_count = 0
        self._next_slot = 0
        self._release_cursor = 0
        self._slab_start: Optional[int] = None
        # Observability hook: called with the sealed slab's fill (record
        # count) every time an allocation seals the current slab.  None (the
        # default) costs one attribute read per *seal*, never per node.
        self.on_seal: Optional[Callable[[int], None]] = None
        self._cur = self._new_slab()
        # Reserve id 0 for bottom: a sentinel that always reads as expired.
        self._append_sentinel(self._cur)
        self._allocated = 0  # real nodes (the bottom sentinel is not counted)
        # Label-set interning: distinct label sets come from the compiled
        # transitions, so this table stays tiny.
        self._label_ids: Dict[frozenset, int] = {}
        self._labels: List[frozenset] = []
        # Counters mirroring DataStructure (benchmark instrumentation).  The
        # underscored attributes are the python kernel's hot-path stores; the
        # ``nodes_created``/``union_calls``/``union_copies`` properties read
        # whichever kernel is authoritative.
        self._nodes_created = 0
        self._union_calls = 0
        self._union_copies = 0
        self.released_slabs = 0
        self.released_nodes = 0
        if self._nk is not None:
            # Shadow the class methods with the native implementations:
            # instance-attribute dispatch costs the python path nothing and
            # hands the eviction sweep the C builtins directly (EvictionLane
            # binds ``ds.add_ref`` / ``ds.drop_ref`` once at construction).
            self.extend = self._extend_native
            self.union = self._union_native
            self.enumerate = self._enumerate_native
            self.release_expired = self._release_expired_native
            self.add_ref = self._nk.add_ref
            self.drop_ref = self._nk.drop_ref

    # ---------------------------------------------------------------- slabs
    def _new_slab(self, position: Optional[int] = None) -> _Slab:
        """Seal the current slab and start a fresh one (adapting capacity).

        ``position`` is the stream position of the allocation that triggered
        the seal; with adaptive sizing it dates the sealed slab's fill time,
        from which the next capacity is projected.  Sealing trims the packed
        record array of a partially-filled (time-sealed) columnar slab to
        its exact fill, so sealed slabs carry no chunk slack.
        """
        native = self._nk
        sealed = getattr(self, "_cur", None)
        if sealed is not None and self._columnar:
            if native is not None:
                # The kernel is authoritative for the fill/meta of the slab
                # it has been writing; mirror them back now — the adaptive
                # projection below reads ``count``, and the sealed values
                # never change again (release accounting and snapshots rely
                # on exactly this sync point).  The record buffer stays at
                # full capacity: it is pinned by the kernel's buffer export
                # (a trim would raise ``BufferError``), and the unfilled
                # tail is zeroed so cold readers see the same records.
                sealed.count, sealed.max_ms, sealed.ext_refs = native.slab_meta(
                    sealed.base >> _SLOT_BITS
                )
            else:
                fill = sealed.count * _STRIDE
                if len(sealed.data) > fill:
                    del sealed.data[fill:]
                sealed.avail = sealed.count
        if sealed is not None:
            hook = self.on_seal
            if hook is not None:
                hook(sealed.count)
        if position is not None and self._adaptive and self._slab_start is not None:
            elapsed = max(1, position - self._slab_start)
            # Nodes one window's worth of positions allocates at the sealed
            # slab's observed rate, spread over the target slab count.  The
            # sealed slab's actual fill (not its capacity) is what matters:
            # a time-sealed slab (see ``_seal_deadline``) is partially full,
            # and its low fill is exactly the signal to shrink.
            per_window = self._cur.count * (self.window + 1) / elapsed
            self._cap = _round_capacity(per_window / TARGET_SLABS_PER_WINDOW)
        slot = self._next_slot
        span = self._cap >> _SLOT_BITS
        self._next_slot = slot + span
        slab = _Slab(slot << _SLOT_BITS, span, self._columnar)
        slabs = self._slabs
        for owned in range(slot, slot + span):
            slabs[owned] = slab
        self._slab_count += 1
        self._cur = slab
        self._slab_start = position
        # Time-based seal: an adaptive slab still open after a full window of
        # positions seals at the next allocation, so a post-burst lull both
        # shrinks the capacity and keeps reclamation granularity within the
        # window (a slab can otherwise pin up to ``capacity`` nodes while it
        # slowly fills).  Non-adaptive arenas never time-seal.
        if self._adaptive and position is not None:
            self._seal_deadline = position + self.window + 1
        else:
            self._seal_deadline = 1 << 62
        if native is not None:
            # Native slabs are born at full capacity (the exported buffer
            # cannot grow) and handed to the kernel, which allocates into
            # them until the next seal — this method *is* its request_slab
            # callback.
            slab.data = array("q", bytes(_RECORD_BYTES * (span << _SLOT_BITS)))
            slab.avail = span << _SLOT_BITS
            native.register_slab(
                slot, span, slab.base, slab.data, slab.prods, 0, _NEVER, 0
            )
            native.set_current(slot, self._seal_deadline)
        return slab

    def _request_slab(self, position: int) -> None:
        """The native kernel's out-of-space callback: seal and start a slab.

        Invoked mid ``extend``/``union`` when the current slab fills or
        passes its seal deadline; :meth:`_new_slab` registers the fresh slab
        and makes it current, after which the kernel resumes the operation.
        """
        self._new_slab(position)

    def _append_sentinel(self, slab: _Slab) -> None:
        """Append the bottom node ``⊥`` (id 0) into a fresh slab 0."""
        if self._nk is not None:
            self._nk.write_sentinel()
            slab.count = 1
            return
        if self._columnar:
            _grow_records(slab)
            _PACK_RECORD(slab.data, 0, -1, _NEVER, 0, 0, 0)
        else:
            slab.pos.append(-1)
            slab.ms.append(_NEVER)
            slab.ul.append(0)
            slab.ur.append(0)
            slab.lab.append(0)
            slab.dirn.append(False)
            slab.prod.append(())
        slab.count = 1

    # ---------------------------------------------------------------- access
    def max_start_of(self, node: int) -> int:
        """``max_start`` of ``node`` (``_NEVER`` for ⊥ / released ids)."""
        slab = self._slabs.get(node >> _SLOT_BITS)
        if slab is None:
            return _NEVER
        index = node - slab.base
        if self._columnar:
            return slab.data[index * _STRIDE + 1]
        return slab.ms[index]

    def position_of(self, node: int) -> int:
        slab = self._slabs.get(node >> _SLOT_BITS)
        if slab is None:
            return -1
        index = node - slab.base
        if self._columnar:
            return slab.data[index * _STRIDE]
        return slab.pos[index]

    def labels_of(self, node: int) -> frozenset:
        slab = self._slabs.get(node >> _SLOT_BITS)
        if slab is None:
            return frozenset()
        return self._labels[self._label_id_of(slab, node - slab.base)]

    def _label_id_of(self, slab: _Slab, index: int) -> int:
        if self._columnar:
            return (slab.data[index * _STRIDE + 4] & _META_LOW) >> 1
        return slab.lab[index]

    def _direction_of(self, slab: _Slab, index: int) -> bool:
        if self._columnar:
            return bool(slab.data[index * _STRIDE + 4] & 1)
        return bool(slab.dirn[index])

    def _links_of(self, slab: _Slab, index: int) -> Tup[int, int]:
        """``(ul, ur)`` of a node — cold-path accessor."""
        if self._columnar:
            offset = index * _STRIDE
            data = slab.data
            return data[offset + 2], data[offset + 3]
        return slab.ul[index], slab.ur[index]

    def _prod_of(self, slab: _Slab, index: int) -> Tup[int, ...]:
        """The node's child tuple (``()`` for leaves) — cold-path accessor."""
        if self._columnar:
            ref = slab.data[index * _STRIDE + 4] >> 32
            return slab.prods[ref - 1] if ref else ()
        return slab.prod[index]

    def expired(self, node: int, position: int) -> bool:
        """Whether every valuation of ``⟦node⟧`` is out of the window at ``position``.

        A released slab certifies expiry (slabs are only released once every
        node in them has expired), so the missing-slab branch is semantically
        the same pruning decision, not an error.
        """
        if not node:
            return True
        slab = self._slabs.get(node >> _SLOT_BITS)
        if slab is None:
            return True
        index = node - slab.base
        if self._columnar:
            return position - slab.data[index * _STRIDE + 1] > self.window
        return position - slab.ms[index] > self.window

    # ----------------------------------------------------------------- nodes
    def extend(
        self,
        labels: Iterable[Label],
        position: int,
        children: Sequence[int],
        max_start: Optional[int] = None,
    ) -> int:
        """``extend(L, i, N)``: a fresh product node (mirrors the object version).

        Allocation is inlined (no helper-call chain): one packed-record write
        (columnar) or one append per column (list layout) is the entire
        cost, which is what buys the per-tuple speedup over the
        frozen-dataclass construction of the object structure.

        ``max_start`` is the engines' fast path: they already hold every
        child's ``max_start`` in their hash-table pairs and thread the new
        node's value (``min(position, min child max_start)``) through the
        loop, so passing it skips the per-child record reads *and* the child
        validation — the caller certifies the children are live non-bottom
        nodes with strictly smaller positions (the hashed engines' in-window
        check guarantees exactly that).  Without it, the value is computed
        and the children validated here, as the object structure does.
        """
        if not isinstance(labels, frozenset):
            labels = frozenset(labels)
        label_id = self._label_ids.get(labels)
        if label_id is None:
            label_id = len(self._labels)
            self._labels.append(labels)
            self._label_ids[labels] = label_id
        columnar = self._columnar
        if max_start is None:
            slabs = self._slabs
            max_start = position
            if columnar:
                for child in children:
                    slab = None if not child else slabs.get(child >> _SLOT_BITS)
                    if slab is None:
                        raise ValueError("product children must not be the bottom node")
                    offset = (child - slab.base) * _STRIDE
                    data = slab.data
                    if data[offset] >= position:
                        raise ValueError(
                            "product children must have strictly smaller positions"
                        )
                    child_ms = data[offset + 1]
                    if child_ms < max_start:
                        max_start = child_ms
            else:
                for child in children:
                    slab = None if not child else slabs.get(child >> _SLOT_BITS)
                    if slab is None:
                        raise ValueError("product children must not be the bottom node")
                    index = child - slab.base
                    if slab.pos[index] >= position:
                        raise ValueError(
                            "product children must have strictly smaller positions"
                        )
                    child_ms = slab.ms[index]
                    if child_ms < max_start:
                        max_start = child_ms
        # Inline allocation; keep the three allocation sites (here and the
        # two in ``union``) in sync.
        slab = self._cur
        offset = slab.count
        if offset >= self._cap or (offset and position > self._seal_deadline):
            slab = self._new_slab(position)
            offset = 0
        if columnar:
            data = slab.data
            if offset >= slab.avail:
                _grow_records(slab)
            if children:
                prods = slab.prods
                prods.append(tuple(children))
                meta = (len(prods) << 32) | (label_id << 1)
            else:
                meta = label_id << 1
            _PACK_RECORD(data, offset * _RECORD_BYTES, position, max_start, 0, 0, meta)
        else:
            slab.pos.append(position)
            slab.ms.append(max_start)
            slab.ul.append(0)
            slab.ur.append(0)
            slab.lab.append(label_id)
            slab.dirn.append(False)
            slab.prod.append(tuple(children))
        slab.count = offset + 1
        if max_start > slab.max_ms:
            slab.max_ms = max_start
        self._nodes_created += 1
        self._allocated += 1
        return slab.base + offset

    def _extend_native(
        self,
        labels: Iterable[Label],
        position: int,
        children: Sequence[int],
        max_start: Optional[int] = None,
    ) -> int:
        """:meth:`extend` on the native kernel (bound over it per instance).

        Label interning and the no-hint validation stay in python (cold /
        tiny); the record write, slab fill tracking and seal triggering all
        happen in C.
        """
        if not isinstance(labels, frozenset):
            labels = frozenset(labels)
        label_id = self._label_ids.get(labels)
        if label_id is None:
            label_id = len(self._labels)
            self._labels.append(labels)
            self._label_ids[labels] = label_id
        if max_start is None:
            slabs = self._slabs
            max_start = position
            for child in children:
                slab = None if not child else slabs.get(child >> _SLOT_BITS)
                if slab is None:
                    raise ValueError("product children must not be the bottom node")
                offset = (child - slab.base) * _STRIDE
                data = slab.data
                if data[offset] >= position:
                    raise ValueError(
                        "product children must have strictly smaller positions"
                    )
                child_ms = data[offset + 1]
                if child_ms < max_start:
                    max_start = child_ms
        return self._nk.extend(position, max_start, label_id, children)

    def union(
        self,
        left: int,
        fresh: int,
        position: Optional[int] = None,
        fresh_ms: Optional[int] = None,
    ) -> int:
        """``union(n1, n2)``: persistent union, iterative path copy.

        Same algorithm as ``DataStructure._union`` — expired-subtree pruning,
        fresh-on-top when its ``max_start`` dominates, direction-bit balancing
        — as a descend-then-rebuild loop instead of recursion, so union chains
        of any depth cannot overflow the interpreter stack.

        ``position`` / ``fresh_ms`` are the engines' fast path: ``fresh`` is
        a node they just built at the current position with a ``max_start``
        they already hold, so passing both skips re-reading (and validating)
        the fresh record — the caller certifies ``fresh`` is a live,
        link-free product node.  Without them, the record is read and the
        freshness validated here, as the object structure does.
        """
        columnar = self._columnar
        slabs = self._slabs
        fresh_slab = slabs.get(fresh >> _SLOT_BITS) if fresh else None
        if fresh_slab is None:
            raise ValueError("the second argument of union must be a live product node")
        fresh_index = fresh - fresh_slab.base
        if columnar:
            fresh_word = fresh_index * _STRIDE
            fresh_data = fresh_slab.data
            if position is None:
                if fresh_data[fresh_word + 2] or fresh_data[fresh_word + 3]:
                    raise ValueError(
                        "the second argument of union must be a fresh product node"
                    )
                position = fresh_data[fresh_word]
                fresh_ms = fresh_data[fresh_word + 1]
        else:
            if position is None:
                if fresh_slab.ul[fresh_index] or fresh_slab.ur[fresh_index]:
                    raise ValueError(
                        "the second argument of union must be a fresh product node"
                    )
                position = fresh_slab.pos[fresh_index]
                fresh_ms = fresh_slab.ms[fresh_index]
        self._union_calls += 1
        window = self.window
        cap = self._cap
        # Descend: copy-path frames.  The dominance test reads only the ``ms``
        # word (the fresh-on-top fast path — the common case — stays at two
        # boxed reads); a level actually descended batches the node's whole
        # record into its frame with one 5-word ``unpack_from``, so the
        # rebuild below re-reads nothing.  List frames carry the index.
        path: List[Tup[_Slab, object, bool]] = []
        current = left
        copies = 0
        new: int
        while True:
            slab = slabs.get(current >> _SLOT_BITS) if current else None
            if slab is None:
                # Bottom, or a released slab: everything below is expired.
                new = fresh
                break
            index = current - slab.base
            if columnar:
                word = index * _STRIDE
                data = slab.data
                node_ms = data[word + 1]
            else:
                node_ms = slab.ms[index]
            if position - node_ms > window:
                # Expired subtree: prune it (positions only grow).
                new = fresh
                break
            copies += 1
            if fresh_ms >= node_ms:
                # Fresh dominates: it becomes the new top, old tree below; the
                # copy shares fresh's children tuple (no re-materialisation).
                # Allocation inlined, as in ``extend``.
                target = self._cur
                offset = target.count
                if offset >= cap or (offset and position > self._seal_deadline):
                    target = self._new_slab(position)
                    offset = 0
                if columnar:
                    fresh_meta = fresh_data[fresh_word + 4]
                    meta = (fresh_meta & _META_LABEL_DIRN) | (
                        0 if data[word + 4] & 1 else 1  # not old dirn
                    )
                    ref = fresh_meta >> 32
                    if ref:
                        prods = target.prods
                        prods.append(fresh_slab.prods[ref - 1])
                        meta = (meta & _META_LOW) | (len(prods) << 32)
                    target_data = target.data
                    if offset >= target.avail:
                        _grow_records(target)
                    _PACK_RECORD(
                        target_data, offset * _RECORD_BYTES, position, fresh_ms, current, 0, meta
                    )
                else:
                    target.pos.append(position)
                    target.ms.append(fresh_ms)
                    target.ul.append(current)
                    target.ur.append(0)
                    target.lab.append(fresh_slab.lab[fresh_index])
                    target.dirn.append(not slab.dirn[index])
                    target.prod.append(fresh_slab.prod[fresh_index])
                target.count = offset + 1
                if fresh_ms > target.max_ms:
                    target.max_ms = fresh_ms
                new = target.base + offset
                break
            if columnar:
                rec = _UNPACK_RECORD(data, index * _RECORD_BYTES)
                if rec[4] & 1:
                    path.append((slab, rec, True))
                    current = rec[2]
                else:
                    path.append((slab, rec, False))
                    current = rec[3]
            else:
                if slab.dirn[index]:
                    path.append((slab, index, True))
                    current = slab.ul[index]
                else:
                    path.append((slab, index, False))
                    current = slab.ur[index]
        # Rebuild the copied path bottom-up (path copying keeps persistence).
        for slab, frame, went_left in reversed(path):
            target = self._cur
            offset = target.count
            if offset >= cap or (offset and position > self._seal_deadline):
                target = self._new_slab(position)
                offset = 0
            if columnar:
                node_ms = frame[1]
                old_meta = frame[4]
                if went_left:
                    uleft = new
                    uright = frame[3]
                    direction = 0
                else:
                    uleft = frame[2]
                    uright = new
                    direction = 1
                meta = (old_meta & _META_LABEL_DIRN) | direction
                ref = old_meta >> 32
                if ref:
                    prods = target.prods
                    prods.append(slab.prods[ref - 1])
                    meta = (meta & _META_LOW) | (len(prods) << 32)
                target_data = target.data
                if offset >= target.avail:
                    _grow_records(target)
                _PACK_RECORD(
                    target_data, offset * _RECORD_BYTES, frame[0], node_ms, uleft, uright, meta
                )
            else:
                index = frame
                node_ms = slab.ms[index]
                target.pos.append(slab.pos[index])
                target.ms.append(node_ms)
                if went_left:
                    target.ul.append(new)
                    target.ur.append(slab.ur[index])
                    target.dirn.append(False)
                else:
                    target.ul.append(slab.ul[index])
                    target.ur.append(new)
                    target.dirn.append(True)
                target.lab.append(slab.lab[index])
                target.prod.append(slab.prod[index])
            target.count = offset + 1
            if node_ms > target.max_ms:
                target.max_ms = node_ms
            new = target.base + offset
        if copies:
            # One allocation per live level visited: the rebuilt path frames
            # plus the fresh-on-top copy when dominance broke the descent.
            self._union_copies += copies
            self._nodes_created += copies
            self._allocated += copies
        return new

    def _union_native(
        self,
        left: int,
        fresh: int,
        position: Optional[int] = None,
        fresh_ms: Optional[int] = None,
    ) -> int:
        """:meth:`union` on the native kernel (bound over it per instance).

        The no-hint freshness validation reads the shared record buffer in
        python (cold path); the descend-and-rebuild copy runs in C.
        """
        if position is None:
            fresh_slab = self._slabs.get(fresh >> _SLOT_BITS) if fresh else None
            if fresh_slab is None:
                raise ValueError(
                    "the second argument of union must be a live product node"
                )
            word = (fresh - fresh_slab.base) * _STRIDE
            data = fresh_slab.data
            if data[word + 2] or data[word + 3]:
                raise ValueError(
                    "the second argument of union must be a fresh product node"
                )
            position = data[word]
            fresh_ms = data[word + 1]
        return self._nk.union(left, fresh, position, fresh_ms)

    # ------------------------------------------------------------ reclamation
    def add_ref(self, node: int) -> None:
        """Count one external (hash-entry) reference into ``node``'s slab."""
        slab = self._slabs.get(node >> _SLOT_BITS)
        if slab is not None:
            slab.ext_refs += 1

    def drop_ref(self, node: int) -> None:
        """Drop one external reference (the eviction sweep calls this once per
        popped expiry-bucket registration, balancing :meth:`add_ref`)."""
        slab = self._slabs.get(node >> _SLOT_BITS)
        if slab is not None:
            slab.ext_refs -= 1

    def release_expired(self, position: int) -> int:
        """Release every leading sealed slab that expired and is unreferenced.

        Returns the number of slabs released.  O(1) per call when nothing is
        releasable; releasing is one dict deletion per owned slot (pointer
        bump undo), never a graph traversal.
        """
        slabs = self._slabs
        cursor = self._release_cursor
        current = self._cur
        window = self.window
        released = 0
        while True:
            slab = slabs.get(cursor)
            if slab is None or slab is current:
                break  # never release the unsealed current slab
            if position - slab.max_ms <= window or slab.ext_refs > 0:
                break
            for owned in range(cursor, cursor + slab.span):
                del slabs[owned]
            self._slab_count -= 1
            self.released_slabs += 1
            # Slab 0 holds the bottom sentinel, which _allocated never counted.
            self.released_nodes += slab.count - 1 if slab.base == 0 else slab.count
            released += 1
            cursor += slab.span
        self._release_cursor = cursor
        return released

    def _release_expired_native(self, position: int) -> int:
        """:meth:`release_expired` on the native kernel.

        The kernel makes the release decisions (its ``max_ms``/``ext_refs``
        are the canonical ones while it is attached) and frees its buffer
        holds; the python side then mirrors the same strictly-in-order walk
        to drop the slab-table entries and keep the release counters —
        sealed-slab ``count`` was mirrored at seal time, so the node
        accounting needs no further kernel round trip.
        """
        released = self._nk.release_scan(self._release_cursor, position)
        if not released:
            return 0
        slabs = self._slabs
        cursor = self._release_cursor
        for _ in range(released):
            slab = slabs[cursor]
            for owned in range(cursor, cursor + slab.span):
                del slabs[owned]
            self._slab_count -= 1
            self.released_slabs += 1
            # Slab 0 holds the bottom sentinel, which allocation never counted.
            self.released_nodes += slab.count - 1 if slab.base == 0 else slab.count
            cursor += slab.span
        self._release_cursor = cursor
        return released

    # ---------------------------------------------------------- introspection
    @property
    def nodes_created(self) -> int:
        nk = self._nk
        return nk.counters()[0] if nk is not None else self._nodes_created

    @nodes_created.setter
    def nodes_created(self, value: int) -> None:
        nk = self._nk
        if nk is not None:
            _, union_calls, union_copies, allocated = nk.counters()
            nk.set_counters(value, union_calls, union_copies, allocated)
        else:
            self._nodes_created = value

    @property
    def union_calls(self) -> int:
        nk = self._nk
        return nk.counters()[1] if nk is not None else self._union_calls

    @union_calls.setter
    def union_calls(self, value: int) -> None:
        nk = self._nk
        if nk is not None:
            nodes_created, _, union_copies, allocated = nk.counters()
            nk.set_counters(nodes_created, value, union_copies, allocated)
        else:
            self._union_calls = value

    @property
    def union_copies(self) -> int:
        nk = self._nk
        return nk.counters()[2] if nk is not None else self._union_copies

    @union_copies.setter
    def union_copies(self, value: int) -> None:
        nk = self._nk
        if nk is not None:
            nodes_created, union_calls, _, allocated = nk.counters()
            nk.set_counters(nodes_created, union_calls, value, allocated)
        else:
            self._union_copies = value

    def live_node_count(self) -> int:
        """Nodes currently held in retained slabs (the memory bound metric)."""
        if self._nk is not None:
            return self._nk.counters()[3] - self.released_nodes
        return self._allocated - self.released_nodes

    def slab_count(self) -> int:
        return self._slab_count

    def slab_capacity(self) -> int:
        """The current slab's capacity (adapts with the allocation volume)."""
        return self._cap

    def memory_stats(self) -> Dict[str, int]:
        """Arena occupancy, shaped for the CLI ``--stats`` memory section."""
        return {
            "arena": 1,
            "columnar": 1 if self._columnar else 0,
            "native": 1 if self._nk is not None else 0,
            "slabs": self._slab_count,
            "slab_capacity": self._cap,
            "live_nodes": self.live_node_count(),
            "released_slabs": self.released_slabs,
            "released_nodes": self.released_nodes,
            "nodes_created": self.nodes_created,
        }

    def _retained_slabs(self) -> List[_Slab]:
        """The retained slabs, deduplicated (a slab owns ``span`` slots) and
        in allocation order (the current slab last)."""
        unique = {id(slab): slab for slab in self._slabs.values()}
        return sorted(unique.values(), key=lambda slab: slab.base)

    def resident_bytes(self) -> int:
        """Measured bytes of the retained slab storage (the footprint metric).

        Sums the record/column containers of every retained slab plus the
        product child tuples (deduplicated by identity — union copies share
        them).  For the list layout the boxed element objects of the int
        columns are included once per distinct object, because that is
        precisely the storage the columnar layout collapses into raw machine
        words; the ints *inside* the child tuples are excluded for both
        layouts (both pay them identically).
        ``benchmarks/bench_state_footprint.py`` reports this for the
        columnar-vs-list comparison.
        """
        getsizeof = sys.getsizeof
        seen: set = set()
        total = 0
        columnar = self._columnar
        for slab in self._retained_slabs():
            if columnar:
                total += getsizeof(slab.data)
                tuples = slab.prods
                total += getsizeof(tuples)
            else:
                tuples = slab.prod
                total += getsizeof(tuples)
                for column in (slab.pos, slab.ms, slab.ul, slab.ur, slab.lab, slab.dirn):
                    total += getsizeof(column)
                    for value in column:
                        marker = id(value)
                        if marker not in seen:
                            seen.add(marker)
                            total += getsizeof(value)
            for children in tuples:
                marker = id(children)
                if marker not in seen:
                    seen.add(marker)
                    total += getsizeof(children)
        return total

    # ------------------------------------------------------- snapshot protocol
    def snapshot(self) -> Dict[str, object]:
        """The arena's complete state as a plain-Python, picklable tree.

        Representation-independent: fields are normalised to plain per-column
        lists of ints and product children to one dense tuple per node, so a
        columnar arena can restore a list-layout snapshot and vice versa —
        and two arenas fed identical operations produce *equal* snapshots
        regardless of layout, which is what the structural-identity property
        tests compare.
        """
        nk = self._nk
        if nk is not None:
            # Pull the kernel-authoritative per-slab meta (the current slab's
            # fill, every slab's live ``ext_refs``) and the allocation count
            # into the python mirrors the loop below reads.  Record *data*
            # needs no sync: the kernel writes the shared buffers in place.
            for slab in self._retained_slabs():
                slab.count, slab.max_ms, slab.ext_refs = nk.slab_meta(
                    slab.base >> _SLOT_BITS
                )
            self._allocated = nk.counters()[3]
        columnar = self._columnar
        slabs = []
        for slab in self._retained_slabs():
            if columnar:
                data = slab.data
                fill = slab.count * _STRIDE
                prods = slab.prods
                meta = list(data[4:fill:_STRIDE])
                lab = [(value & _META_LOW) >> 1 for value in meta]
                dirn = [value & 1 for value in meta]
                prod = [
                    prods[(value >> 32) - 1] if value >> 32 else () for value in meta
                ]
                pos = list(data[0:fill:_STRIDE])
                ms = list(data[1:fill:_STRIDE])
                ul = list(data[2:fill:_STRIDE])
                ur = list(data[3:fill:_STRIDE])
            else:
                pos = list(slab.pos)
                ms = list(slab.ms)
                ul = list(slab.ul)
                ur = list(slab.ur)
                lab = list(slab.lab)
                dirn = [int(bit) for bit in slab.dirn]
                prod = list(slab.prod)
            slabs.append(
                {
                    "base": slab.base,
                    "span": slab.span,
                    "count": slab.count,
                    "max_ms": slab.max_ms,
                    "ext_refs": slab.ext_refs,
                    "pos": pos,
                    "ms": ms,
                    "ul": ul,
                    "ur": ur,
                    "lab": lab,
                    "dirn": dirn,
                    "prod": prod,
                }
            )
        return {
            "window": self.window,
            "cap": self._cap,
            "adaptive": self._adaptive,
            "next_slot": self._next_slot,
            "release_cursor": self._release_cursor,
            "slab_start": self._slab_start,
            "seal_deadline": self._seal_deadline,
            "allocated": self._allocated,
            "labels": list(self._labels),
            "slabs": slabs,
            "counters": {
                "nodes_created": self.nodes_created,
                "union_calls": self.union_calls,
                "union_copies": self.union_copies,
                "released_slabs": self.released_slabs,
                "released_nodes": self.released_nodes,
            },
        }

    def restore(self, snapshot: Dict[str, object]) -> None:
        """Replace this arena's entire state with ``snapshot``'s, in place.

        In-place so bound hooks (:class:`~repro.runtime.EvictionLane` binds
        ``add_ref``/``drop_ref``/``release_expired`` once) stay valid.  The
        window must match (it is the engine's configuration, not state); the
        storage layout is this arena's own — restoring re-packs the snapshot
        columns into whatever representation ``columnar`` selected.
        """
        if snapshot["window"] != self.window:
            raise ValueError(
                f"snapshot was taken with window {snapshot['window']}, "
                f"this arena has window {self.window}"
            )
        nk = self._nk
        if nk is not None:
            # Drop every buffer hold *before* rebuilding: restored slot
            # ranges may overlap the old ones, and releasing the views lets
            # the old arrays die with the old slab table.  The kernel object
            # itself is reused (never replaced), so the bound ``add_ref`` /
            # ``drop_ref`` / wrapper methods held by eviction lanes survive
            # the restore — the same in-place contract the python path gives.
            nk.close()
            nk.set_request_slab(self._request_slab)
        self._cap = int(snapshot["cap"])
        self._adaptive = bool(snapshot["adaptive"])
        self._next_slot = int(snapshot["next_slot"])
        self._release_cursor = int(snapshot["release_cursor"])
        slab_start = snapshot["slab_start"]
        self._slab_start = None if slab_start is None else int(slab_start)
        self._seal_deadline = int(snapshot["seal_deadline"])
        self._allocated = int(snapshot["allocated"])
        self._labels = [frozenset(labels) for labels in snapshot["labels"]]
        self._label_ids = {labels: index for index, labels in enumerate(self._labels)}
        columnar = self._columnar
        slabs: Dict[int, _Slab] = {}
        current: Optional[_Slab] = None
        count = 0
        for slab_snap in snapshot["slabs"]:
            slab = _Slab(int(slab_snap["base"]), int(slab_snap["span"]), columnar)
            if columnar:
                data = slab.data
                prods: List[Tup[int, ...]] = []
                for pos, ms, ul, ur, label_id, bit, children in zip(
                    slab_snap["pos"],
                    slab_snap["ms"],
                    slab_snap["ul"],
                    slab_snap["ur"],
                    slab_snap["lab"],
                    slab_snap["dirn"],
                    slab_snap["prod"],
                ):
                    meta = (int(label_id) << 1) | int(bit)
                    if children:
                        prods.append(tuple(children))
                        meta |= len(prods) << 32
                    data.append(int(pos))
                    data.append(int(ms))
                    data.append(int(ul))
                    data.append(int(ur))
                    data.append(meta)
                slab.prods = prods
                slab.avail = int(slab_snap["count"])
            else:
                slab.pos = list(slab_snap["pos"])
                slab.ms = list(slab_snap["ms"])
                slab.ul = list(slab_snap["ul"])
                slab.ur = list(slab_snap["ur"])
                slab.lab = list(slab_snap["lab"])
                slab.dirn = [bool(bit) for bit in slab_snap["dirn"]]
                slab.prod = [tuple(children) for children in slab_snap["prod"]]
            slab.count = int(slab_snap["count"])
            slab.max_ms = int(slab_snap["max_ms"])
            slab.ext_refs = int(slab_snap["ext_refs"])
            first_slot = slab.base >> _SLOT_BITS
            for owned in range(first_slot, first_slot + slab.span):
                slabs[owned] = slab
            count += 1
            current = slab  # snapshot slabs are in allocation order
        if current is None:
            raise ValueError("snapshot holds no slabs (the current slab is never released)")
        self._slabs = slabs
        self._slab_count = count
        self._cur = current
        if nk is not None:
            # Re-register the restored slabs: pad every record array back to
            # full slab capacity (the kernel's exported buffers never grow)
            # and hand the meta over — the kernel is authoritative for
            # count/max_ms/ext_refs again from here on.
            for slab in self._retained_slabs():
                capacity = slab.span << _SLOT_BITS
                pad = capacity - slab.avail
                if pad > 0:
                    slab.data.extend(array("q", bytes(_RECORD_BYTES * pad)))
                slab.avail = capacity
                nk.register_slab(
                    slab.base >> _SLOT_BITS,
                    slab.span,
                    slab.base,
                    slab.data,
                    slab.prods,
                    slab.count,
                    slab.max_ms,
                    slab.ext_refs,
                )
            nk.set_current(current.base >> _SLOT_BITS, self._seal_deadline)
            nk.set_counters(0, 0, 0, self._allocated)
        counters = snapshot["counters"]
        self.nodes_created = int(counters["nodes_created"])
        self.union_calls = int(counters["union_calls"])
        self.union_copies = int(counters["union_copies"])
        self.released_slabs = int(counters["released_slabs"])
        self.released_nodes = int(counters["released_nodes"])

    # ------------------------------------------------------------ enumeration
    def enumerate(self, node: int, position: int) -> Iterator[Valuation]:
        """Enumerate ``⟦node⟧^w_position`` — same pruning and order as the
        object structure's :meth:`~repro.core.datastructure.DataStructure.enumerate`."""
        columnar = self._columnar
        labels = self._labels
        slabs = self._slabs
        window = self.window
        stack: List[int] = [node] if node else []
        while stack:
            current = stack.pop()
            if not current:
                continue
            slab = slabs.get(current >> _SLOT_BITS)
            if slab is None:
                continue
            index = current - slab.base
            if columnar:
                # One batched record read (five words, one C call) instead of
                # up to five boxed ``array`` element reads per node.
                pos, node_ms, uleft, uright, meta = _UNPACK_RECORD(
                    slab.data, index * _RECORD_BYTES
                )
                if position - node_ms > window:
                    continue
                ref = meta >> 32
                if ref:
                    yield from self._product_combinations(
                        labels[(meta & _META_LOW) >> 1],
                        pos,
                        slab.prods[ref - 1],
                        position,
                        windowed=True,
                    )
                elif position - pos <= window:
                    yield Valuation.singleton(labels[(meta & _META_LOW) >> 1], pos)
            else:
                if position - slab.ms[index] > window:
                    continue
                prod = slab.prod[index]
                if prod:
                    yield from self._product_combinations(
                        labels[slab.lab[index]], slab.pos[index], prod, position, windowed=True
                    )
                elif position - slab.pos[index] <= window:
                    yield Valuation.singleton(labels[slab.lab[index]], slab.pos[index])
                uright = slab.ur[index]
                uleft = slab.ul[index]
            if uright:
                stack.append(uright)
            if uleft:
                stack.append(uleft)

    def _enumerate_native(self, node: int, position: int) -> Iterator[Valuation]:
        """:meth:`enumerate` on the native kernel.

        The kernel walks the union tree (pruning included) and returns the
        surviving ``(label_id, position, children)`` emissions in exactly the
        python walk's order; only the valuation construction — and the child
        recursion through :meth:`_product_combinations`, which re-enters this
        method — stays in python.
        """
        labels = self._labels
        for label_id, pos, children in self._nk.walk(node, position):
            if children:
                yield from self._product_combinations(
                    labels[label_id], pos, children, position, windowed=True
                )
            else:
                yield Valuation.singleton(labels[label_id], pos)

    def enumerate_all(self, node: int) -> Iterator[Valuation]:
        """Enumerate ``⟦node⟧`` ignoring the window (tests; only meaningful
        while nothing reachable from ``node`` has been released)."""
        labels = self._labels
        slabs = self._slabs
        stack: List[int] = [node] if node else []
        while stack:
            current = stack.pop()
            if not current:
                continue
            slab = slabs.get(current >> _SLOT_BITS)
            if slab is None:
                continue
            index = current - slab.base
            prod = self._prod_of(slab, index)
            node_position = (
                slab.data[index * _STRIDE] if self._columnar else slab.pos[index]
            )
            if prod:
                yield from self._product_combinations(
                    labels[self._label_id_of(slab, index)],
                    node_position,
                    prod,
                    position=0,
                    windowed=False,
                )
            else:
                yield Valuation.singleton(labels[self._label_id_of(slab, index)], node_position)
            uleft, uright = self._links_of(slab, index)
            if uright:
                stack.append(uright)
            if uleft:
                stack.append(uleft)

    def _product_combinations(
        self,
        labels: frozenset,
        node_position: int,
        prod: Tup[int, ...],
        position: int,
        windowed: bool,
    ) -> Iterator[Valuation]:
        """Cross product over the child enumerations — the shared
        :func:`~repro.core.datastructure.product_odometer` over id-based child
        iterators, so the two representations cannot drift apart."""
        base = Valuation.singleton(labels, node_position)
        if windowed:
            iterators = [self.enumerate(child, position) for child in prod]
        else:
            iterators = [self.enumerate_all(child) for child in prod]
        yield from product_odometer(base, iterators)

    # ------------------------------------------------------------- validation
    def check_heap_condition(self, node: int) -> bool:
        """Condition (‡) below ``node``, iteratively (deep chains are fine)."""
        slabs = self._slabs
        stack: List[int] = [node] if node else []
        while stack:
            current = stack.pop()
            slab = slabs.get(current >> _SLOT_BITS)
            if slab is None:
                continue
            index = current - slab.base
            current_ms = (
                slab.data[index * _STRIDE + 1] if self._columnar else slab.ms[index]
            )
            for link in self._links_of(slab, index):
                if not link:
                    continue
                link_slab = slabs.get(link >> _SLOT_BITS)
                if link_slab is None:
                    continue
                link_index = link - link_slab.base
                link_ms = (
                    link_slab.data[link_index * _STRIDE + 1]
                    if self._columnar
                    else link_slab.ms[link_index]
                )
                if link_ms > current_ms:
                    return False
                stack.append(link)
            stack.extend(self._prod_of(slab, index))
        return True

    def check_simple(self, node: int) -> bool:
        """Whether the bag rooted at ``node`` is *simple* (no overlapping products).

        Exponential in general; tests/debug only, iterative like the object
        version.  Only meaningful while nothing reachable from ``node`` has
        been released.
        """
        slabs = self._slabs
        worklist: List[int] = [node] if node else []
        while worklist:
            current = worklist.pop()
            slab = slabs.get(current >> _SLOT_BITS)
            if slab is None:
                continue
            index = current - slab.base
            node_position = (
                slab.data[index * _STRIDE] if self._columnar else slab.pos[index]
            )
            base = Valuation.singleton(
                self._labels[self._label_id_of(slab, index)], node_position
            )
            prod = self._prod_of(slab, index)
            partials: List[Valuation] = [base]
            for child in prod:
                new_partials: List[Valuation] = []
                for partial in partials:
                    for child_valuation in self.enumerate_all(child):
                        if not partial.simple_with(child_valuation):
                            return False
                        new_partials.append(partial.product(child_valuation))
                partials = new_partials
            worklist.extend(prod)
            for link in self._links_of(slab, index):
                if link:
                    worklist.append(link)
        return True

    def union_depth(self, node: int) -> int:
        """Depth of the union tree hanging at ``node`` (instrumentation)."""
        slabs = self._slabs
        best = 0
        stack: List[Tup[int, int]] = [(node, 1)] if node else []
        while stack:
            current, depth = stack.pop()
            slab = slabs.get(current >> _SLOT_BITS)
            if slab is None:
                continue
            if depth > best:
                best = depth
            for link in self._links_of(slab, current - slab.base):
                if link:
                    stack.append((link, depth + 1))
        return best

    def __repr__(self) -> str:
        layout = "columnar" if self._columnar else "list"
        return (
            f"ArenaDataStructure(window={self.window}, slabs={self._slab_count}, "
            f"cap={self._cap}, live={self.live_node_count()}, "
            f"released={self.released_nodes}, {layout})"
        )
