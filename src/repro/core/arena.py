"""Arena-backed ``DS_w``: flat-array node storage with window-bounded reclamation.

:class:`ArenaDataStructure` implements the same interface and the *exact same
semantics* (including enumeration order) as the object-graph
:class:`~repro.core.datastructure.DataStructure`, but represents nodes as dense
integer ids instead of GC-tracked frozen dataclass instances.

Arena layout
------------
Node ids are allocated from one global id space carved into fixed 64-node
*slots* (``slot = id >> 6``).  A slab owns a contiguous range of slots —
``capacity / 64`` of them — and every owned slot maps to the slab in the
slab table, so id-to-slab resolution is one dict lookup regardless of slab
size and the node's offset is ``id - slab.base``.  Each slab holds parallel
flat lists, one entry per node:

* ``pos``  — the node's stream position ``i(n)``;
* ``ms``   — ``max_start(n) = max{min(ν) | ν ∈ ⟦n⟧_prod}``;
* ``ul`` / ``ur`` — union links as node ids (``0`` = no link / ``⊥``);
* ``lab``  — an interned label-set id (the distinct label sets come from the
  compiled transitions, so interning makes ``extend`` free of per-call
  ``frozenset`` construction);
* ``dirn`` — the union-balancing direction bit;
* ``prod`` — the node's product children as a tuple of node ids.  The tuple is
  allocated once per ``extend`` and *shared* by every union path copy of the
  node (copies never re-materialise their child list), so union cost stays a
  constant number of list appends per copied level; a live copy keeps the
  originating slab alive transitively through the expiry argument below, never
  through refcounts.

Node id ``0`` is the bottom node ``⊥`` (empty bag): it never carries links or
children and every traversal treats it as expired.

Adaptive slab sizing
--------------------
Slab capacity adapts to the observed allocation rate.  When a slab seals, the
arena projects how many nodes one window's worth of stream positions
allocates (``capacity / positions-the-slab-lasted × (window + 1)``) and sizes
the next slab so that about :data:`TARGET_SLABS_PER_WINDOW` slabs cover a
window — keeping the retained-slab count O(1) per window on bursty streams
(a burst doubles capacity per seal until slabs last ``~window/8`` positions;
a lull shrinks back toward the 64-node minimum so reclamation granularity
stays tight).  An explicit ``slab_capacity`` disables adaptation (fixed-size
slabs, the pre-adaptive behaviour the unit tests pin down); capacities are
powers of two in ``[64, 65536]``.

Slab lifecycle
--------------
Nodes are allocated by a pointer bump into the newest ("current") slab; a full
slab is *sealed* and a fresh one started, so slabs are generations bucketed by
allocation time and — because ``max_start`` of any allocatable node is within
one window of its allocation position — effectively bucketed by ``max_start``
too.  Each slab tracks ``max_ms``, the largest ``max_start`` it contains.  A
sealed slab is *released wholesale* (its arrays dropped in one dict deletion
per owned slot, O(1) amortised, no graph traversal) once

1. it has **expired**: ``position - max_ms > window``, i.e. every node in it
   enumerates nothing and is pruned by every union, forever (positions only
   grow); and
2. its **external-reference count is zero**: no surviving run-index hash entry
   points into it.  The count is maintained by the evaluator's existing
   eviction sweep — incremented when an entry is registered in an expiry
   bucket, decremented when that bucket is popped — so by the time a slab
   expires, the sweep (which pops the bucket of the same ``max_start`` at the
   same threshold) has already dropped every count it will ever drop.

Slabs are released strictly in allocation order; because ``max_ms`` across
slabs can lag the allocation position by at most one window, an expired slab
waits at most ``O(window)`` positions behind a blocked predecessor, keeping
total retained storage ``O(active window)``.

The external-reference invariant
--------------------------------
References *into* a slab come from three places, each handled differently:

* **product children of live nodes** — always safe without counting: a product
  node's ``max_start`` is ≤ every child's ``max_start``, so a live (non-expired)
  node implies live children, which implies their slabs have not expired and
  therefore have not been released;
* **union links of live nodes** — may legitimately point at expired nodes (the
  heap condition only bounds ``max_start`` from above).  Traversals read one
  level into such a subtree purely to observe "expired, prune".  These reads
  are guarded at dereference time: a missing slab *means* expired, so the
  lookup ``slabs.get(id >> 6)`` returning ``None`` takes exactly the branch
  the pruning check would have taken.  Counting these references instead would
  chain-pin the entire history (every union top links to the previous top), so
  they are deliberately *not* counted;
* **run-index hash entries** — counted (``ext_refs`` above), so an entry that
  survives in ``H`` never dangles; the count reaches zero exactly when the
  sweep retires the entry's expiry bucket.

Everything the evaluator consumes (``extend`` / ``union`` / ``enumerate`` /
``expired`` / the validation helpers) takes and returns plain ``int`` ids; the
recursive ``_union`` of the object structure becomes an iterative
descend-then-rebuild loop over the arrays, and enumeration pushes ids on an
explicit stack, mirroring the object traversal order exactly so that the two
representations are interchangeable output-for-output (the differential tests
in ``tests/test_arena.py`` rely on this).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple as Tup

from repro.core.datastructure import product_odometer
from repro.valuation import Valuation


Label = Hashable

#: ``max_start`` of the bottom node: expired relative to every position/window.
_NEVER = -(1 << 62)

#: The bottom node ``⊥`` as an id (shared by every arena).
BOTTOM_ID = 0

#: Fixed slot granularity of the id space: ids map to slabs via ``id >> 6``.
_SLOT_BITS = 6

#: Slab capacities are powers of two within these bounds.
MIN_SLAB_CAPACITY = 1 << _SLOT_BITS
MAX_SLAB_CAPACITY = 1 << 16

#: Adaptive sizing aims for about this many slabs per window, balancing
#: reclamation granularity (more, smaller slabs) against slab-table overhead.
TARGET_SLABS_PER_WINDOW = 8


class _Slab:
    """One generation of nodes: parallel flat arrays plus release accounting."""

    __slots__ = (
        "base",
        "span",
        "pos",
        "ms",
        "ul",
        "ur",
        "lab",
        "dirn",
        "prod",
        "count",
        "max_ms",
        "ext_refs",
    )

    def __init__(self, base: int, span: int) -> None:
        self.base = base
        self.span = span  # owned 64-node slots (capacity == span << 6)
        self.pos: List[int] = []
        self.ms: List[int] = []
        self.ul: List[int] = []
        self.ur: List[int] = []
        self.lab: List[int] = []
        self.dirn: List[bool] = []
        self.prod: List[Tup[int, ...]] = []
        self.count = 0
        self.max_ms = _NEVER
        self.ext_refs = 0


def _round_capacity(value: float) -> int:
    """The smallest valid power-of-two capacity covering ``value``."""
    capacity = MIN_SLAB_CAPACITY
    while capacity < value and capacity < MAX_SLAB_CAPACITY:
        capacity <<= 1
    return capacity


class ArenaDataStructure:
    """``DS_w`` over flat arrays with O(1) amortised window-bounded reclamation.

    Drop-in replacement for :class:`~repro.core.datastructure.DataStructure`
    in which nodes are integer ids (see the module docstring for the layout
    and the release protocol).  The public surface mirrors the object
    structure: :meth:`extend`, :meth:`union`, :meth:`enumerate`,
    :meth:`enumerate_all`, :meth:`expired`, the validation helpers and the
    ``nodes_created`` / ``union_calls`` / ``union_copies`` counters, plus the
    reclamation hooks the streaming evaluators call (:meth:`add_ref`,
    :meth:`drop_ref`, :meth:`release_expired`) and the memory introspection
    used by ``--stats`` and the benchmarks (:meth:`memory_stats`).

    Parameters
    ----------
    window:
        The sliding-window size ``w``.
    slab_capacity:
        Nodes per slab (rounded up to a power of two within
        ``[64, 65536]``).  Giving it pins the capacity for the arena's
        lifetime (adaptation off unless ``adaptive=True`` is passed
        explicitly); by default the initial capacity tracks the window
        (``min(4096, max(64, window + 1))`` rounded up) and then adapts to
        the observed allocation volume.
    adaptive:
        Whether slab capacity follows the observed per-window allocation
        volume (see the module docstring).  Defaults to ``True`` when
        ``slab_capacity`` is not given, ``False`` when it is.
    """

    def __init__(
        self,
        window: int,
        slab_capacity: Optional[int] = None,
        adaptive: Optional[bool] = None,
    ) -> None:
        if window < 0:
            raise ValueError("window size must be non-negative")
        self.window = window
        if adaptive is None:
            adaptive = slab_capacity is None
        self._adaptive = adaptive
        if slab_capacity is None:
            slab_capacity = min(4096, max(MIN_SLAB_CAPACITY, window + 1))
        self._cap = _round_capacity(slab_capacity)
        self._bits = _SLOT_BITS
        self._slabs: Dict[int, _Slab] = {}
        self._slab_count = 0
        self._next_slot = 0
        self._release_cursor = 0
        self._slab_start: Optional[int] = None
        self._cur = self._new_slab()
        # Reserve id 0 for bottom: a sentinel that always reads as expired.
        self._append(self._cur, -1, _NEVER, 0, 0, 0, False, ())
        self._allocated = 0  # real nodes (the bottom sentinel is not counted)
        # Label-set interning: distinct label sets come from the compiled
        # transitions, so this table stays tiny.
        self._label_ids: Dict[frozenset, int] = {}
        self._labels: List[frozenset] = []
        # Counters mirroring DataStructure (benchmark instrumentation).
        self.nodes_created = 0
        self.union_calls = 0
        self.union_copies = 0
        self.released_slabs = 0
        self.released_nodes = 0

    # ---------------------------------------------------------------- slabs
    def _new_slab(self, position: Optional[int] = None) -> _Slab:
        """Seal the current slab and start a fresh one (adapting capacity).

        ``position`` is the stream position of the allocation that triggered
        the seal; with adaptive sizing it dates the sealed slab's fill time,
        from which the next capacity is projected.
        """
        if position is not None and self._adaptive and self._slab_start is not None:
            elapsed = max(1, position - self._slab_start)
            # Nodes one window's worth of positions allocates at the sealed
            # slab's observed rate, spread over the target slab count.  The
            # sealed slab's actual fill (not its capacity) is what matters:
            # a time-sealed slab (see ``_seal_deadline``) is partially full,
            # and its low fill is exactly the signal to shrink.
            per_window = self._cur.count * (self.window + 1) / elapsed
            self._cap = _round_capacity(per_window / TARGET_SLABS_PER_WINDOW)
        slot = self._next_slot
        span = self._cap >> _SLOT_BITS
        self._next_slot = slot + span
        slab = _Slab(slot << _SLOT_BITS, span)
        slabs = self._slabs
        for owned in range(slot, slot + span):
            slabs[owned] = slab
        self._slab_count += 1
        self._cur = slab
        self._slab_start = position
        # Time-based seal: an adaptive slab still open after a full window of
        # positions seals at the next allocation, so a post-burst lull both
        # shrinks the capacity and keeps reclamation granularity within the
        # window (a slab can otherwise pin up to ``capacity`` nodes while it
        # slowly fills).  Non-adaptive arenas never time-seal.
        if self._adaptive and position is not None:
            self._seal_deadline = position + self.window + 1
        else:
            self._seal_deadline = 1 << 62
        return slab

    @staticmethod
    def _append(
        slab: _Slab,
        position: int,
        max_start: int,
        uleft: int,
        uright: int,
        label_id: int,
        direction: bool,
        children: Tup[int, ...],
    ) -> int:
        offset = slab.count
        slab.pos.append(position)
        slab.ms.append(max_start)
        slab.ul.append(uleft)
        slab.ur.append(uright)
        slab.lab.append(label_id)
        slab.dirn.append(direction)
        slab.prod.append(children)
        slab.count = offset + 1
        if max_start > slab.max_ms:
            slab.max_ms = max_start
        return slab.base + offset

    # ---------------------------------------------------------------- access
    def max_start_of(self, node: int) -> int:
        """``max_start`` of ``node`` (``_NEVER`` for ⊥ / released ids)."""
        slab = self._slabs.get(node >> _SLOT_BITS)
        if slab is None:
            return _NEVER
        return slab.ms[node - slab.base]

    def position_of(self, node: int) -> int:
        slab = self._slabs.get(node >> _SLOT_BITS)
        if slab is None:
            return -1
        return slab.pos[node - slab.base]

    def labels_of(self, node: int) -> frozenset:
        slab = self._slabs.get(node >> _SLOT_BITS)
        if slab is None:
            return frozenset()
        return self._labels[slab.lab[node - slab.base]]

    def expired(self, node: int, position: int) -> bool:
        """Whether every valuation of ``⟦node⟧`` is out of the window at ``position``.

        A released slab certifies expiry (slabs are only released once every
        node in them has expired), so the missing-slab branch is semantically
        the same pruning decision, not an error.
        """
        if not node:
            return True
        slab = self._slabs.get(node >> _SLOT_BITS)
        if slab is None:
            return True
        return position - slab.ms[node - slab.base] > self.window

    # ----------------------------------------------------------------- nodes
    def extend(self, labels: Iterable[Label], position: int, children: Sequence[int]) -> int:
        """``extend(L, i, N)``: a fresh product node (mirrors the object version).

        Allocation is inlined (no helper-call chain): one append per column is
        the entire cost, which is what buys the per-tuple speedup over the
        frozen-dataclass construction of the object structure.
        """
        if not isinstance(labels, frozenset):
            labels = frozenset(labels)
        label_id = self._label_ids.get(labels)
        if label_id is None:
            label_id = len(self._labels)
            self._labels.append(labels)
            self._label_ids[labels] = label_id
        slabs = self._slabs
        max_start = position
        for child in children:
            slab = None if not child else slabs.get(child >> _SLOT_BITS)
            if slab is None:
                raise ValueError("product children must not be the bottom node")
            index = child - slab.base
            if slab.pos[index] >= position:
                raise ValueError("product children must have strictly smaller positions")
            child_ms = slab.ms[index]
            if child_ms < max_start:
                max_start = child_ms
        # Inline allocation — one append per column; keep the three
        # allocation sites (here and the two in ``union``) in sync with
        # ``_append``.
        slab = self._cur
        offset = slab.count
        if offset >= self._cap or (offset and position > self._seal_deadline):
            slab = self._new_slab(position)
            offset = 0
        slab.pos.append(position)
        slab.ms.append(max_start)
        slab.ul.append(0)
        slab.ur.append(0)
        slab.lab.append(label_id)
        slab.dirn.append(False)
        slab.prod.append(tuple(children))
        slab.count = offset + 1
        if max_start > slab.max_ms:
            slab.max_ms = max_start
        self.nodes_created += 1
        self._allocated += 1
        return slab.base + offset

    def union(self, left: int, fresh: int) -> int:
        """``union(n1, n2)``: persistent union, iterative path copy.

        Same algorithm as ``DataStructure._union`` — expired-subtree pruning,
        fresh-on-top when its ``max_start`` dominates, direction-bit balancing
        — as a descend-then-rebuild loop instead of recursion, so union chains
        of any depth cannot overflow the interpreter stack.
        """
        slabs = self._slabs
        fresh_slab = slabs.get(fresh >> _SLOT_BITS) if fresh else None
        if fresh_slab is None:
            raise ValueError("the second argument of union must be a live product node")
        fresh_index = fresh - fresh_slab.base
        if fresh_slab.ul[fresh_index] or fresh_slab.ur[fresh_index]:
            raise ValueError("the second argument of union must be a fresh product node")
        self.union_calls += 1
        position = fresh_slab.pos[fresh_index]
        fresh_ms = fresh_slab.ms[fresh_index]
        window = self.window
        # Descend: copy-path of (slab, index, went_left) frames.
        path: List[Tup[_Slab, int, bool]] = []
        current = left
        copies = 0
        new: int
        while True:
            slab = slabs.get(current >> _SLOT_BITS) if current else None
            if slab is None:
                # Bottom, or a released slab: everything below is expired.
                new = fresh
                break
            index = current - slab.base
            if position - slab.ms[index] > window:
                # Expired subtree: prune it (positions only grow).
                new = fresh
                break
            copies += 1
            if fresh_ms >= slab.ms[index]:
                # Fresh dominates: it becomes the new top, old tree below; the
                # copy shares fresh's children tuple (no re-materialisation).
                # Allocation inlined, as in ``extend``.
                target = self._cur
                offset = target.count
                if offset >= self._cap or (offset and position > self._seal_deadline):
                    target = self._new_slab(position)
                    offset = 0
                target.pos.append(position)
                target.ms.append(fresh_ms)
                target.ul.append(current)
                target.ur.append(0)
                target.lab.append(fresh_slab.lab[fresh_index])
                target.dirn.append(not slab.dirn[index])
                target.prod.append(fresh_slab.prod[fresh_index])
                target.count = offset + 1
                if fresh_ms > target.max_ms:
                    target.max_ms = fresh_ms
                new = target.base + offset
                break
            if slab.dirn[index]:
                path.append((slab, index, True))
                current = slab.ul[index]
            else:
                path.append((slab, index, False))
                current = slab.ur[index]
        # Rebuild the copied path bottom-up (path copying keeps persistence).
        for slab, index, went_left in reversed(path):
            node_ms = slab.ms[index]
            target = self._cur
            offset = target.count
            if offset >= self._cap or (offset and position > self._seal_deadline):
                target = self._new_slab(position)
                offset = 0
            target.pos.append(slab.pos[index])
            target.ms.append(node_ms)
            if went_left:
                target.ul.append(new)
                target.ur.append(slab.ur[index])
                target.dirn.append(False)
            else:
                target.ul.append(slab.ul[index])
                target.ur.append(new)
                target.dirn.append(True)
            target.lab.append(slab.lab[index])
            target.prod.append(slab.prod[index])
            target.count = offset + 1
            if node_ms > target.max_ms:
                target.max_ms = node_ms
            new = target.base + offset
        if copies:
            # One allocation per live level visited: the rebuilt path frames
            # plus the fresh-on-top copy when dominance broke the descent.
            self.union_copies += copies
            self.nodes_created += copies
            self._allocated += copies
        return new

    # ------------------------------------------------------------ reclamation
    def add_ref(self, node: int) -> None:
        """Count one external (hash-entry) reference into ``node``'s slab."""
        slab = self._slabs.get(node >> _SLOT_BITS)
        if slab is not None:
            slab.ext_refs += 1

    def drop_ref(self, node: int) -> None:
        """Drop one external reference (the eviction sweep calls this once per
        popped expiry-bucket registration, balancing :meth:`add_ref`)."""
        slab = self._slabs.get(node >> _SLOT_BITS)
        if slab is not None:
            slab.ext_refs -= 1

    def release_expired(self, position: int) -> int:
        """Release every leading sealed slab that expired and is unreferenced.

        Returns the number of slabs released.  O(1) per call when nothing is
        releasable; releasing is one dict deletion per owned slot (pointer
        bump undo), never a graph traversal.
        """
        slabs = self._slabs
        cursor = self._release_cursor
        current = self._cur
        window = self.window
        released = 0
        while True:
            slab = slabs.get(cursor)
            if slab is None or slab is current:
                break  # never release the unsealed current slab
            if position - slab.max_ms <= window or slab.ext_refs > 0:
                break
            for owned in range(cursor, cursor + slab.span):
                del slabs[owned]
            self._slab_count -= 1
            self.released_slabs += 1
            # Slab 0 holds the bottom sentinel, which _allocated never counted.
            self.released_nodes += slab.count - 1 if slab.base == 0 else slab.count
            released += 1
            cursor += slab.span
        self._release_cursor = cursor
        return released

    # ---------------------------------------------------------- introspection
    def live_node_count(self) -> int:
        """Nodes currently held in retained slabs (the memory bound metric)."""
        return self._allocated - self.released_nodes

    def slab_count(self) -> int:
        return self._slab_count

    def slab_capacity(self) -> int:
        """The current slab's capacity (adapts with the allocation volume)."""
        return self._cap

    def memory_stats(self) -> Dict[str, int]:
        """Arena occupancy, shaped for the CLI ``--stats`` memory section."""
        return {
            "arena": 1,
            "slabs": self._slab_count,
            "slab_capacity": self._cap,
            "live_nodes": self.live_node_count(),
            "released_slabs": self.released_slabs,
            "released_nodes": self.released_nodes,
            "nodes_created": self.nodes_created,
        }

    # ------------------------------------------------------------ enumeration
    def enumerate(self, node: int, position: int) -> Iterator[Valuation]:
        """Enumerate ``⟦node⟧^w_position`` — same pruning and order as the
        object structure's :meth:`~repro.core.datastructure.DataStructure.enumerate`."""
        slabs = self._slabs
        window = self.window
        stack: List[int] = [node] if node else []
        while stack:
            current = stack.pop()
            if not current:
                continue
            slab = slabs.get(current >> _SLOT_BITS)
            if slab is None:
                continue
            index = current - slab.base
            if position - slab.ms[index] > window:
                continue
            if slab.prod[index]:
                yield from self._product_combinations(slab, index, position, windowed=True)
            elif position - slab.pos[index] <= window:
                yield Valuation.singleton(self._labels[slab.lab[index]], slab.pos[index])
            uright = slab.ur[index]
            uleft = slab.ul[index]
            if uright:
                stack.append(uright)
            if uleft:
                stack.append(uleft)

    def enumerate_all(self, node: int) -> Iterator[Valuation]:
        """Enumerate ``⟦node⟧`` ignoring the window (tests; only meaningful
        while nothing reachable from ``node`` has been released)."""
        slabs = self._slabs
        stack: List[int] = [node] if node else []
        while stack:
            current = stack.pop()
            if not current:
                continue
            slab = slabs.get(current >> _SLOT_BITS)
            if slab is None:
                continue
            index = current - slab.base
            if slab.prod[index]:
                yield from self._product_combinations(slab, index, position=0, windowed=False)
            else:
                yield Valuation.singleton(self._labels[slab.lab[index]], slab.pos[index])
            uright = slab.ur[index]
            uleft = slab.ul[index]
            if uright:
                stack.append(uright)
            if uleft:
                stack.append(uleft)

    def _product_combinations(
        self, slab: _Slab, index: int, position: int, windowed: bool
    ) -> Iterator[Valuation]:
        """Cross product over the child enumerations — the shared
        :func:`~repro.core.datastructure.product_odometer` over id-based child
        iterators, so the two representations cannot drift apart."""
        base = Valuation.singleton(self._labels[slab.lab[index]], slab.pos[index])
        prod = slab.prod[index]
        if windowed:
            iterators = [self.enumerate(child, position) for child in prod]
        else:
            iterators = [self.enumerate_all(child) for child in prod]
        yield from product_odometer(base, iterators)

    # ------------------------------------------------------------- validation
    def check_heap_condition(self, node: int) -> bool:
        """Condition (‡) below ``node``, iteratively (deep chains are fine)."""
        slabs = self._slabs
        stack: List[int] = [node] if node else []
        while stack:
            current = stack.pop()
            slab = slabs.get(current >> _SLOT_BITS)
            if slab is None:
                continue
            index = current - slab.base
            current_ms = slab.ms[index]
            for link in (slab.ul[index], slab.ur[index]):
                if not link:
                    continue
                link_slab = slabs.get(link >> _SLOT_BITS)
                if link_slab is None:
                    continue
                if link_slab.ms[link - link_slab.base] > current_ms:
                    return False
                stack.append(link)
            stack.extend(slab.prod[index])
        return True

    def check_simple(self, node: int) -> bool:
        """Whether the bag rooted at ``node`` is *simple* (no overlapping products).

        Exponential in general; tests/debug only, iterative like the object
        version.  Only meaningful while nothing reachable from ``node`` has
        been released.
        """
        slabs = self._slabs
        worklist: List[int] = [node] if node else []
        while worklist:
            current = worklist.pop()
            slab = slabs.get(current >> _SLOT_BITS)
            if slab is None:
                continue
            index = current - slab.base
            base = Valuation.singleton(self._labels[slab.lab[index]], slab.pos[index])
            partials: List[Valuation] = [base]
            for child in slab.prod[index]:
                new_partials: List[Valuation] = []
                for partial in partials:
                    for child_valuation in self.enumerate_all(child):
                        if not partial.simple_with(child_valuation):
                            return False
                        new_partials.append(partial.product(child_valuation))
                partials = new_partials
            worklist.extend(slab.prod[index])
            for link in (slab.ul[index], slab.ur[index]):
                if link:
                    worklist.append(link)
        return True

    def union_depth(self, node: int) -> int:
        """Depth of the union tree hanging at ``node`` (instrumentation)."""
        slabs = self._slabs
        best = 0
        stack: List[Tup[int, int]] = [(node, 1)] if node else []
        while stack:
            current, depth = stack.pop()
            slab = slabs.get(current >> _SLOT_BITS)
            if slab is None:
                continue
            if depth > best:
                best = depth
            index = current - slab.base
            for link in (slab.ul[index], slab.ur[index]):
                if link:
                    stack.append((link, depth + 1))
        return best

    def __repr__(self) -> str:
        return (
            f"ArenaDataStructure(window={self.window}, slabs={self._slab_count}, "
            f"cap={self._cap}, live={self.live_node_count()}, "
            f"released={self.released_nodes})"
        )
