"""Configurations and run trees of complex event automata (paper, Sections 2 and 3).

A *configuration* ``(q, i, L)`` records that an automaton is in state ``q``
after reading and marking the tuple at position ``i`` with the labels ``L``.
CCEA runs are sequences of configurations; PCEA runs are *trees* of
configurations whose positions increase towards the root.  Both produce a
:class:`~repro.valuation.Valuation` mapping each label to the positions marked
with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, Iterator, Sequence, Tuple as Tup

from repro.valuation import Valuation


State = Hashable
Label = Hashable


@dataclass(frozen=True)
class Configuration:
    """A configuration ``(q, i, L)`` of a CCEA or PCEA."""

    state: State
    position: int
    labels: FrozenSet[Label]

    def __init__(self, state: State, position: int, labels) -> None:
        object.__setattr__(self, "state", state)
        object.__setattr__(self, "position", position)
        object.__setattr__(self, "labels", frozenset(labels))

    def valuation(self) -> Valuation:
        """The valuation ``ν_{L, i}`` contributed by this configuration alone."""
        return Valuation.singleton(self.labels, self.position)

    def __repr__(self) -> str:
        labels = ",".join(str(l) for l in sorted(self.labels, key=str))
        return f"({self.state!r}, {self.position}, {{{labels}}})"


@dataclass(frozen=True)
class RunTreeNode:
    """A node of a PCEA run tree: a configuration plus children.

    The valuation of the subtree is cached at construction so the naive
    evaluator does not re-traverse trees when collecting outputs.
    """

    configuration: Configuration
    children: Tup["RunTreeNode", ...] = ()
    valuation: Valuation = field(default=None)  # type: ignore[assignment]

    def __init__(
        self,
        configuration: Configuration,
        children: Sequence["RunTreeNode"] = (),
    ) -> None:
        object.__setattr__(self, "configuration", configuration)
        object.__setattr__(self, "children", tuple(children))
        valuation = configuration.valuation()
        for child in self.children:
            valuation = valuation.product(child.valuation)
        object.__setattr__(self, "valuation", valuation)

    # ------------------------------------------------------------- navigation
    @property
    def state(self) -> State:
        return self.configuration.state

    @property
    def position(self) -> int:
        return self.configuration.position

    @property
    def labels(self) -> FrozenSet[Label]:
        return self.configuration.labels

    def iter_nodes(self) -> Iterator["RunTreeNode"]:
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def leaves(self) -> Iterator["RunTreeNode"]:
        if not self.children:
            yield self
        else:
            for child in self.children:
                yield from child.leaves()

    def node_count(self) -> int:
        return 1 + sum(child.node_count() for child in self.children)

    # -------------------------------------------------------------- properties
    def is_simple(self) -> bool:
        """Whether the run is *simple*: nodes sharing a position have disjoint labels."""
        seen: dict[int, set[Label]] = {}
        for node in self.iter_nodes():
            bucket = seen.setdefault(node.position, set())
            if bucket & node.labels:
                return False
            bucket |= node.labels
        return True

    def canonical_form(self) -> Hashable:
        """A canonical, order-insensitive encoding used to compare runs up to isomorphism."""
        return (
            self.state,
            self.position,
            self.labels,
            frozenset(child.canonical_form() for child in self.children),
        )

    def pretty(self, indent: int = 0) -> str:
        """Indented rendering used by examples and error messages."""
        lines = ["  " * indent + repr(self.configuration)]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"RunTreeNode({self.configuration!r}, {len(self.children)} children)"
