"""Unary and binary predicates over tuples (paper, Section 2, "Predicates").

Two classes of predicates matter algorithmically:

* ``U_lin`` — unary predicates decidable in time linear in ``|t|``; and
* ``B_eq`` — *equality predicates*: binary predicates ``B`` for which there are
  partial key functions ``left_key`` (the paper's ``⃗B`` applied to the earlier
  tuple) and ``right_key`` (applied to the later tuple) such that
  ``(t1, t2) ∈ B`` iff both keys are defined and equal.

The streaming algorithm of Section 5 hashes on these keys, which is what makes
transition firing constant-time; the naive evaluators only need the boolean
``holds`` interface and therefore work with arbitrary binary predicates.

The module also builds the specific predicates used by the Theorem 4.1
construction: ``U_{R(x̄)}`` (tuples homomorphic to an atom), ``B_{S(ȳ),T(z̄)}``
(pairs agreeing on the shared variables), their generalisations to q-tree
variables, and the self-join variants of Lemmas B.3/B.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, Mapping, Optional, Sequence, Tuple as Tup

from repro.cq.query import Atom, Variable, is_variable
from repro.cq.schema import DataValue, Tuple


Key = Hashable


# --------------------------------------------------------------------------- unary
class UnaryPredicate:
    """Base class of unary predicates ``U ⊆ Tuples[σ]``."""

    def holds(self, tup: Tuple) -> bool:
        raise NotImplementedError

    def dispatch_relations(self) -> Optional[FrozenSet[str]]:
        """An over-approximation of the relation names this predicate accepts.

        ``None`` means "unknown / any relation".  The contract is one-sided:
        whenever ``holds(t)`` is true, ``t.relation`` must belong to the
        returned set (when a set is returned at all).  The streaming engine's
        transition dispatch index groups transitions by these keys so that a
        tuple only visits candidate transitions; a predicate that cannot name
        its relations simply lands in the wildcard group and is checked on
        every tuple, preserving correctness.
        """
        return None

    def canonical_key(self) -> Key:
        """A hashable key identifying this predicate's *extension*.

        Two predicates with equal canonical keys must satisfy ``holds(t)`` on
        exactly the same tuples, so the multi-query engine can evaluate one
        representative per key per tuple and share the verdict across every
        query using a structurally identical predicate.  The default is
        identity-based (no sharing beyond the same object), which is always
        sound; structural subclasses override it.
        """
        return ("id", id(self))

    def constant_guard(self) -> Optional[Tup[int, DataValue]]:
        """An optional ``(position, value)`` equality guard implied by ``holds``.

        When a pair is returned, every tuple accepted by the predicate carries
        ``value`` at attribute ``position`` (and has arity ``> position``).
        The dispatch index uses the guard to key candidates by
        ``(relation, guard value)`` so highly selective constant filters prune
        transitions before ``holds`` runs.  ``None`` means no such guard is
        known; returning ``None`` is always sound.
        """
        return None

    def __call__(self, tup: Tuple) -> bool:
        return self.holds(tup)

    # Simple combinators keep the DSL compiler small.
    def __and__(self, other: "UnaryPredicate") -> "UnaryPredicate":
        mine, theirs = self.dispatch_relations(), other.dispatch_relations()
        if mine is None:
            relations = theirs
        elif theirs is None:
            relations = mine
        else:
            relations = mine & theirs
        return LambdaUnaryPredicate(
            lambda tup: self.holds(tup) and other.holds(tup),
            description=f"({self} and {other})",
            relations=relations,
        )

    def __or__(self, other: "UnaryPredicate") -> "UnaryPredicate":
        mine, theirs = self.dispatch_relations(), other.dispatch_relations()
        relations = mine | theirs if mine is not None and theirs is not None else None
        return LambdaUnaryPredicate(
            lambda tup: self.holds(tup) or other.holds(tup),
            description=f"({self} or {other})",
            relations=relations,
        )


@dataclass(frozen=True)
class TruePredicate(UnaryPredicate):
    """The trivial unary predicate containing every tuple."""

    def holds(self, tup: Tuple) -> bool:
        return True

    def canonical_key(self) -> Key:
        return ("true",)

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class RelationPredicate(UnaryPredicate):
    """Tuples of one of the given relation names (the paper's ``T``, ``S``, ``R``)."""

    relations: FrozenSet[str]

    def __init__(self, relations: str | Iterable[str]) -> None:
        if isinstance(relations, str):
            relations = {relations}
        object.__setattr__(self, "relations", frozenset(relations))

    def holds(self, tup: Tuple) -> bool:
        return tup.relation in self.relations

    def dispatch_relations(self) -> Optional[FrozenSet[str]]:
        return self.relations

    def canonical_key(self) -> Key:
        return ("rel", self.relations)

    def __str__(self) -> str:
        return "|".join(sorted(self.relations))


@dataclass(frozen=True)
class AtomUnaryPredicate(UnaryPredicate):
    """``U_{R(x̄)}``: tuples onto which some homomorphism maps the atom.

    Checks relation name, arity, constants, and equality of values at repeated
    variable positions — all in time linear in ``|t|``.
    """

    atom: Atom

    def holds(self, tup: Tuple) -> bool:
        return self.atom.matches(tup)

    def dispatch_relations(self) -> Optional[FrozenSet[str]]:
        return frozenset((self.atom.relation,))

    def canonical_key(self) -> Key:
        return ("atom", self.atom)

    def constant_guard(self) -> Optional[Tup[int, DataValue]]:
        return _atom_constant_guard(self.atom)

    def __str__(self) -> str:
        return f"U[{self.atom}]"


@dataclass(frozen=True)
class SelfJoinUnaryPredicate(UnaryPredicate):
    """``U_A``: tuples that a single homomorphism maps *all* atoms of ``A`` onto.

    Implements Lemma B.3: the atoms of the self-join are unified into a single
    atom ``t_A`` (variables merged into equivalence classes) and the check
    reduces to matching ``t_A``.
    """

    atoms: Tup[Atom, ...]
    unified: Atom

    def __init__(self, atoms: Sequence[Atom]) -> None:
        object.__setattr__(self, "atoms", tuple(atoms))
        object.__setattr__(self, "unified", unify_self_join_atoms(atoms))

    def holds(self, tup: Tuple) -> bool:
        return self.unified.matches(tup)

    def dispatch_relations(self) -> Optional[FrozenSet[str]]:
        # ``unified`` carries an impossible relation name for unsatisfiable
        # self joins; dispatching on it is still a correct over-approximation
        # (the transition simply never becomes a candidate).
        return frozenset((self.unified.relation,))

    def canonical_key(self) -> Key:
        return ("selfjoin", self.unified)

    def constant_guard(self) -> Optional[Tup[int, DataValue]]:
        return _atom_constant_guard(self.unified)

    def __str__(self) -> str:
        return f"U[{' & '.join(str(a) for a in self.atoms)}]"


@dataclass(frozen=True)
class LambdaUnaryPredicate(UnaryPredicate):
    """A unary predicate given by an arbitrary callable (assumed linear time).

    ``relations`` optionally declares the dispatch key (see
    :meth:`UnaryPredicate.dispatch_relations`); without it the predicate is a
    dispatch wildcard, checked on every tuple.
    """

    func: Callable[[Tuple], bool]
    description: str = "λ"
    relations: Optional[FrozenSet[str]] = None

    def holds(self, tup: Tuple) -> bool:
        return bool(self.func(tup))

    def dispatch_relations(self) -> Optional[FrozenSet[str]]:
        return self.relations

    def canonical_key(self) -> Key:
        # Two wrappers around the same callable decide identically.
        return ("lambda", id(self.func))

    def __str__(self) -> str:
        return self.description

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LambdaUnaryPredicate):
            return self.func is other.func
        return NotImplemented

    def __hash__(self) -> int:
        return hash(id(self.func))


@dataclass(frozen=True)
class AttributeFilter(UnaryPredicate):
    """Tuples of ``relation`` whose value at ``position`` satisfies a comparison.

    Supported operators: ``==``, ``!=``, ``<``, ``<=``, ``>``, ``>=``.  Used by
    the CER pattern DSL for local filters (e.g. ``price > 100``).
    """

    relation: str
    position: int
    operator: str
    constant: DataValue

    _OPS = {
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def holds(self, tup: Tuple) -> bool:
        if tup.relation != self.relation or self.position >= tup.arity:
            return False
        try:
            return self._OPS[self.operator](tup.value(self.position), self.constant)
        except TypeError:
            return False

    def dispatch_relations(self) -> Optional[FrozenSet[str]]:
        return frozenset((self.relation,))

    def canonical_key(self) -> Key:
        return ("attr", self.relation, self.position, self.operator, self.constant)

    def constant_guard(self) -> Optional[Tup[int, DataValue]]:
        if self.operator == "==":
            return (self.position, self.constant)
        return None

    def __str__(self) -> str:
        return f"{self.relation}[{self.position}] {self.operator} {self.constant!r}"


def _atom_constant_guard(atom: Atom) -> Optional[Tup[int, DataValue]]:
    """The first ``(position, constant)`` pinned by an atom's constant terms.

    Any tuple matched by the atom carries the constant at that position, so the
    pair satisfies the :meth:`UnaryPredicate.constant_guard` contract.
    """
    for position, term in enumerate(atom.terms):
        if not is_variable(term):
            return (position, term)
    return None


# -------------------------------------------------------------------------- binary
class BinaryPredicate:
    """Base class of binary predicates ``B ⊆ Tuples[σ]^2``.

    ``holds(t1, t2)`` receives the *earlier* tuple first, matching the order in
    which CCEA/PCEA runs compare consecutive tuples.
    """

    def holds(self, first: Tuple, second: Tuple) -> bool:
        raise NotImplementedError

    def __call__(self, first: Tuple, second: Tuple) -> bool:
        return self.holds(first, second)


@dataclass(frozen=True)
class LambdaBinaryPredicate(BinaryPredicate):
    """A binary predicate given by an arbitrary callable (not necessarily in ``B_eq``)."""

    func: Callable[[Tuple, Tuple], bool]
    description: str = "λ2"

    def holds(self, first: Tuple, second: Tuple) -> bool:
        return bool(self.func(first, second))

    def __str__(self) -> str:
        return self.description

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LambdaBinaryPredicate):
            return self.func is other.func
        return NotImplemented

    def __hash__(self) -> int:
        return hash(id(self.func))


class EqualityPredicate(BinaryPredicate):
    """An equality predicate of the class ``B_eq``.

    Subclasses implement :meth:`left_key` (the paper's ``⃗B`` on the earlier
    tuple) and :meth:`right_key` (on the later tuple); ``(t1, t2) ∈ B`` iff both
    keys are defined (not ``None``) and equal.  Keys must be hashable — the
    streaming algorithm indexes its hash table on them.
    """

    def left_key(self, tup: Tuple) -> Optional[Key]:
        raise NotImplementedError

    def right_key(self, tup: Tuple) -> Optional[Key]:
        raise NotImplementedError

    def holds(self, first: Tuple, second: Tuple) -> bool:
        left = self.left_key(first)
        if left is None:
            return False
        right = self.right_key(second)
        if right is None:
            return False
        return left == right


@dataclass(frozen=True)
class TrueEquality(EqualityPredicate):
    """The total binary predicate, presented as an equality predicate.

    Both key functions are defined everywhere and constant, so every pair of
    tuples is related; being in ``B_eq`` it can be used by Algorithm 1 (e.g.
    for pure sequencing steps with no correlation).
    """

    def left_key(self, tup: Tuple) -> Optional[Key]:
        return ()

    def right_key(self, tup: Tuple) -> Optional[Key]:
        return ()

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class ProjectionEquality(EqualityPredicate):
    """Equality of attribute projections, e.g. ``(T x, S x y)``.

    ``left_spec`` and ``right_spec`` map relation names to the attribute
    positions whose values form the key; tuples of other relations are
    undefined for the corresponding side.

    Examples
    --------
    >>> eq = ProjectionEquality({"T": (0,)}, {"S": (0,)})
    >>> eq.holds(Tuple("T", (2,)), Tuple("S", (2, 11)))
    True
    >>> eq.holds(Tuple("T", (3,)), Tuple("S", (2, 11)))
    False
    """

    left_spec: Mapping[str, Tup[int, ...]]
    right_spec: Mapping[str, Tup[int, ...]]

    def __init__(
        self,
        left_spec: Mapping[str, Sequence[int]],
        right_spec: Mapping[str, Sequence[int]],
    ) -> None:
        object.__setattr__(
            self, "left_spec", {rel: tuple(pos) for rel, pos in left_spec.items()}
        )
        object.__setattr__(
            self, "right_spec", {rel: tuple(pos) for rel, pos in right_spec.items()}
        )
        # Key extraction runs once per hash operation in the evaluator's
        # per-tuple loop, so the per-relation arity requirement and the
        # single-position fast path (the overwhelmingly common key shape) are
        # precomputed instead of re-derived with generator expressions.
        object.__setattr__(self, "_left_fast", _projection_fast_table(self.left_spec))
        object.__setattr__(self, "_right_fast", _projection_fast_table(self.right_spec))

    # left_key/right_key are deliberately twin bodies over the two fast
    # tables (a shared helper would put one more call on the evaluator's
    # hottest path); edit both together.
    def left_key(self, tup: Tuple) -> Optional[Key]:
        entry = self._left_fast.get(tup.relation)
        if entry is None:
            return None
        max_position, single, positions = entry
        values = tup.values
        if max_position >= len(values):
            return None
        if single is not None:
            return (values[single],)
        return tuple(values[i] for i in positions)

    def right_key(self, tup: Tuple) -> Optional[Key]:
        entry = self._right_fast.get(tup.relation)
        if entry is None:
            return None
        max_position, single, positions = entry
        values = tup.values
        if max_position >= len(values):
            return None
        if single is not None:
            return (values[single],)
        return tuple(values[i] for i in positions)

    def __str__(self) -> str:
        def fmt(spec: Mapping[str, Tup[int, ...]]) -> str:
            return ",".join(f"{rel}{list(pos)}" for rel, pos in sorted(spec.items()))

        return f"eq({fmt(self.left_spec)} ~ {fmt(self.right_spec)})"

    def __hash__(self) -> int:
        return hash(
            (
                tuple(sorted(self.left_spec.items())),
                tuple(sorted(self.right_spec.items())),
            )
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ProjectionEquality):
            return (
                dict(self.left_spec) == dict(other.left_spec)
                and dict(self.right_spec) == dict(other.right_spec)
            )
        return NotImplemented


def _projection_fast_table(spec: Mapping[str, Tup[int, ...]]):
    """Per-relation ``(max position, single position or None, positions)``.

    ``max position`` turns the per-call arity scan into one comparison;
    ``single`` marks one-attribute keys so they are built with a tuple display
    instead of a generator expression.
    """
    table = {}
    for relation, positions in spec.items():
        max_position = max(positions) if positions else -1
        single = positions[0] if len(positions) == 1 else None
        table[relation] = (max_position, single, positions)
    return table


def _shared_variable_key(atom: Atom, shared: Sequence[Variable], tup: Tuple) -> Optional[Key]:
    """Project ``tup`` (matched against ``atom``) onto the shared variables."""
    if not atom.matches(tup):
        return None
    values = []
    for variable in shared:
        positions = atom.positions_of(variable)
        if not positions:
            # The variable does not occur in this atom: the predicate places
            # no constraint through it; encode with a wildcard component.
            values.append(("*",))
        else:
            values.append(tup.value(positions[0]))
    return tuple(values)


@dataclass(frozen=True)
class AtomJoinEquality(EqualityPredicate):
    """``B_{S(ȳ), T(z̄)}``: pairs of tuples consistent with a single homomorphism.

    The key is the projection onto the variables shared by the two atoms
    (sorted by name).  When the atoms share no variables the key is the empty
    tuple, i.e. every pair of matching tuples is related.
    """

    left_atom: Atom
    right_atom: Atom
    shared: Tup[Variable, ...]

    def __init__(self, left_atom: Atom, right_atom: Atom) -> None:
        object.__setattr__(self, "left_atom", left_atom)
        object.__setattr__(self, "right_atom", right_atom)
        shared = sorted(left_atom.variables() & right_atom.variables(), key=lambda v: v.name)
        object.__setattr__(self, "shared", tuple(shared))

    def left_key(self, tup: Tuple) -> Optional[Key]:
        return _shared_variable_key(self.left_atom, self.shared, tup)

    def right_key(self, tup: Tuple) -> Optional[Key]:
        return _shared_variable_key(self.right_atom, self.shared, tup)

    def __str__(self) -> str:
        return f"B[{self.left_atom} ~ {self.right_atom}]"


@dataclass(frozen=True)
class VariableAtomEquality(EqualityPredicate):
    """``B_{x, S(ȳ)}``: join of the q-tree subtree below ``x`` with atom ``S(ȳ)``.

    The left side accepts any tuple matching one of the atoms hanging below the
    q-tree variable ``x`` (the paper's ``⋃_{i ∈ desc(x)} B_{R_i(x̄_i), S(ȳ)}``).
    Hierarchy guarantees every such atom shares the *same* variable set with
    ``S(ȳ)``, so the union of equality predicates is itself an equality
    predicate; the constructor checks this defensively.
    """

    left_atoms: Tup[Atom, ...]
    right_atom: Atom
    shared: Tup[Variable, ...]

    def __init__(self, left_atoms: Sequence[Atom], right_atom: Atom) -> None:
        if not left_atoms:
            raise ValueError("VariableAtomEquality needs at least one left atom")
        object.__setattr__(self, "left_atoms", tuple(left_atoms))
        object.__setattr__(self, "right_atom", right_atom)
        shared_sets = {
            frozenset(atom.variables() & right_atom.variables()) for atom in left_atoms
        }
        if len(shared_sets) != 1:
            raise ValueError(
                "atoms below a q-tree variable must share the same variables with the "
                f"target atom; got {shared_sets}"
            )
        shared = sorted(next(iter(shared_sets)), key=lambda v: v.name)
        object.__setattr__(self, "shared", tuple(shared))

    def left_key(self, tup: Tuple) -> Optional[Key]:
        for atom in self.left_atoms:
            key = _shared_variable_key(atom, self.shared, tup)
            if key is not None:
                return key
        return None

    def right_key(self, tup: Tuple) -> Optional[Key]:
        return _shared_variable_key(self.right_atom, self.shared, tup)

    def __str__(self) -> str:
        left = "|".join(str(a) for a in self.left_atoms)
        return f"B[({left}) ~ {self.right_atom}]"


@dataclass(frozen=True)
class OrderPredicate(BinaryPredicate):
    """An order (inequality) predicate between attribute projections.

    ``(t1, t2) ∈ B`` iff ``t1`` is a tuple of ``left_relation``, ``t2`` of
    ``right_relation``, and ``t1[left_position] op t2[right_position]`` holds
    for the given comparison operator.  Order predicates are *not* equality
    predicates, so Algorithm 1 does not apply; they are supported by the
    general evaluator of :mod:`repro.extensions.general_evaluation` (the
    paper's Section 6 lists this as an open direction).
    """

    left_relation: str
    left_position: int
    operator: str
    right_relation: str
    right_position: int

    _OPS = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "!=": lambda a, b: a != b,
        "==": lambda a, b: a == b,
    }

    def holds(self, first: Tuple, second: Tuple) -> bool:
        if first.relation != self.left_relation or second.relation != self.right_relation:
            return False
        if self.left_position >= first.arity or self.right_position >= second.arity:
            return False
        try:
            return self._OPS[self.operator](
                first.value(self.left_position), second.value(self.right_position)
            )
        except TypeError:
            return False

    def __str__(self) -> str:
        return (
            f"{self.left_relation}[{self.left_position}] {self.operator} "
            f"{self.right_relation}[{self.right_position}]"
        )


# -------------------------------------------------------------- self-join machinery
def unify_self_join_atoms(atoms: Sequence[Atom]) -> Atom:
    """Compute the unified atom ``t_A`` of Lemma B.3.

    All atoms must share the same relation name and arity.  Attribute positions
    are grouped into equivalence classes: two positions are equivalent when some
    atom carries the same variable at both, and the classes are closed
    transitively across atoms.  The unified atom carries one fresh variable per
    class (or the constant, when a class is pinned by a constant occurring at
    one of its positions).
    """
    atoms = list(atoms)
    if not atoms:
        raise ValueError("cannot unify an empty self join")
    relation = atoms[0].relation
    arity = atoms[0].arity
    for atom in atoms[1:]:
        if atom.relation != relation or atom.arity != arity:
            raise ValueError("self-join atoms must share relation name and arity")

    # Union-find over positions 0..arity-1.
    parent = list(range(arity))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[max(ri, rj)] = min(ri, rj)

    for atom in atoms:
        positions_by_term: Dict[object, list[int]] = {}
        for position, term in enumerate(atom.terms):
            if is_variable(term):
                positions_by_term.setdefault(term, []).append(position)
        for positions in positions_by_term.values():
            for first, second in zip(positions, positions[1:]):
                union(first, second)

    # Also: the same variable occurring in two different atoms at different
    # positions identifies those positions (a single homomorphism must send
    # both occurrences to the same value of the single tuple).
    variable_positions: Dict[Variable, list[int]] = {}
    for atom in atoms:
        for position, term in enumerate(atom.terms):
            if is_variable(term):
                variable_positions.setdefault(term, []).append(position)
    for positions in variable_positions.values():
        for first, second in zip(positions, positions[1:]):
            union(first, second)

    # Constants pin their class.
    constants: Dict[int, DataValue] = {}
    conflict_free = True
    for atom in atoms:
        for position, term in enumerate(atom.terms):
            if not is_variable(term):
                root = find(position)
                if root in constants and constants[root] != term:
                    conflict_free = False
                constants[root] = term
    if not conflict_free:
        # No tuple can satisfy the self join; encode with an unsatisfiable atom
        # using two distinct constants forced equal through a repeated variable
        # is impossible, so we signal with a dedicated impossible relation name.
        return Atom(relation + "#unsat", tuple(Variable(f"_c{i}") for i in range(arity)))

    terms: list = []
    for position in range(arity):
        root = find(position)
        if root in constants:
            terms.append(constants[root])
        else:
            terms.append(Variable(f"_c{root}"))
    return Atom(relation, tuple(terms))


def _group_variables(atoms: Sequence[Atom]) -> FrozenSet[Variable]:
    result: set[Variable] = set()
    for atom in atoms:
        result |= atom.variables()
    return frozenset(result)


def _first_position_of(atoms: Sequence[Atom], variable: Variable) -> Optional[int]:
    """First attribute position where ``variable`` occurs in any atom of the group.

    When the group's tuples match the unified atom, every occurrence of the
    variable carries the same value, so any position works as the projection
    target.
    """
    for atom in atoms:
        positions = atom.positions_of(variable)
        if positions:
            return positions[0]
    return None


@dataclass(frozen=True)
class SelfJoinEquality(EqualityPredicate):
    """``B_{A1, A2}`` of Lemma B.4: consistency of two (self-join) atom groups.

    ``(t1, t2) ∈ B`` iff a single homomorphism maps every atom of ``A1`` onto
    ``t1`` and every atom of ``A2`` onto ``t2``.  The within-group constraints
    are exactly the unified atoms of Lemma B.3; the cross-group constraint is
    equality of the values of the variables shared by the two groups, which is
    the equality key used for hashing.
    """

    left_atoms: Tup[Atom, ...]
    right_atoms: Tup[Atom, ...]
    left_unified: Atom
    right_unified: Atom
    shared: Tup[Variable, ...]

    def __init__(self, left_atoms: Sequence[Atom], right_atoms: Sequence[Atom]) -> None:
        object.__setattr__(self, "left_atoms", tuple(left_atoms))
        object.__setattr__(self, "right_atoms", tuple(right_atoms))
        object.__setattr__(self, "left_unified", unify_self_join_atoms(left_atoms))
        object.__setattr__(self, "right_unified", unify_self_join_atoms(right_atoms))
        shared = sorted(
            _group_variables(left_atoms) & _group_variables(right_atoms),
            key=lambda v: v.name,
        )
        object.__setattr__(self, "shared", tuple(shared))

    def _key(self, atoms: Tup[Atom, ...], unified: Atom, tup: Tuple) -> Optional[Key]:
        if not unified.matches(tup):
            return None
        values = []
        for variable in self.shared:
            position = _first_position_of(atoms, variable)
            if position is None or position >= tup.arity:
                return None
            values.append(tup.value(position))
        return tuple(values)

    def left_key(self, tup: Tuple) -> Optional[Key]:
        return self._key(self.left_atoms, self.left_unified, tup)

    def right_key(self, tup: Tuple) -> Optional[Key]:
        return self._key(self.right_atoms, self.right_unified, tup)

    def __str__(self) -> str:
        left = "&".join(str(a) for a in self.left_atoms)
        right = "&".join(str(a) for a in self.right_atoms)
        return f"B[{left} ~ {right}]"
