"""The enumeration data structure ``DS_w`` of Section 5.

``DS_w`` stores bags of valuations compactly.  Each node carries a label set
``L``, a position ``i``, a list ``prod`` of product children and two union
links ``uleft`` / ``uright``; its semantics is

    ⟦n⟧_prod = {{ν_{L(n), i(n)}}} ⊕ ⨁_{n' ∈ prod(n)} ⟦n'⟧
    ⟦n⟧      = ⟦n⟧_prod ∪ ⟦uleft(n)⟧ ∪ ⟦uright(n)⟧

Each node also stores ``max_start = max{min(ν) | ν ∈ ⟦n⟧_prod}`` and the union
links respect the heap condition (‡): ``max_start(n) ≥ max_start(uleft(n))``
and ``max_start(n) ≥ max_start(uright(n))``.  Together these allow the
enumeration of ``⟦n⟧^w_i`` (the valuations still inside the sliding window) to
skip empty subtrees in constant time, which is what yields output-linear delay
(Theorem 5.2).

Two node-producing operations are provided, mirroring the paper:

* :meth:`DataStructure.extend` — constant time (in the number of product
  children), building a product node;
* :meth:`DataStructure.union` — fully persistent union with logarithmic
  amortised cost (Proposition 5.3), implemented with path copying, direction
  bits for balance, and pruning of subtrees that fell out of the window.

An intentionally naive variant (:class:`LinkedListUnionStructure`) implements
``union`` as a linked list; it exists only for the ablation benchmark
(experiment E8) that shows why the balanced persistent structure matters.

This object-graph representation is the *oracle*: one heap-allocated frozen
dataclass per node, fully persistent, nothing ever reclaimed explicitly.  The
production default is the arena-backed :class:`~repro.core.arena.ArenaDataStructure`
(``arena=True`` on the evaluators), which stores nodes as dense integer ids in
flat per-slab arrays and releases whole expired slabs in O(1) — see
``repro/core/arena.py`` for the slab lifecycle and the external-reference
invariant.  Both structures implement the same surface (``extend`` / ``union``
/ ``enumerate`` / ``expired`` / the validation helpers), plus the small hook
set the evaluators use to stay representation-agnostic: ``max_start_of`` (node
-> ``max_start``, an attribute read here, a slab-array read in the arena) and
the reclamation hooks ``add_ref`` / ``drop_ref`` / ``release_expired``, which
are no-ops here because the object graph relies on Python's GC.  The
validation helpers (:meth:`DataStructure.check_heap_condition`,
:meth:`DataStructure.check_simple`, :meth:`DataStructure.union_depth`) are
iterative: deep union chains (e.g. the linked-list ablation at a few thousand
tuples) must not overflow the interpreter stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple as Tup

from repro.valuation import Valuation


Label = Hashable


@dataclass(frozen=True)
class Node:
    """An immutable node of ``DS_w``.

    Nodes are persistent: operations never mutate existing nodes, they only
    allocate new ones (path copying), so nodes already referenced by the
    algorithm's hash table remain valid forever.
    """

    labels: FrozenSet[Label]
    position: int
    prod: Tup["Node", ...]
    uleft: Optional["Node"]
    uright: Optional["Node"]
    max_start: int
    direction: bool = False  # insertion direction bit used for balancing

    def is_bottom(self) -> bool:
        return self.position < 0 and not self.labels

    def __repr__(self) -> str:
        if self.is_bottom():
            return "⊥"
        labels = ",".join(str(l) for l in sorted(self.labels, key=str))
        return (
            f"Node(pos={self.position}, L={{{labels}}}, prod={len(self.prod)}, "
            f"max_start={self.max_start})"
        )


#: The bottom node ``⊥`` (empty bag of valuations).
BOTTOM = Node(frozenset(), -1, (), None, None, -1)


def product_odometer(base: Valuation, iterators: List[Iterator[Valuation]]) -> Iterator[Valuation]:
    """Cross product over child enumerations, as an iterative odometer.

    Representation-independent core shared by the object and arena ``DS_w``:
    the caller supplies the node's own valuation ``base`` and one enumeration
    iterator per product child.  Each child is enumerated **once**, its
    valuations cached as they are produced, and the accumulated product is
    recomputed only from the digit that changed, so the work between two
    consecutive outputs stays proportional to the output size (the Theorem 5.2
    delay bound) without the allocation storm of the naive recursive product.
    """
    k = len(iterators)
    if k == 1:
        # Fast path: no odometer state needed for the common single-child case.
        for valuation in iterators[0]:
            yield base.product(valuation)
        return
    caches: List[List[Valuation]] = []
    for iterator in iterators:
        first = next(iterator, None)
        if first is None:
            return  # one child is empty -> the whole product is empty
        caches.append([first])
    indices = [0] * k
    # prefixes[i] = base ⊕ caches[0][indices[0]] ⊕ ... ⊕ caches[i][indices[i]]
    prefixes: List[Valuation] = [base] * k
    rebuild_from = 0
    while True:
        acc = base if rebuild_from == 0 else prefixes[rebuild_from - 1]
        for i in range(rebuild_from, k):
            acc = acc.product(caches[i][indices[i]])
            prefixes[i] = acc
        yield acc
        # Advance the odometer (last digit spins fastest), pulling at most
        # one fresh valuation from one child iterator per step.
        i = k - 1
        while i >= 0:
            indices[i] += 1
            if indices[i] < len(caches[i]):
                break
            iterator = iterators[i]
            nxt = next(iterator, None) if iterator is not None else None
            if nxt is not None:
                caches[i].append(nxt)
                break
            iterators[i] = None  # exhausted; keep the cache for replays
            indices[i] = 0
            i -= 1
        else:
            return
        rebuild_from = i


class DataStructure:
    """The data structure ``DS_w`` with window size ``w``.

    Parameters
    ----------
    window:
        The sliding-window size ``w``.  A valuation ``ν`` is *alive* at
        position ``i`` when ``i - min(ν) <= window``.

    Notes
    -----
    The instance counts node allocations and union depths so that the
    benchmarks can report machine-independent operation counts alongside wall
    clock times.
    """

    def __init__(self, window: int) -> None:
        if window < 0:
            raise ValueError("window size must be non-negative")
        self.window = window
        self.nodes_created = 0
        self.union_calls = 0
        self.union_copies = 0

    # ------------------------------------------------------------------ nodes
    def _make_node(
        self,
        labels: FrozenSet[Label],
        position: int,
        prod: Tup[Node, ...],
        uleft: Optional[Node],
        uright: Optional[Node],
        max_start: int,
        direction: bool = False,
    ) -> Node:
        self.nodes_created += 1
        return Node(labels, position, prod, uleft, uright, max_start, direction)

    # Representation-agnostic hooks shared with the arena structure, so
    # callers can stay oblivious to whether nodes are objects or integer ids
    # (the evaluators hoist the reclamation hooks once; ``max_start_of`` is
    # for introspection/tests — the hot loops read the max_start they cache
    # in the hash-table pairs instead).
    def max_start_of(self, node: Node) -> int:
        """``max_start`` of ``node`` (attribute read; array read in the arena)."""
        return node.max_start

    def add_ref(self, node: Node) -> None:
        """No-op: the object graph is reclaimed by Python's GC."""

    def drop_ref(self, node: Node) -> None:
        """No-op counterpart of :meth:`add_ref`."""

    def release_expired(self, position: int) -> int:
        """No-op: nothing to release explicitly (returns 0 slabs released)."""
        return 0

    def memory_stats(self) -> dict:
        """Occupancy counters, shaped like the arena's (zeros where N/A)."""
        return {
            "arena": 0,
            "columnar": 0,
            "slabs": 0,
            "slab_capacity": 0,
            "live_nodes": 0,
            "released_slabs": 0,
            "released_nodes": 0,
            "nodes_created": self.nodes_created,
        }

    def expired(self, node: Node, position: int) -> bool:
        """Whether every valuation of ``⟦node⟧`` is out of the window at ``position``.

        By the heap condition this is equivalent to the product part of the
        node itself being out of the window.
        """
        if node is None or node.is_bottom():
            return True
        return position - node.max_start > self.window

    def extend(
        self,
        labels: Iterable[Label],
        position: int,
        children: Sequence[Node],
        max_start: int | None = None,
    ) -> Node:
        """``extend(L, i, N)``: a fresh node with ``⟦n_e⟧ = {{ν_{L,i}}} ⊕ ⨁_{n∈N} ⟦n⟧``.

        Runs in ``O(|N|)``.  ``max_start`` is ``min(i, min_n max_start(n))``.
        The optional ``max_start`` argument is the arena's engine fast path
        (see :meth:`ArenaDataStructure.extend
        <repro.core.arena.ArenaDataStructure.extend>`); here attribute reads
        are free, so it is accepted for call-surface uniformity and the value
        is recomputed and validated regardless — keeping this structure a
        full oracle for the differential tests.
        """
        labels = frozenset(labels)
        children = tuple(children)
        for child in children:
            if child.is_bottom():
                raise ValueError("product children must not be the bottom node")
            if child.position >= position:
                raise ValueError("product children must have strictly smaller positions")
        max_start = position
        for child in children:
            max_start = min(max_start, child.max_start)
        return self._make_node(labels, position, children, None, None, max_start)

    # ------------------------------------------------------------------ union
    def union(
        self,
        left: Node,
        fresh: Node,
        position: int | None = None,
        fresh_ms: int | None = None,
    ) -> Node:
        """``union(n1, n2)``: a node whose bag is ``⟦n1⟧ ∪ ⟦n2⟧`` (Proposition 5.3).

        Preconditions (checked): ``fresh`` has no union links yet and its
        position is at least the maximum position in ``left``.  The operation
        is fully persistent — neither argument is modified — and costs
        ``O(log(k·w))`` node copies thanks to direction-bit balancing and the
        pruning of expired subtrees.  ``position`` / ``fresh_ms`` are the
        arena's engine fast path (see :meth:`ArenaDataStructure.union
        <repro.core.arena.ArenaDataStructure.union>`); accepted here for
        call-surface uniformity, while the node's own attributes are used
        and validated regardless (oracle behaviour).
        """
        if fresh.uleft is not None or fresh.uright is not None:
            raise ValueError("the second argument of union must be a fresh product node")
        self.union_calls += 1
        return self._union(left, fresh, fresh.position)

    def _union(self, left: Node, fresh: Node, position: int) -> Node:
        if left is None or left.is_bottom():
            return fresh
        if self.expired(left, position):
            # Every valuation below ``left`` is out of the window forever
            # (positions only grow), so the subtree can be dropped.
            return fresh
        self.union_copies += 1
        if fresh.max_start >= left.max_start:
            # The fresh node becomes the new top; heap condition holds because
            # its max_start dominates the whole old tree.
            return self._make_node(
                fresh.labels,
                fresh.position,
                fresh.prod,
                left,
                None,
                fresh.max_start,
                direction=not left.direction,
            )
        # Otherwise keep ``left`` on top and insert below, alternating sides
        # via the direction bit (path copying keeps persistence).
        if left.direction:
            new_child = self._union(left.uleft if left.uleft is not None else BOTTOM, fresh, position)
            return self._make_node(
                left.labels,
                left.position,
                left.prod,
                new_child,
                left.uright,
                left.max_start,
                direction=False,
            )
        new_child = self._union(left.uright if left.uright is not None else BOTTOM, fresh, position)
        return self._make_node(
            left.labels,
            left.position,
            left.prod,
            left.uleft,
            new_child,
            left.max_start,
            direction=True,
        )

    # ------------------------------------------------------------ enumeration
    def enumerate(self, node: Node, position: int) -> Iterator[Valuation]:
        """Enumerate ``⟦node⟧^w_position`` (valuations alive in the window).

        The traversal prunes subtrees whose ``max_start`` certifies emptiness,
        so between two consecutive outputs only work proportional to the size
        of the next output is performed (Theorem 5.2); duplicates cannot occur
        when the structure is simple (which unambiguous PCEA guarantee).
        """
        stack: List[Node] = [node] if node is not None else []
        while stack:
            current = stack.pop()
            if current is None or current.is_bottom() or self.expired(current, position):
                continue
            yield from self._enumerate_prod(current, position)
            if current.uright is not None:
                stack.append(current.uright)
            if current.uleft is not None:
                stack.append(current.uleft)

    def _enumerate_prod(self, node: Node, position: int) -> Iterator[Valuation]:
        if not node.prod:
            if position - node.position <= self.window:
                yield Valuation.singleton(node.labels, node.position)
            return
        yield from self._product_combinations(node, position, windowed=True)

    def _product_combinations(
        self, node: Node, position: int, windowed: bool
    ) -> Iterator[Valuation]:
        """Cross product over the child enumerations (see :func:`product_odometer`).

        The paper presents the product as a recursive generator; implemented
        literally, every prefix combination re-creates (and therefore re-runs)
        the enumerations of all later children, and each output pays a chain
        of suspended generator frames.  The shared odometer avoids both.
        """
        base = Valuation.singleton(node.labels, node.position)
        prod = node.prod
        if windowed:
            iterators = [self.enumerate(child, position) for child in prod]
        else:
            iterators = [self.enumerate_all(child) for child in prod]
        yield from product_odometer(base, iterators)

    def enumerate_all(self, node: Node) -> Iterator[Valuation]:
        """Enumerate ``⟦node⟧`` ignoring the window (used by tests)."""
        stack: List[Node] = [node] if node is not None else []
        while stack:
            current = stack.pop()
            if current is None or current.is_bottom():
                continue
            yield from self._enumerate_prod_all(current)
            if current.uright is not None:
                stack.append(current.uright)
            if current.uleft is not None:
                stack.append(current.uleft)

    def _enumerate_prod_all(self, node: Node) -> Iterator[Valuation]:
        if not node.prod:
            yield Valuation.singleton(node.labels, node.position)
            return
        yield from self._product_combinations(node, position=0, windowed=False)

    # ------------------------------------------------------------- validation
    def check_simple(self, node: Node) -> bool:
        """Whether the bag rooted at ``node`` is *simple* (no overlapping products).

        Exponential in general; used only by tests and the engine's debug
        mode.  Iterative over an explicit worklist: long single-relation
        streams produce union chains as deep as the stream, which the previous
        recursive formulation could not traverse without overflowing the
        interpreter stack.
        """
        worklist: List[Node] = [node] if node is not None else []
        while worklist:
            current = worklist.pop()
            if current is None or current.is_bottom():
                continue
            base = Valuation.singleton(current.labels, current.position)
            partials: List[Valuation] = [base]
            for child in current.prod:
                new_partials: List[Valuation] = []
                for partial in partials:
                    for child_valuation in self.enumerate_all(child):
                        if not partial.simple_with(child_valuation):
                            return False
                        new_partials.append(partial.product(child_valuation))
                partials = new_partials
            worklist.extend(current.prod)
            for link in (current.uleft, current.uright):
                if link is not None:
                    worklist.append(link)
        return True

    def check_heap_condition(self, node: Node) -> bool:
        """Whether condition (‡) holds everywhere below ``node``.

        Iterative for the same reason as :meth:`check_simple`: union chains
        (especially the linked-list ablation's) can be as deep as the stream.
        """
        worklist: List[Node] = [node] if node is not None else []
        while worklist:
            current = worklist.pop()
            if current is None or current.is_bottom():
                continue
            for link in (current.uleft, current.uright):
                if link is not None and not link.is_bottom():
                    if link.max_start > current.max_start:
                        return False
                    worklist.append(link)
            worklist.extend(current.prod)
        return True

    def union_depth(self, node: Node) -> int:
        """Depth of the union tree hanging at ``node`` (benchmark instrumentation)."""
        best = 0
        stack: List[Tup[Node, int]] = [(node, 1)] if node is not None and not node.is_bottom() else []
        while stack:
            current, depth = stack.pop()
            best = max(best, depth)
            for link in (current.uleft, current.uright):
                if link is not None and not link.is_bottom():
                    stack.append((link, depth + 1))
        return best


class LinkedListUnionStructure(DataStructure):
    """Ablation variant: unions form a left-leaning linked list (no balance, no pruning).

    Retains correctness but loses the logarithmic union/enumeration guarantees;
    experiment E8 contrasts the two implementations.
    """

    def _union(self, left: Node, fresh: Node, position: int) -> Node:
        if left is None or left.is_bottom():
            return fresh
        self.union_copies += 1
        return self._make_node(
            fresh.labels,
            fresh.position,
            fresh.prod,
            left,
            None,
            max(fresh.max_start, left.max_start),
        )
