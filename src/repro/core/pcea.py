"""Parallelized Complex Event Automata (paper, Section 3).

A PCEA transition ``(P, U, B, L, q)`` fires on the current tuple when the
unary predicate ``U`` holds and, for every source state ``p ∈ P``, some
previously completed parallel run ending in ``p`` joins with the current tuple
through the binary predicate ``B(p)``.  Transitions with ``P = ∅`` start new
parallel runs (they play the role of the CCEA initial function).

This module provides the model itself, the *naive* reference evaluator that
materialises every run tree (exponential, used as ground truth in tests), and
the unambiguity audit used by both tests and the streaming engine's debug
mode.  The streaming evaluation algorithm with the Theorem 5.1 guarantees is
in :mod:`repro.core.evaluation`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Mapping, Sequence, Set, Tuple as Tup

from repro.core.predicates import BinaryPredicate, EqualityPredicate, UnaryPredicate
from repro.core.runtree import Configuration, RunTreeNode
from repro.cq.schema import Tuple
from repro.valuation import Valuation


State = Hashable
Label = Hashable


@dataclass(frozen=True)
class PCEATransition:
    """A PCEA transition ``(P, U, B, L, q)``.

    Parameters
    ----------
    sources:
        The source state set ``P`` (possibly empty for run-starting transitions).
    unary:
        The unary predicate ``U`` checked on the current tuple.
    binaries:
        The partial function ``B : P -> binary predicates``; must be defined on
        exactly the states of ``sources``.
    labels:
        The non-empty label set ``L`` marking the current position.
    target:
        The target state ``q``.
    """

    sources: FrozenSet[State]
    unary: UnaryPredicate
    binaries: Mapping[State, BinaryPredicate]
    labels: FrozenSet[Label]
    target: State

    def __init__(
        self,
        sources: Iterable[State],
        unary: UnaryPredicate,
        binaries: Mapping[State, BinaryPredicate],
        labels: Iterable[Label],
        target: State,
    ) -> None:
        sources = frozenset(sources)
        labels = frozenset(labels)
        binaries = dict(binaries)
        if not labels:
            raise ValueError("transition label sets must be non-empty")
        if set(binaries) != set(sources):
            raise ValueError(
                f"binary predicates must be defined exactly on the source states; "
                f"sources={set(sources)}, binaries on {set(binaries)}"
            )
        object.__setattr__(self, "sources", sources)
        object.__setattr__(self, "unary", unary)
        object.__setattr__(self, "binaries", binaries)
        object.__setattr__(self, "labels", labels)
        object.__setattr__(self, "target", target)

    @property
    def is_initial(self) -> bool:
        """Whether the transition starts a new parallel run (``P = ∅``)."""
        return not self.sources

    def size(self) -> int:
        """Contribution to ``|P|``: ``|P| + |L|``."""
        return len(self.sources) + len(self.labels)

    def uses_only_equality_predicates(self) -> bool:
        return all(isinstance(b, EqualityPredicate) for b in self.binaries.values())

    def __hash__(self) -> int:
        return hash((self.sources, self.labels, self.target, id(self.unary)))

    def __repr__(self) -> str:
        sources = "{" + ",".join(str(s) for s in sorted(self.sources, key=str)) + "}"
        labels = "{" + ",".join(str(l) for l in sorted(self.labels, key=str)) + "}"
        return f"PCEATransition({sources}, {self.unary}, {labels}, -> {self.target!r})"


class PCEA:
    """A Parallelized Complex Event Automaton ``(Q, U, B, Ω, Δ, F)``.

    Examples
    --------
    The automaton of Example 3.3 (a ``T`` and an ``S`` with equal first
    attribute, joined later by an ``R`` matching both) is built in
    ``examples/quickstart.py`` and in the test suite.
    """

    def __init__(
        self,
        states: Iterable[State],
        transitions: Iterable[PCEATransition],
        final: Iterable[State],
        labels: Iterable[Label] | None = None,
    ) -> None:
        self.states: FrozenSet[State] = frozenset(states)
        self.transitions: Tup[PCEATransition, ...] = tuple(transitions)
        self.final: FrozenSet[State] = frozenset(final)
        inferred: Set[Label] = set()
        for transition in self.transitions:
            inferred |= transition.labels
        self.labels: FrozenSet[Label] = frozenset(labels) if labels is not None else frozenset(inferred)
        self._dispatch_index = None  # built lazily by ``dispatch_index``
        self._validate()

    def _validate(self) -> None:
        if not self.final <= self.states:
            raise ValueError("final states must be states")
        for transition in self.transitions:
            if transition.target not in self.states:
                raise ValueError(f"transition target {transition.target!r} not in states")
            if not transition.sources <= self.states:
                raise ValueError(f"transition sources {set(transition.sources)} not in states")

    # ----------------------------------------------------------------- sizing
    def size(self) -> int:
        """``|P| = |Q| + Σ_{(P,U,B,L,q) ∈ Δ} (|P| + |L|)`` as defined in the paper."""
        return len(self.states) + sum(t.size() for t in self.transitions)

    def uses_only_equality_predicates(self) -> bool:
        """Whether every binary predicate belongs to ``B_eq`` (required by Algorithm 1)."""
        return all(t.uses_only_equality_predicates() for t in self.transitions)

    def initial_transitions(self) -> Iterator[PCEATransition]:
        return (t for t in self.transitions if t.is_initial)

    def dispatch_index(self):
        """The compile-once transition dispatch index (cached on the automaton).

        The HCQ compiler and the pattern compiler call this eagerly so the
        index is paid for at compilation time; the streaming evaluator picks
        it up for free.  See :mod:`repro.core.dispatch`.
        """
        if self._dispatch_index is None:
            from repro.core.dispatch import TransitionDispatchIndex

            self._dispatch_index = TransitionDispatchIndex(self.transitions, final=self.final)
        return self._dispatch_index

    # ----------------------------------------------- naive (reference) semantics
    def run_trees_upto(
        self,
        stream: Sequence[Tuple],
        upto: int,
        max_nodes: int | None = None,
    ) -> Dict[int, List[RunTreeNode]]:
        """Materialise every run tree whose root position is at most ``upto``.

        Returns a mapping ``position -> run-tree roots created at that
        position``.  The number of run trees can be exponential in the stream
        length; ``max_nodes`` guards against runaway blow-up in tests.
        """
        nodes_by_state: Dict[State, List[RunTreeNode]] = {state: [] for state in self.states}
        roots_by_position: Dict[int, List[RunTreeNode]] = {}
        total_nodes = 0
        limit = min(upto + 1, len(stream))
        for position in range(limit):
            tup = stream[position]
            created: List[RunTreeNode] = []
            for transition in self.transitions:
                if not transition.unary.holds(tup):
                    continue
                if transition.is_initial:
                    configuration = Configuration(transition.target, position, transition.labels)
                    created.append(RunTreeNode(configuration))
                    continue
                # For every source state, collect the compatible earlier nodes.
                alternatives: List[List[RunTreeNode]] = []
                feasible = True
                for source in sorted(transition.sources, key=str):
                    binary = transition.binaries[source]
                    compatible = [
                        node
                        for node in nodes_by_state[source]
                        if binary.holds(stream[node.position], tup)
                    ]
                    if not compatible:
                        feasible = False
                        break
                    alternatives.append(compatible)
                if not feasible:
                    continue
                for combination in itertools.product(*alternatives):
                    configuration = Configuration(transition.target, position, transition.labels)
                    created.append(RunTreeNode(configuration, combination))
            for node in created:
                nodes_by_state[node.state].append(node)
            roots_by_position[position] = created
            total_nodes += len(created)
            if max_nodes is not None and total_nodes > max_nodes:
                raise RuntimeError(
                    f"naive PCEA evaluation exceeded {max_nodes} run-tree nodes; "
                    "use the streaming evaluator for long streams"
                )
        return roots_by_position

    def output_at(
        self,
        stream: Sequence[Tuple],
        position: int,
        window: int | None = None,
    ) -> Set[Valuation]:
        """``⟦P⟧_position(S)`` (optionally restricted to a sliding window).

        An accepting run at position ``n`` is a run tree whose root
        configuration has position ``n`` and a final state.
        """
        roots = self.run_trees_upto(stream, position)
        outputs: Set[Valuation] = set()
        for node in roots.get(position, []):
            if node.state in self.final:
                valuation = node.valuation
                if window is None or valuation.within_window(position, window):
                    outputs.add(valuation)
        return outputs

    def outputs_upto(
        self,
        stream: Sequence[Tuple],
        upto: int,
        window: int | None = None,
    ) -> Dict[int, Set[Valuation]]:
        """Outputs at every position ``0..upto`` in a single naive pass."""
        roots = self.run_trees_upto(stream, upto)
        results: Dict[int, Set[Valuation]] = {i: set() for i in range(upto + 1)}
        for position, nodes in roots.items():
            for node in nodes:
                if node.state in self.final:
                    valuation = node.valuation
                    if window is None or valuation.within_window(position, window):
                        results[position].add(valuation)
        return results

    def accepting_runs_at(
        self, stream: Sequence[Tuple], position: int
    ) -> List[RunTreeNode]:
        """The accepting run trees at ``position`` (used by the unambiguity audit)."""
        roots = self.run_trees_upto(stream, position)
        return [node for node in roots.get(position, []) if node.state in self.final]

    def __repr__(self) -> str:
        return (
            f"PCEA(|Q|={len(self.states)}, |Δ|={len(self.transitions)}, "
            f"|F|={len(self.final)}, size={self.size()})"
        )


def check_unambiguous_on_stream(
    pcea: PCEA, stream: Sequence[Tuple], upto: int | None = None
) -> List[str]:
    """Audit the two unambiguity conditions of Section 3 on a concrete stream.

    Returns a list of human-readable violation descriptions (empty when no
    violation was observed).  Unambiguity is a property over *all* streams, so
    this audit can only refute it; the Theorem 4.1 construction guarantees it
    by construction, and the tests combine both.
    """
    if upto is None:
        upto = len(stream) - 1
    violations: List[str] = []
    roots = pcea.run_trees_upto(stream, upto)
    for position in range(min(upto + 1, len(stream))):
        accepting = [n for n in roots.get(position, []) if n.state in pcea.final]
        seen_forms: Set[Hashable] = set()
        by_valuation: Dict[Valuation, List[RunTreeNode]] = {}
        for node in accepting:
            if not node.is_simple():
                violations.append(
                    f"non-simple accepting run at position {position}: {node.pretty()}"
                )
            form = node.canonical_form()
            if form in seen_forms:
                continue
            seen_forms.add(form)
            by_valuation.setdefault(node.valuation, []).append(node)
        for valuation, nodes in by_valuation.items():
            if len(nodes) > 1:
                violations.append(
                    f"{len(nodes)} distinct accepting runs share the valuation {valuation} "
                    f"at position {position}"
                )
    return violations
