/* Native kernel for the columnar arena's stride-5 record hot path.
 *
 * One `Kernel` instance serves one `ArenaDataStructure`: it keeps a flat
 * slot -> slab table over the *same* `array('q')` record buffers and
 * slab-local `prods` lists the Python arena owns (buffers are held through
 * the buffer protocol, so Python-side cold paths — snapshots, validation
 * helpers, introspection — keep reading the very memory this module writes),
 * and implements the four record operations of the hot path natively:
 *
 *   - `extend`: pointer-bump allocation of one packed record;
 *   - `union`: the iterative descend-then-rebuild path copy;
 *   - `release_scan`: the eviction sweep's slab head advance with
 *     external-refcount checks (plus `add_ref`/`drop_ref` themselves);
 *   - `walk`: the pruning enumeration walk over the union tree.
 *
 * The contract with `repro.core.arena` (keep the two sides in sync):
 *
 *   - record layout is `pos, ms, ul, ur, meta` at word offset `index * 5`,
 *     `meta = (prod_ref << 32) | (label_id << 1) | direction`, `prod_ref`
 *     0 for childless nodes and otherwise 1 + an index into the slab's
 *     `prods` list (union copies re-append the shared child tuple into the
 *     target slab's list, exactly as the Python implementation does);
 *   - registered buffers are preallocated to full slab capacity and never
 *     resized while registered (the export holds a buffer, so a resize
 *     attempt would raise `BufferError` — by design);
 *   - slab fill (`count`), `max_ms` and `ext_refs` are canonical *here*
 *     while a kernel is attached; the arena mirrors them back at seal /
 *     snapshot time via `slab_meta`;
 *   - when the current slab fills (or passes its seal deadline) mid
 *     operation, the kernel calls the arena's `request_slab(position)`
 *     callback, which seals, allocates, registers and `set_current`s a
 *     fresh slab, after which the operation continues — so whole union
 *     paths and whole candidate batches run per crossing instead of one
 *     FFI call per record read.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define K_STRIDE 5
#define K_SLOT_BITS 6
#define K_NEVER (-((int64_t)1 << 62))
#define K_META_LOW ((int64_t)0xFFFFFFFFLL)
#define K_META_LABEL_DIRN ((int64_t)0xFFFFFFFELL)
#define K_RECORD_BYTES (8 * K_STRIDE)

/* How many leading released slots accumulate before the slot table is
 * compacted (slabs release strictly in allocation order, so the prefix up
 * to the release cursor is always entirely NULL). */
#define K_COMPACT_THRESHOLD 16384

typedef struct {
    Py_buffer view;   /* exported buffer of the slab's array('q'); holds a ref */
    int64_t *data;
    PyObject *prods;  /* strong ref to the slab-local child-tuple list */
    int64_t base;
    int64_t span;
    int64_t cap;      /* records the buffer can hold */
    int64_t count;
    int64_t max_ms;
    int64_t ext_refs;
} KSlab;

typedef struct {
    PyObject_HEAD
    KSlab **slots;          /* index: slot - floor */
    Py_ssize_t slots_len;   /* allocated entries */
    Py_ssize_t used;        /* entries in use (highest registered rel + 1) */
    int64_t floor;          /* slot id of slots[0] */
    KSlab *cur;             /* allocation target (never released) */
    int64_t seal_deadline;
    int64_t window;
    PyObject *request_slab; /* callable(position) -> None; may be NULL */
    int64_t nodes_created;
    int64_t union_calls;
    int64_t union_copies;
    int64_t allocated;
} KernelObject;

static PyObject *k_empty_tuple;  /* shared () for childless walk emits */

static void
k_free_slab(KSlab *slab)
{
    PyBuffer_Release(&slab->view);
    Py_XDECREF(slab->prods);
    PyMem_Free(slab);
}

static inline KSlab *
k_slab_at_slot(KernelObject *self, int64_t slot)
{
    Py_ssize_t rel = (Py_ssize_t)(slot - self->floor);
    if (rel < 0 || rel >= self->used) {
        return NULL;
    }
    return self->slots[rel];
}

static inline KSlab *
k_slab_for(KernelObject *self, int64_t node)
{
    return k_slab_at_slot(self, node >> K_SLOT_BITS);
}

static int
k_ensure_slots(KernelObject *self, Py_ssize_t rel_end)
{
    Py_ssize_t grown;
    KSlab **table;
    if (rel_end <= self->slots_len) {
        return 0;
    }
    grown = self->slots_len ? self->slots_len : 1024;
    while (grown < rel_end) {
        grown *= 2;
    }
    table = (KSlab **)PyMem_Realloc(self->slots, (size_t)grown * sizeof(KSlab *));
    if (table == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    memset(table + self->slots_len, 0,
           (size_t)(grown - self->slots_len) * sizeof(KSlab *));
    self->slots = table;
    self->slots_len = grown;
    return 0;
}

/* Allocate one record at the current position, invoking the arena's
 * request_slab callback when the current slab is full or past its seal
 * deadline.  Returns the slab written into and sets *rec; NULL on error. */
static KSlab *
k_alloc(KernelObject *self, int64_t position, int64_t **rec)
{
    KSlab *slab = self->cur;
    if (slab == NULL) {
        PyErr_SetString(PyExc_RuntimeError, "kernel has no current slab");
        return NULL;
    }
    if (slab->count >= slab->cap ||
        (slab->count && position > self->seal_deadline)) {
        PyObject *result;
        if (self->request_slab == NULL) {
            PyErr_SetString(PyExc_RuntimeError,
                            "current slab is full and no request_slab "
                            "callback is installed");
            return NULL;
        }
        result = PyObject_CallFunction(self->request_slab, "L",
                                       (long long)position);
        if (result == NULL) {
            return NULL;
        }
        Py_DECREF(result);
        slab = self->cur;
        if (slab == NULL || slab->count >= slab->cap) {
            PyErr_SetString(PyExc_RuntimeError,
                            "request_slab did not install a writable slab");
            return NULL;
        }
    }
    *rec = slab->data + slab->count * K_STRIDE;
    return slab;
}

static inline int64_t
k_as_int64(PyObject *value, int *error)
{
    int64_t result = PyLong_AsLongLong(value);
    if (result == -1 && PyErr_Occurred()) {
        *error = 1;
    }
    return result;
}

/* ------------------------------------------------------------- registry */

static PyObject *
Kernel_register_slab(KernelObject *self, PyObject *args)
{
    long long first_slot, span, base, count, max_ms, ext_refs;
    PyObject *array_obj, *prods;
    KSlab *slab;
    Py_ssize_t rel, j;

    if (!PyArg_ParseTuple(args, "LLLOOLLL", &first_slot, &span, &base,
                          &array_obj, &prods, &count, &max_ms, &ext_refs)) {
        return NULL;
    }
    if (!PyList_Check(prods)) {
        PyErr_SetString(PyExc_TypeError, "prods must be a list");
        return NULL;
    }
    slab = (KSlab *)PyMem_Calloc(1, sizeof(KSlab));
    if (slab == NULL) {
        return PyErr_NoMemory();
    }
    if (PyObject_GetBuffer(array_obj, &slab->view, PyBUF_CONTIG) < 0) {
        PyMem_Free(slab);
        return NULL;
    }
    if (slab->view.len % K_RECORD_BYTES != 0) {
        PyBuffer_Release(&slab->view);
        PyMem_Free(slab);
        PyErr_SetString(PyExc_ValueError,
                        "slab buffer length is not a whole number of "
                        "stride-5 records");
        return NULL;
    }
    slab->data = (int64_t *)slab->view.buf;
    Py_INCREF(prods);
    slab->prods = prods;
    slab->base = base;
    slab->span = span;
    slab->cap = slab->view.len / K_RECORD_BYTES;
    slab->count = count;
    slab->max_ms = max_ms;
    slab->ext_refs = ext_refs;

    if (self->used == 0) {
        self->floor = first_slot;
    }
    rel = (Py_ssize_t)(first_slot - self->floor);
    if (rel < 0) {
        k_free_slab(slab);
        PyErr_SetString(PyExc_ValueError,
                        "slab slot is below the kernel's slot floor");
        return NULL;
    }
    if (k_ensure_slots(self, rel + (Py_ssize_t)span) < 0) {
        k_free_slab(slab);
        return NULL;
    }
    for (j = 0; j < (Py_ssize_t)span; j++) {
        if (self->slots[rel + j] != NULL) {
            k_free_slab(slab);
            PyErr_SetString(PyExc_ValueError, "slot already registered");
            return NULL;
        }
        self->slots[rel + j] = slab;
    }
    if (rel + (Py_ssize_t)span > self->used) {
        self->used = rel + (Py_ssize_t)span;
    }
    Py_RETURN_NONE;
}

static PyObject *
Kernel_set_current(KernelObject *self, PyObject *args)
{
    long long first_slot, seal_deadline;
    KSlab *slab;
    if (!PyArg_ParseTuple(args, "LL", &first_slot, &seal_deadline)) {
        return NULL;
    }
    slab = k_slab_at_slot(self, first_slot);
    if (slab == NULL) {
        PyErr_SetString(PyExc_ValueError, "no slab registered at that slot");
        return NULL;
    }
    self->cur = slab;
    self->seal_deadline = seal_deadline;
    Py_RETURN_NONE;
}

static PyObject *
Kernel_set_request_slab(KernelObject *self, PyObject *callback)
{
    if (callback == Py_None) {
        Py_CLEAR(self->request_slab);
    }
    else {
        Py_INCREF(callback);
        Py_XSETREF(self->request_slab, callback);
    }
    Py_RETURN_NONE;
}

static PyObject *
Kernel_write_sentinel(KernelObject *self, PyObject *Py_UNUSED(ignored))
{
    KSlab *slab = self->cur;
    int64_t *rec;
    if (slab == NULL || slab->cap < 1) {
        PyErr_SetString(PyExc_RuntimeError, "no current slab for the sentinel");
        return NULL;
    }
    rec = slab->data;
    rec[0] = -1;
    rec[1] = K_NEVER;
    rec[2] = 0;
    rec[3] = 0;
    rec[4] = 0;
    slab->count = 1;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------ hot path */

static PyObject *
Kernel_extend(KernelObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    int error = 0;
    int64_t position, max_start, label_id, meta, id;
    PyObject *children;
    KSlab *slab;
    int64_t *rec;
    Py_ssize_t nchildren = 0;

    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "extend expects (position, max_start, label_id, children)");
        return NULL;
    }
    position = k_as_int64(args[0], &error);
    max_start = k_as_int64(args[1], &error);
    label_id = k_as_int64(args[2], &error);
    if (error) {
        return NULL;
    }
    children = args[3];
    if (children != Py_None) {
        nchildren = PySequence_Size(children);
        if (nchildren < 0) {
            return NULL;
        }
    }
    slab = k_alloc(self, position, &rec);
    if (slab == NULL) {
        return NULL;
    }
    meta = label_id << 1;
    if (nchildren > 0) {
        PyObject *tuple = PySequence_Tuple(children);
        if (tuple == NULL) {
            return NULL;
        }
        if (PyList_Append(slab->prods, tuple) < 0) {
            Py_DECREF(tuple);
            return NULL;
        }
        Py_DECREF(tuple);
        meta |= (int64_t)PyList_GET_SIZE(slab->prods) << 32;
    }
    id = slab->base + slab->count;
    rec[0] = position;
    rec[1] = max_start;
    rec[2] = 0;
    rec[3] = 0;
    rec[4] = meta;
    slab->count++;
    if (max_start > slab->max_ms) {
        slab->max_ms = max_start;
    }
    self->nodes_created++;
    self->allocated++;
    return PyLong_FromLongLong(id);
}

typedef struct {
    KSlab *slab;
    int64_t *rec;
    int went_left;
} KFrame;

static PyObject *
Kernel_union(KernelObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    int error = 0;
    int64_t left, fresh, position, fresh_ms;
    KSlab *fresh_slab;
    int64_t *fresh_rec;
    int64_t current, new_id = 0, copies = 0, window;
    KFrame stack_frames[64];
    KFrame *frames = stack_frames;
    Py_ssize_t depth = 0, frames_cap = 64, i;
    PyObject *result = NULL;

    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "union expects (left, fresh, position, fresh_ms)");
        return NULL;
    }
    left = k_as_int64(args[0], &error);
    fresh = k_as_int64(args[1], &error);
    position = k_as_int64(args[2], &error);
    fresh_ms = k_as_int64(args[3], &error);
    if (error) {
        return NULL;
    }
    fresh_slab = fresh ? k_slab_for(self, fresh) : NULL;
    if (fresh_slab == NULL) {
        PyErr_SetString(PyExc_ValueError,
                        "the second argument of union must be a live product node");
        return NULL;
    }
    fresh_rec = fresh_slab->data + (fresh - fresh_slab->base) * K_STRIDE;
    self->union_calls++;
    window = self->window;
    current = left;

    /* Descend: collect the copy path. */
    for (;;) {
        KSlab *slab = current ? k_slab_for(self, current) : NULL;
        int64_t *rec, node_ms;
        if (slab == NULL) {
            new_id = fresh;  /* bottom, or a released (fully expired) slab */
            break;
        }
        rec = slab->data + (current - slab->base) * K_STRIDE;
        node_ms = rec[1];
        if (position - node_ms > window) {
            new_id = fresh;  /* expired subtree: prune */
            break;
        }
        copies++;
        if (fresh_ms >= node_ms) {
            /* Fresh dominates: it becomes the new top, old tree below. */
            KSlab *target;
            int64_t *trec, fresh_meta, meta, ref;
            target = k_alloc(self, position, &trec);
            if (target == NULL) {
                goto fail;
            }
            fresh_meta = fresh_rec[4];
            meta = (fresh_meta & K_META_LABEL_DIRN) | ((rec[4] & 1) ? 0 : 1);
            ref = fresh_meta >> 32;
            if (ref) {
                if (PyList_Append(target->prods,
                                  PyList_GET_ITEM(fresh_slab->prods, ref - 1)) < 0) {
                    goto fail;
                }
                meta = (meta & K_META_LOW) |
                       ((int64_t)PyList_GET_SIZE(target->prods) << 32);
            }
            new_id = target->base + target->count;
            trec[0] = position;
            trec[1] = fresh_ms;
            trec[2] = current;
            trec[3] = 0;
            trec[4] = meta;
            target->count++;
            if (fresh_ms > target->max_ms) {
                target->max_ms = fresh_ms;
            }
            break;
        }
        if (depth >= frames_cap) {
            Py_ssize_t grown_cap = frames_cap * 2;
            if (frames == stack_frames) {
                KFrame *heap = (KFrame *)PyMem_Malloc((size_t)grown_cap * sizeof(KFrame));
                if (heap == NULL) {
                    PyErr_NoMemory();
                    goto fail;
                }
                memcpy(heap, frames, (size_t)depth * sizeof(KFrame));
                frames = heap;
            }
            else {
                KFrame *heap = (KFrame *)PyMem_Realloc(frames, (size_t)grown_cap * sizeof(KFrame));
                if (heap == NULL) {
                    PyErr_NoMemory();
                    goto fail;
                }
                frames = heap;
            }
            frames_cap = grown_cap;
        }
        frames[depth].slab = slab;
        frames[depth].rec = rec;
        if (rec[4] & 1) {
            frames[depth].went_left = 1;
            current = rec[2];
        }
        else {
            frames[depth].went_left = 0;
            current = rec[3];
        }
        depth++;
    }

    /* Rebuild the copied path bottom-up. */
    for (i = depth - 1; i >= 0; i--) {
        KSlab *slab = frames[i].slab;
        int64_t *rec = frames[i].rec;
        KSlab *target;
        int64_t *trec, node_ms, old_meta, meta, ref, ul, ur, dirn;
        target = k_alloc(self, position, &trec);
        if (target == NULL) {
            goto fail;
        }
        node_ms = rec[1];
        old_meta = rec[4];
        if (frames[i].went_left) {
            ul = new_id;
            ur = rec[3];
            dirn = 0;
        }
        else {
            ul = rec[2];
            ur = new_id;
            dirn = 1;
        }
        meta = (old_meta & K_META_LABEL_DIRN) | dirn;
        ref = old_meta >> 32;
        if (ref) {
            if (PyList_Append(target->prods,
                              PyList_GET_ITEM(slab->prods, ref - 1)) < 0) {
                goto fail;
            }
            meta = (meta & K_META_LOW) |
                   ((int64_t)PyList_GET_SIZE(target->prods) << 32);
        }
        new_id = target->base + target->count;
        trec[0] = rec[0];
        trec[1] = node_ms;
        trec[2] = ul;
        trec[3] = ur;
        trec[4] = meta;
        target->count++;
        if (node_ms > target->max_ms) {
            target->max_ms = node_ms;
        }
    }
    if (copies) {
        self->union_copies += copies;
        self->nodes_created += copies;
        self->allocated += copies;
    }
    result = PyLong_FromLongLong(new_id);
fail:
    if (frames != stack_frames) {
        PyMem_Free(frames);
    }
    return result;
}

/* --------------------------------------------------------- reclamation */

static PyObject *
Kernel_add_ref(KernelObject *self, PyObject *arg)
{
    int error = 0;
    int64_t node = k_as_int64(arg, &error);
    KSlab *slab;
    if (error) {
        return NULL;
    }
    slab = k_slab_for(self, node);
    if (slab != NULL) {
        slab->ext_refs++;
    }
    Py_RETURN_NONE;
}

static PyObject *
Kernel_drop_ref(KernelObject *self, PyObject *arg)
{
    int error = 0;
    int64_t node = k_as_int64(arg, &error);
    KSlab *slab;
    if (error) {
        return NULL;
    }
    slab = k_slab_for(self, node);
    if (slab != NULL) {
        slab->ext_refs--;
    }
    Py_RETURN_NONE;
}

static PyObject *
Kernel_release_scan(KernelObject *self, PyObject *args)
{
    long long cursor, position;
    long released = 0;
    if (!PyArg_ParseTuple(args, "LL", &cursor, &position)) {
        return NULL;
    }
    for (;;) {
        KSlab *slab = k_slab_at_slot(self, cursor);
        Py_ssize_t rel, j;
        int64_t span;
        if (slab == NULL || slab == self->cur) {
            break;
        }
        if (position - slab->max_ms <= self->window || slab->ext_refs > 0) {
            break;
        }
        span = slab->span;
        rel = (Py_ssize_t)(cursor - self->floor);
        for (j = 0; j < (Py_ssize_t)span; j++) {
            self->slots[rel + j] = NULL;
        }
        k_free_slab(slab);
        cursor += span;
        released++;
    }
    if (released) {
        /* The prefix below the release cursor is entirely NULL (slabs
         * release strictly in allocation order); shift it out once it is
         * large so the slot table stays O(retained slabs). */
        Py_ssize_t lead = (Py_ssize_t)(cursor - self->floor);
        if (lead >= K_COMPACT_THRESHOLD && lead * 2 >= self->used) {
            memmove(self->slots, self->slots + lead,
                    (size_t)(self->used - lead) * sizeof(KSlab *));
            memset(self->slots + (self->used - lead), 0,
                   (size_t)lead * sizeof(KSlab *));
            self->floor += lead;
            self->used -= lead;
        }
    }
    return PyLong_FromLong(released);
}

/* --------------------------------------------------------- enumeration */

static PyObject *
Kernel_walk(KernelObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    int error = 0;
    int64_t node, position, window;
    int64_t stack_ids[256];
    int64_t *stack = stack_ids;
    Py_ssize_t top = 0, stack_cap = 256;
    PyObject *out;

    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "walk expects (node, position)");
        return NULL;
    }
    node = k_as_int64(args[0], &error);
    position = k_as_int64(args[1], &error);
    if (error) {
        return NULL;
    }
    out = PyList_New(0);
    if (out == NULL) {
        return NULL;
    }
    window = self->window;
    if (node) {
        stack[top++] = node;
    }
    while (top) {
        int64_t current = stack[--top];
        KSlab *slab;
        int64_t *rec, meta, ref;
        PyObject *item = NULL;
        if (!current) {
            continue;
        }
        slab = k_slab_for(self, current);
        if (slab == NULL) {
            continue;
        }
        rec = slab->data + (current - slab->base) * K_STRIDE;
        if (position - rec[1] > window) {
            continue;
        }
        meta = rec[4];
        ref = meta >> 32;
        if (ref) {
            item = Py_BuildValue("(LLO)",
                                 (long long)((meta & K_META_LOW) >> 1),
                                 (long long)rec[0],
                                 PyList_GET_ITEM(slab->prods, ref - 1));
        }
        else if (position - rec[0] <= window) {
            item = Py_BuildValue("(LLO)",
                                 (long long)((meta & K_META_LOW) >> 1),
                                 (long long)rec[0], k_empty_tuple);
        }
        if (item == NULL && PyErr_Occurred()) {
            goto fail;
        }
        if (item != NULL) {
            if (PyList_Append(out, item) < 0) {
                Py_DECREF(item);
                goto fail;
            }
            Py_DECREF(item);
        }
        if (top + 2 > stack_cap) {
            Py_ssize_t grown_cap = stack_cap * 2;
            if (stack == stack_ids) {
                int64_t *heap = (int64_t *)PyMem_Malloc((size_t)grown_cap * sizeof(int64_t));
                if (heap == NULL) {
                    PyErr_NoMemory();
                    goto fail;
                }
                memcpy(heap, stack, (size_t)top * sizeof(int64_t));
                stack = heap;
            }
            else {
                int64_t *heap = (int64_t *)PyMem_Realloc(stack, (size_t)grown_cap * sizeof(int64_t));
                if (heap == NULL) {
                    PyErr_NoMemory();
                    goto fail;
                }
                stack = heap;
            }
            stack_cap = grown_cap;
        }
        if (rec[3]) {
            stack[top++] = rec[3];
        }
        if (rec[2]) {
            stack[top++] = rec[2];
        }
    }
    if (stack != stack_ids) {
        PyMem_Free(stack);
    }
    return out;
fail:
    if (stack != stack_ids) {
        PyMem_Free(stack);
    }
    Py_DECREF(out);
    return NULL;
}

/* ------------------------------------------------------- introspection */

static PyObject *
Kernel_slab_meta(KernelObject *self, PyObject *args)
{
    long long first_slot;
    KSlab *slab;
    if (!PyArg_ParseTuple(args, "L", &first_slot)) {
        return NULL;
    }
    slab = k_slab_at_slot(self, first_slot);
    if (slab == NULL) {
        PyErr_SetString(PyExc_ValueError, "no slab registered at that slot");
        return NULL;
    }
    return Py_BuildValue("(LLL)", (long long)slab->count,
                         (long long)slab->max_ms, (long long)slab->ext_refs);
}

static PyObject *
Kernel_counters(KernelObject *self, PyObject *Py_UNUSED(ignored))
{
    return Py_BuildValue("(LLLL)", (long long)self->nodes_created,
                         (long long)self->union_calls,
                         (long long)self->union_copies,
                         (long long)self->allocated);
}

static PyObject *
Kernel_set_counters(KernelObject *self, PyObject *args)
{
    long long nodes_created, union_calls, union_copies, allocated;
    if (!PyArg_ParseTuple(args, "LLLL", &nodes_created, &union_calls,
                          &union_copies, &allocated)) {
        return NULL;
    }
    self->nodes_created = nodes_created;
    self->union_calls = union_calls;
    self->union_copies = union_copies;
    self->allocated = allocated;
    Py_RETURN_NONE;
}

static PyObject *
Kernel_current_fill(KernelObject *self, PyObject *Py_UNUSED(ignored))
{
    if (self->cur == NULL) {
        return PyLong_FromLong(0);
    }
    return PyLong_FromLongLong(self->cur->count);
}

/* ---------------------------------------------------------- lifecycle */

static void
k_drop_all_slabs(KernelObject *self)
{
    Py_ssize_t rel;
    for (rel = 0; rel < self->used; rel++) {
        KSlab *slab = self->slots[rel];
        if (slab != NULL) {
            Py_ssize_t j;
            for (j = rel; j < self->used; j++) {
                if (self->slots[j] == slab) {
                    self->slots[j] = NULL;
                }
            }
            k_free_slab(slab);
        }
    }
    self->used = 0;
    self->cur = NULL;
}

static PyObject *
Kernel_close(KernelObject *self, PyObject *Py_UNUSED(ignored))
{
    k_drop_all_slabs(self);
    Py_CLEAR(self->request_slab);
    Py_RETURN_NONE;
}

static int
Kernel_traverse(KernelObject *self, visitproc visit, void *arg)
{
    Py_ssize_t rel;
    Py_VISIT(self->request_slab);
    for (rel = 0; rel < self->used; rel++) {
        KSlab *slab = self->slots[rel];
        if (slab != NULL && (rel == 0 || self->slots[rel - 1] != slab)) {
            Py_VISIT(slab->prods);
            Py_VISIT(slab->view.obj);
        }
    }
    return 0;
}

static int
Kernel_clear(KernelObject *self)
{
    k_drop_all_slabs(self);
    Py_CLEAR(self->request_slab);
    return 0;
}

static void
Kernel_dealloc(KernelObject *self)
{
    PyObject_GC_UnTrack(self);
    k_drop_all_slabs(self);
    Py_CLEAR(self->request_slab);
    PyMem_Free(self->slots);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
Kernel_init(KernelObject *self, PyObject *args, PyObject *kwargs)
{
    long long window;
    static char *keywords[] = {"window", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "L", keywords, &window)) {
        return -1;
    }
    self->window = window;
    self->floor = 0;
    self->seal_deadline = ((int64_t)1) << 62;
    return 0;
}

static PyMethodDef Kernel_methods[] = {
    {"register_slab", (PyCFunction)Kernel_register_slab, METH_VARARGS,
     "register_slab(first_slot, span, base, array, prods, count, max_ms, ext_refs)"},
    {"set_current", (PyCFunction)Kernel_set_current, METH_VARARGS,
     "set_current(first_slot, seal_deadline)"},
    {"set_request_slab", (PyCFunction)Kernel_set_request_slab, METH_O,
     "set_request_slab(callable) — invoked with the position when the current slab fills"},
    {"write_sentinel", (PyCFunction)Kernel_write_sentinel, METH_NOARGS,
     "write the bottom-node sentinel record into the current slab"},
    {"extend", (PyCFunction)Kernel_extend, METH_FASTCALL,
     "extend(position, max_start, label_id, children) -> node id"},
    {"union", (PyCFunction)Kernel_union, METH_FASTCALL,
     "union(left, fresh, position, fresh_ms) -> node id"},
    {"add_ref", (PyCFunction)Kernel_add_ref, METH_O, "add_ref(node)"},
    {"drop_ref", (PyCFunction)Kernel_drop_ref, METH_O, "drop_ref(node)"},
    {"release_scan", (PyCFunction)Kernel_release_scan, METH_VARARGS,
     "release_scan(cursor_slot, position) -> slabs released"},
    {"walk", (PyCFunction)Kernel_walk, METH_FASTCALL,
     "walk(node, position) -> [(label_id, position, children), ...]"},
    {"slab_meta", (PyCFunction)Kernel_slab_meta, METH_VARARGS,
     "slab_meta(first_slot) -> (count, max_ms, ext_refs)"},
    {"counters", (PyCFunction)Kernel_counters, METH_NOARGS,
     "counters() -> (nodes_created, union_calls, union_copies, allocated)"},
    {"set_counters", (PyCFunction)Kernel_set_counters, METH_VARARGS,
     "set_counters(nodes_created, union_calls, union_copies, allocated)"},
    {"current_fill", (PyCFunction)Kernel_current_fill, METH_NOARGS,
     "current_fill() -> records in the current slab"},
    {"close", (PyCFunction)Kernel_close, METH_NOARGS,
     "release every buffer and detach from the arena"},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject KernelType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.core._kernel.Kernel",
    .tp_basicsize = sizeof(KernelObject),
    .tp_itemsize = 0,
    .tp_dealloc = (destructor)Kernel_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Native stride-5 record kernel over one arena's slab buffers.",
    .tp_traverse = (traverseproc)Kernel_traverse,
    .tp_clear = (inquiry)Kernel_clear,
    .tp_methods = Kernel_methods,
    .tp_init = (initproc)Kernel_init,
    .tp_new = PyType_GenericNew,
};

static struct PyModuleDef kernelmodule = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.core._kernel",
    .m_doc = "Native kernel backend for the columnar arena hot path.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__kernel(void)
{
    PyObject *module;
    if (PyType_Ready(&KernelType) < 0) {
        return NULL;
    }
    k_empty_tuple = PyTuple_New(0);
    if (k_empty_tuple == NULL) {
        return NULL;
    }
    module = PyModule_Create(&kernelmodule);
    if (module == NULL) {
        return NULL;
    }
    Py_INCREF(&KernelType);
    if (PyModule_AddObject(module, "Kernel", (PyObject *)&KernelType) < 0) {
        Py_DECREF(&KernelType);
        Py_DECREF(module);
        return NULL;
    }
    if (PyModule_AddIntConstant(module, "STRIDE", K_STRIDE) < 0 ||
        PyModule_AddIntConstant(module, "SLOT_BITS", K_SLOT_BITS) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
