"""Kernel backend selection for the columnar arena's record hot path.

The stride-5 record operations of :class:`~repro.core.arena.ArenaDataStructure`
(pointer-bump ``extend``, the union descend-and-rebuild path copy, the eviction
sweep's slab head advance and the enumeration walk) run on one of two
interchangeable *kernels* over the very same slab ``array('q')`` buffers and
slab-local ``prods`` lists:

``python``
    Today's pure-python implementation.  Always available, runs everywhere
    (including PyPy, where the JIT unboxes the reads natively — the CI lane),
    and serves as the differential oracle for the native backend.

``native``
    The optional C extension :mod:`repro.core._kernel` (built by ``setup.py``;
    absent when no toolchain was available at install time).  One ``Kernel``
    instance per arena holds the slab buffers through the buffer protocol and
    executes the four record operations without boxing any element read.
    Requires the columnar layout.

Selection precedence (resolved once per data-structure construction):

1. the explicit ``kernel=`` knob on the engines / the arena (``"auto"``,
   ``"python"`` or ``"native"``; ``"native"`` raises when unavailable or when
   the layout is not columnar — an explicit request must not silently degrade);
2. the :data:`KERNEL_ENV` environment variable (same values; ``"native"``
   falls back to ``python`` for non-columnar arenas, since a process-wide
   preference must not break ablation baselines that construct list-layout
   arenas on purpose — but still raises when the extension is missing);
3. ``auto`` (the default): ``native`` when the extension imported and the
   arena is columnar, else ``python``.

Snapshots are representation-independent: a snapshot taken under either
kernel restores under the other bit-identically (``tests/test_kernel.py``
pins this down).  Verify what a process is actually running with
``backend_info()`` — also surfaced by the CLI ``--stats`` line and
:func:`repro.bench.harness.collect_engine_counters`.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

#: Environment variable overriding the default backend choice.
KERNEL_ENV = "REPRO_KERNEL"

_BACKENDS = ("auto", "python", "native")

try:
    from repro.core import _kernel as _native
except ImportError as exc:  # pragma: no cover - depends on the build
    _native = None
    _IMPORT_ERROR: Optional[str] = str(exc)
else:
    _IMPORT_ERROR = None


def native_available() -> bool:
    """Whether the C extension imported in this process."""
    return _native is not None


def native_module():
    """The imported :mod:`repro.core._kernel` module (``None`` if absent)."""
    return _native


def resolve_kernel(kernel: Optional[str] = None, columnar: bool = True) -> str:
    """Resolve the backend name to run: ``"python"`` or ``"native"``.

    ``kernel`` is the explicit constructor knob; ``None`` defers to the
    :data:`KERNEL_ENV` environment variable and then to auto-detection.  See
    the module docstring for the exact precedence and failure semantics.
    """
    explicit = kernel is not None
    if not explicit:
        kernel = os.environ.get(KERNEL_ENV, "").strip() or "auto"
    if kernel not in _BACKENDS:
        source = "kernel=" if explicit else f"{KERNEL_ENV}="
        raise ValueError(
            f"unknown kernel backend {source}{kernel!r}; expected one of {_BACKENDS}"
        )
    if kernel == "auto":
        return "native" if (_native is not None and columnar) else "python"
    if kernel == "native":
        if _native is None:
            raise ValueError(
                "the native kernel backend is not available in this "
                f"installation ({_IMPORT_ERROR}); build it with "
                "`python setup.py build_ext --inplace` or select "
                "kernel='python'"
            )
        if not columnar:
            if explicit:
                raise ValueError(
                    "the native kernel requires the columnar arena layout "
                    "(columnar=True)"
                )
            return "python"  # process-wide env preference, ablation arena
    return kernel


def backend_info() -> Dict[str, object]:
    """What this process can and would run — the ``--stats`` / CI probe."""
    return {
        "backends": ["python", "native"] if _native is not None else ["python"],
        "default": "native" if _native is not None else "python",
        "native_available": _native is not None,
        "native_module": getattr(_native, "__file__", None),
        "env": os.environ.get(KERNEL_ENV) or None,
        "import_error": _IMPORT_ERROR,
    }
