"""Compile-once transition dispatch index for the streaming evaluator.

Algorithm 1 as written visits *every* transition of the PCEA twice per tuple:
once in FireTransitions (to test the unary predicate) and once in
UpdateIndices (to look for source states that just received new runs).  Both
scans are ``O(|Δ|)`` regardless of how many transitions are actually relevant
to the incoming tuple.  This module precomputes, once per automaton, the
indexes that remove those scans:

* a **candidate index** grouping transitions by the relation names their unary
  predicates can accept (``UnaryPredicate.dispatch_relations``).  Predicates
  that cannot name their relations land in a *wildcard* group that is probed
  for every tuple, so the index is a pure over-approximation — firing
  behaviour is bit-for-bit identical to the full scan, only cheaper.
* a **consumer index** mapping each state ``p`` to the transitions that read
  from ``p`` (i.e. have ``p`` in their source set), so UpdateIndices only
  touches the transitions that can consume the runs created this position.

States are also **interned to dense integer ids** at compile time.  Automaton
states produced by the HCQ / pattern compilers are nested tuples containing
:class:`~repro.cq.query.Variable` objects, whose Python-level dataclass
``__hash__`` would otherwise run on every hot-path dictionary operation; after
interning, every per-tuple key (run-index hash table, new-node buckets,
consumer lookups) is a plain integer.  Each transition additionally carries an
``is_final`` flag so reaching a final state is a boolean check instead of a
set-membership test on a composite state.

The per-transition data (target, labels, join predicates ordered by source) is
flattened into slot-based :class:`CompiledTransition` records so the per-tuple
loop performs no mapping lookups on the transition itself.
"""

from __future__ import annotations

import re
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple as Tup, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pcea builds the index lazily)
    from repro.core.pcea import PCEATransition


State = Hashable


#: Memory addresses inside default/dataclass reprs (``<function f at 0x...>``)
#: are process-local and must not leak into cross-process signatures.
_REPR_ADDRESS = re.compile(r" at 0x[0-9a-fA-F]+")


def join_signature(compiled: "CompiledTransition") -> Tup[Tup[int, str], ...]:
    """The transition's joins as ``(source id, predicate descriptor)`` pairs.

    The descriptor is the predicate's repr with memory addresses stripped —
    the standard binary predicates are dataclasses whose reprs carry their
    full configuration (projection tables, comparison positions), so two
    transitions joining on different positions get different signatures;
    callable-backed predicates degrade to their class name plus description,
    mirroring how :func:`~repro.runtime.snapshot.stable_signature` treats
    id-based unary canonical keys.
    """
    return tuple(
        (source_id, _REPR_ADDRESS.sub("", repr(predicate)))
        for _, source_id, predicate in compiled.joins
    )


def _transition_order(compiled: "CompiledTransition") -> int:
    return compiled.index


def build_guard_buckets(members: Sequence):
    """Split one relation's candidates into unguarded + per-guard-value buckets.

    ``members`` are candidate records exposing a ``guard`` attribute
    (``None`` or ``(position, value)``) — either :class:`CompiledTransition`
    or the multi-query engine's merged entries.  Returns ``None`` when no
    member is guarded (the caller then keeps plain relation dispatch), else
    ``(unguarded, ((position, {value: members}), ...))`` with member order
    preserved inside every bucket.
    """
    if not any(member.guard is not None for member in members):
        return None
    unguarded = tuple(member for member in members if member.guard is None)
    groups: Dict[int, Dict[Hashable, List]] = {}
    for member in members:
        if member.guard is None:
            continue
        position, value = member.guard
        groups.setdefault(position, {}).setdefault(value, []).append(member)
    frozen = tuple(
        (position, {value: tuple(bucket) for value, bucket in by_value.items()})
        for position, by_value in sorted(groups.items())
    )
    return (unguarded, frozen)


def probe_guard_buckets(entry, tup, order_key):
    """Look one tuple up in a :func:`build_guard_buckets` structure.

    Returns the unguarded candidates plus every guarded bucket whose value
    matches the tuple's attribute (guards at positions beyond the tuple's
    arity cannot hold and are skipped), re-sorted by ``order_key`` so the
    result preserves the original candidate order.
    """
    unguarded, groups = entry
    result = list(unguarded)
    arity = tup.arity
    for position, by_value in groups:
        if position < arity:
            matched = by_value.get(tup.value(position))
            if matched:
                result.extend(matched)
    if len(result) > 1:
        result.sort(key=order_key)
    return result


class CompiledTransition:
    """A transition flattened for the per-tuple hot loop.

    ``joins`` fixes an iteration order over ``(source state, source id, binary
    predicate)`` triples so FireTransitions does not re-derive it from the
    transition's mapping on every tuple; ``relations`` is the dispatch key
    (``None`` for wildcards).
    """

    __slots__ = (
        "index",
        "transition",
        "unary",
        "joins",
        "labels",
        "target",
        "target_id",
        "is_final",
        "relations",
        "guard",
        "pred_key",
        "hits",
    )

    def __init__(self, index: int, transition: "PCEATransition") -> None:
        self.index = index
        self.transition = transition
        self.unary = transition.unary
        self.labels = transition.labels
        self.target = transition.target
        self.relations: Optional[frozenset] = transition.unary.dispatch_relations()
        # A ``(position, value)`` equality implied by the unary predicate, so
        # the index can key this transition by its guard value; the canonical
        # key lets the multi-query engine share one ``unary.holds`` verdict
        # across structurally identical predicates.  Both default soundly for
        # predicate objects predating the protocol.
        guard = getattr(transition.unary, "constant_guard", None)
        self.guard: Optional[Tup[int, object]] = guard() if guard is not None else None
        canonical = getattr(transition.unary, "canonical_key", None)
        self.pred_key: Hashable = (
            canonical() if canonical is not None else ("id", id(transition.unary))
        )
        # Filled in by the index: interned ids and the final-state flag.
        self.target_id = -1
        self.is_final = False
        self.joins: Tup[Tup[State, int, object], ...] = ()
        # Adaptive-dispatch hit counter (repro.core.adaptive): bumped when
        # this transition leads a predicate group whose unary held, halved at
        # every flush.  Pure feedback — never read on a correctness path and
        # excluded from signature().
        self.hits = 0

    def __repr__(self) -> str:
        key = "*" if self.relations is None else "|".join(sorted(self.relations))
        final = ", final" if self.is_final else ""
        return f"CompiledTransition(#{self.index}, key={key}, -> {self.target!r}{final})"


class TransitionDispatchIndex:
    """The per-automaton dispatch indexes (built once, read per tuple).

    Parameters
    ----------
    transitions:
        The PCEA transition list, in automaton order (the order determines the
        candidate iteration order and therefore matches the full-scan engine's
        node-creation order exactly).
    indexed:
        With ``False`` the candidate index degenerates to the full transition
        list for every tuple — the seed engine's scan behaviour, kept for
        ablation benchmarks and differential tests.
    final:
        The automaton's final-state set; fired transitions into these states
        carry ``is_final=True`` so the evaluator can collect output nodes
        without hashing composite states.
    guards:
        With ``True`` (the default), candidates carrying a constant equality
        guard (``UnaryPredicate.constant_guard``) are additionally keyed by
        ``(relation, guard value)``; :meth:`candidates_for` then prunes
        guarded transitions whose value does not match the tuple before their
        ``unary.holds`` ever runs.  ``False`` restores pure relation-name
        dispatch (ablation).
    """

    def __init__(
        self,
        transitions: Sequence["PCEATransition"],
        indexed: bool = True,
        final: Iterable[State] = (),
        guards: bool = True,
    ) -> None:
        self.indexed = indexed
        self.guards = guards
        self.final = frozenset(final)
        self.state_ids: Dict[State, int] = {}
        compiled: List[CompiledTransition] = []
        for i, transition in enumerate(transitions):
            c = CompiledTransition(i, transition)
            c.target_id = self._intern(transition.target)
            c.is_final = transition.target in self.final
            c.joins = tuple(
                (source, self._intern(source), transition.binaries[source])
                for source in sorted(transition.sources, key=str)
            )
            compiled.append(c)
        self._all: Tup[CompiledTransition, ...] = tuple(compiled)
        self._wildcard: Tup[CompiledTransition, ...] = tuple(
            c for c in compiled if c.relations is None
        )
        relations: set = set()
        for c in compiled:
            if c.relations is not None:
                relations.update(c.relations)
        # Precompute the merged (wildcard + specific) candidate list per known
        # relation, preserving transition order.  Unknown relations fall back
        # to the wildcard list via ``candidates``.
        self._by_relation: Dict[str, Tup[CompiledTransition, ...]] = {
            relation: tuple(
                c for c in compiled if c.relations is None or relation in c.relations
            )
            for relation in relations
        }
        # Constant-guard index: within a relation whose candidates carry
        # ``(position, value)`` equality guards, bucket those candidates by
        # guard value so a lookup probes ``value(position)`` instead of
        # running every guarded ``unary.holds``.  Relations without any
        # guarded candidate are omitted — ``candidates_for`` then falls back
        # to the plain per-relation list, so the guard index costs nothing
        # where it cannot help.
        self._guarded: Dict[
            str,
            Tup[
                Tup[CompiledTransition, ...],
                Tup[Tup[int, Dict[Hashable, Tup[CompiledTransition, ...]]], ...],
            ],
        ] = {}
        if guards:
            for relation, members in self._by_relation.items():
                buckets = build_guard_buckets(members)
                if buckets is not None:
                    self._guarded[relation] = buckets
        consumers: Dict[int, List[Tup[CompiledTransition, int, object]]] = {}
        for c in compiled:
            for _, source_id, predicate in c.joins:
                consumers.setdefault(source_id, []).append((c, source_id, predicate))
        self._consumers: Dict[int, Tup[Tup[CompiledTransition, int, object], ...]] = {
            source_id: tuple(entries) for source_id, entries in consumers.items()
        }

    def _intern(self, state: State) -> int:
        state_id = self.state_ids.get(state)
        if state_id is None:
            state_id = self.state_ids[state] = len(self.state_ids)
        return state_id

    # ----------------------------------------------------------------- lookups
    def candidates(self, relation: str) -> Tup[CompiledTransition, ...]:
        """Transitions whose unary predicate may accept a tuple of ``relation``."""
        if not self.indexed:
            return self._all
        return self._by_relation.get(relation, self._wildcard)

    def candidates_for(self, tup) -> Sequence[CompiledTransition]:
        """Candidates for a concrete tuple: relation dispatch plus guard pruning.

        A pure refinement of :meth:`candidates`: guarded transitions whose
        guard value differs from the tuple's are dropped (their ``holds`` is
        necessarily false), everything else is returned in transition order so
        firing behaviour matches the unguarded engine exactly.
        """
        if not self.indexed:
            return self._all
        entry = self._guarded.get(tup.relation)
        if entry is None:
            return self._by_relation.get(tup.relation, self._wildcard)
        return probe_guard_buckets(entry, tup, _transition_order)

    def consumers_by_id(self, state_id: int) -> Tup[Tup[CompiledTransition, int, object], ...]:
        """``(compiled transition, source id, binary predicate)`` triples reading the state."""
        return self._consumers.get(state_id, ())

    def consumers(self, state: State) -> Tup[Tup[CompiledTransition, int, object], ...]:
        """Like :meth:`consumers_by_id`, addressed by the original state."""
        state_id = self.state_ids.get(state)
        if state_id is None:
            return ()
        return self._consumers.get(state_id, ())

    def all_transitions(self) -> Tup[CompiledTransition, ...]:
        return self._all

    def build_adaptive(self, config=None):
        """An engine-owned :class:`~repro.core.adaptive.AdaptiveState` over
        this index.

        Each adaptive engine builds its own state (the index itself may be
        shared through ``PCEA.dispatch_index`` caching), so learned plans
        never leak between engines; only the ``hits`` feedback counters live
        on the shared :class:`CompiledTransition` records.
        """
        from repro.core.adaptive import AdaptiveState

        return AdaptiveState(self, _transition_order, config)

    # ------------------------------------------------------------ introspection
    def __len__(self) -> int:
        return len(self._all)

    def signature(self) -> Dict[str, object]:
        """A canonical structural summary of the compiled automaton.

        The single-engine counterpart of
        :meth:`~repro.multi.merged_index.MergedDispatchIndex.signature`: two
        indexes compiled from the same transition list and final-state set
        have equal signatures.  The snapshot protocol stores it (run through
        :func:`~repro.runtime.snapshot.stable_signature`) so a checkpoint
        can only be restored into an engine evaluating the same query —
        including the *binary* join predicates, via
        :func:`join_signature` (two automata differing only in a join
        position must not verify as equal).
        """
        return {
            "transitions": tuple(
                (
                    c.index,
                    c.pred_key,
                    None if c.relations is None else tuple(sorted(c.relations)),
                    join_signature(c),
                    c.target_id,
                    c.is_final,
                    tuple(sorted(c.labels, key=repr)),
                )
                for c in self._all
            ),
            "finals": tuple(sorted((repr(state) for state in self.final))),
            "indexed": self.indexed,
        }

    def describe(self) -> Dict[str, float]:
        """Summary statistics for benchmark / CLI reporting.

        The key set matches ``MergedDispatchIndex.describe`` (``queries`` is
        always 1 here; ``predicate_groups`` count distinct canonical unary
        keys within the automaton) so the CLI ``--stats`` dispatch line is
        identical across engine modes.
        """
        sizes = [len(candidates) for candidates in self._by_relation.values()]
        guarded = sum(1 for c in self._all if c.guard is not None)
        guard_values = sum(
            len(by_value)
            for _, groups in self._guarded.values()
            for _, by_value in groups
        )
        key_counts: Dict[Hashable, int] = {}
        for c in self._all:
            key_counts[c.pred_key] = key_counts.get(c.pred_key, 0) + 1
        return {
            "queries": 1.0,
            "transitions": float(len(self._all)),
            "predicate_groups": float(len(key_counts)),
            "shared_predicate_groups": float(
                sum(1 for count in key_counts.values() if count > 1)
            ),
            "relations": float(len(self._by_relation)),
            "wildcard_transitions": float(len(self._wildcard)),
            "max_candidates": float(max(sizes, default=len(self._wildcard))),
            "mean_candidates": float(sum(sizes) / len(sizes)) if sizes else float(len(self._wildcard)),
            "guarded_transitions": float(guarded if self.guards else 0),
            "guard_values": float(guard_values),
            # A single-automaton index is built once and never patched; the
            # keys exist so the merged index's describe() stays key-identical.
            "patched_adds": 0.0,
            "patched_removes": 0.0,
        }

    def relation_fanout(self) -> Dict[str, int]:
        """Per-relation candidate-list sizes (``"*"`` = wildcard fallback).

        The fan-out a tuple of each relation scans — sampled over time (the
        observability gauges) this is the per-bucket hit-rate series the
        adaptive-dispatch roadmap item needs.
        """
        fanout = {
            relation: len(members) for relation, members in self._by_relation.items()
        }
        fanout["*"] = len(self._wildcard)
        return fanout

    def __repr__(self) -> str:
        info = self.describe()
        return (
            f"TransitionDispatchIndex(|Δ|={int(info['transitions'])}, "
            f"relations={int(info['relations'])}, "
            f"wildcards={int(info['wildcard_transitions'])})"
        )
