"""Compile-once transition dispatch index for the streaming evaluator.

Algorithm 1 as written visits *every* transition of the PCEA twice per tuple:
once in FireTransitions (to test the unary predicate) and once in
UpdateIndices (to look for source states that just received new runs).  Both
scans are ``O(|Δ|)`` regardless of how many transitions are actually relevant
to the incoming tuple.  This module precomputes, once per automaton, the
indexes that remove those scans:

* a **candidate index** grouping transitions by the relation names their unary
  predicates can accept (``UnaryPredicate.dispatch_relations``).  Predicates
  that cannot name their relations land in a *wildcard* group that is probed
  for every tuple, so the index is a pure over-approximation — firing
  behaviour is bit-for-bit identical to the full scan, only cheaper.
* a **consumer index** mapping each state ``p`` to the transitions that read
  from ``p`` (i.e. have ``p`` in their source set), so UpdateIndices only
  touches the transitions that can consume the runs created this position.

States are also **interned to dense integer ids** at compile time.  Automaton
states produced by the HCQ / pattern compilers are nested tuples containing
:class:`~repro.cq.query.Variable` objects, whose Python-level dataclass
``__hash__`` would otherwise run on every hot-path dictionary operation; after
interning, every per-tuple key (run-index hash table, new-node buckets,
consumer lookups) is a plain integer.  Each transition additionally carries an
``is_final`` flag so reaching a final state is a boolean check instead of a
set-membership test on a composite state.

The per-transition data (target, labels, join predicates ordered by source) is
flattened into slot-based :class:`CompiledTransition` records so the per-tuple
loop performs no mapping lookups on the transition itself.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple as Tup, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pcea builds the index lazily)
    from repro.core.pcea import PCEATransition


State = Hashable


class CompiledTransition:
    """A transition flattened for the per-tuple hot loop.

    ``joins`` fixes an iteration order over ``(source state, source id, binary
    predicate)`` triples so FireTransitions does not re-derive it from the
    transition's mapping on every tuple; ``relations`` is the dispatch key
    (``None`` for wildcards).
    """

    __slots__ = (
        "index",
        "transition",
        "unary",
        "joins",
        "labels",
        "target",
        "target_id",
        "is_final",
        "relations",
    )

    def __init__(self, index: int, transition: "PCEATransition") -> None:
        self.index = index
        self.transition = transition
        self.unary = transition.unary
        self.labels = transition.labels
        self.target = transition.target
        self.relations: Optional[frozenset] = transition.unary.dispatch_relations()
        # Filled in by the index: interned ids and the final-state flag.
        self.target_id = -1
        self.is_final = False
        self.joins: Tup[Tup[State, int, object], ...] = ()

    def __repr__(self) -> str:
        key = "*" if self.relations is None else "|".join(sorted(self.relations))
        final = ", final" if self.is_final else ""
        return f"CompiledTransition(#{self.index}, key={key}, -> {self.target!r}{final})"


class TransitionDispatchIndex:
    """The per-automaton dispatch indexes (built once, read per tuple).

    Parameters
    ----------
    transitions:
        The PCEA transition list, in automaton order (the order determines the
        candidate iteration order and therefore matches the full-scan engine's
        node-creation order exactly).
    indexed:
        With ``False`` the candidate index degenerates to the full transition
        list for every tuple — the seed engine's scan behaviour, kept for
        ablation benchmarks and differential tests.
    final:
        The automaton's final-state set; fired transitions into these states
        carry ``is_final=True`` so the evaluator can collect output nodes
        without hashing composite states.
    """

    def __init__(
        self,
        transitions: Sequence["PCEATransition"],
        indexed: bool = True,
        final: Iterable[State] = (),
    ) -> None:
        self.indexed = indexed
        self.final = frozenset(final)
        self.state_ids: Dict[State, int] = {}
        compiled: List[CompiledTransition] = []
        for i, transition in enumerate(transitions):
            c = CompiledTransition(i, transition)
            c.target_id = self._intern(transition.target)
            c.is_final = transition.target in self.final
            c.joins = tuple(
                (source, self._intern(source), transition.binaries[source])
                for source in sorted(transition.sources, key=str)
            )
            compiled.append(c)
        self._all: Tup[CompiledTransition, ...] = tuple(compiled)
        self._wildcard: Tup[CompiledTransition, ...] = tuple(
            c for c in compiled if c.relations is None
        )
        relations: set = set()
        for c in compiled:
            if c.relations is not None:
                relations.update(c.relations)
        # Precompute the merged (wildcard + specific) candidate list per known
        # relation, preserving transition order.  Unknown relations fall back
        # to the wildcard list via ``candidates``.
        self._by_relation: Dict[str, Tup[CompiledTransition, ...]] = {
            relation: tuple(
                c for c in compiled if c.relations is None or relation in c.relations
            )
            for relation in relations
        }
        consumers: Dict[int, List[Tup[CompiledTransition, int, object]]] = {}
        for c in compiled:
            for _, source_id, predicate in c.joins:
                consumers.setdefault(source_id, []).append((c, source_id, predicate))
        self._consumers: Dict[int, Tup[Tup[CompiledTransition, int, object], ...]] = {
            source_id: tuple(entries) for source_id, entries in consumers.items()
        }

    def _intern(self, state: State) -> int:
        state_id = self.state_ids.get(state)
        if state_id is None:
            state_id = self.state_ids[state] = len(self.state_ids)
        return state_id

    # ----------------------------------------------------------------- lookups
    def candidates(self, relation: str) -> Tup[CompiledTransition, ...]:
        """Transitions whose unary predicate may accept a tuple of ``relation``."""
        if not self.indexed:
            return self._all
        return self._by_relation.get(relation, self._wildcard)

    def consumers_by_id(self, state_id: int) -> Tup[Tup[CompiledTransition, int, object], ...]:
        """``(compiled transition, source id, binary predicate)`` triples reading the state."""
        return self._consumers.get(state_id, ())

    def consumers(self, state: State) -> Tup[Tup[CompiledTransition, int, object], ...]:
        """Like :meth:`consumers_by_id`, addressed by the original state."""
        state_id = self.state_ids.get(state)
        if state_id is None:
            return ()
        return self._consumers.get(state_id, ())

    def all_transitions(self) -> Tup[CompiledTransition, ...]:
        return self._all

    # ------------------------------------------------------------ introspection
    def __len__(self) -> int:
        return len(self._all)

    def describe(self) -> Dict[str, float]:
        """Summary statistics for benchmark / CLI reporting."""
        sizes = [len(candidates) for candidates in self._by_relation.values()]
        return {
            "transitions": float(len(self._all)),
            "relations": float(len(self._by_relation)),
            "wildcard_transitions": float(len(self._wildcard)),
            "max_candidates": float(max(sizes, default=len(self._wildcard))),
            "mean_candidates": float(sum(sizes) / len(sizes)) if sizes else float(len(self._wildcard)),
        }

    def __repr__(self) -> str:
        info = self.describe()
        return (
            f"TransitionDispatchIndex(|Δ|={int(info['transitions'])}, "
            f"relations={int(info['relations'])}, "
            f"wildcards={int(info['wildcard_transitions'])})"
        )
