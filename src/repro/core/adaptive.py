"""Adaptive selectivity-driven dispatch (ROADMAP item 3).

The dispatch indexes fix candidate order at compile time; this module
closes the feedback loop.  An engine that opts in owns one
:class:`AdaptiveState` built over its dispatch index.  Per tuple the
state hands the fire loop an :class:`EvalPlan` — the relation's
candidates pre-grouped by canonical predicate key — or ``None``, in
which case the engine runs its classic candidate loop unchanged.

What adaptation can and cannot do
---------------------------------
Everything here is a **pure evaluation-order optimisation**.  A plan
contains exactly the member set the static path would have scanned for
the same tuple; the fire loops evaluate each predicate group's unary
once (sound: equal canonical keys mean identical extensions — the same
argument that justifies the multi engine's verdict memo) and apply the
fired effects in canonical candidate order, so node ids, match output
and operation counters are bit-identical to static dispatch.  Runtime
observations steer *which sound structure is used when*; an observed
verdict is never generalised into pruning — only declared
``constant_guard()`` structure may prune, exactly as in the static
guard buckets.

The three mechanisms:

* **Group sharing** — relations where several candidates share a
  predicate key get a standing plan; one unary evaluation covers the
  whole group and a miss skips every member.
* **Reordering** — at each flush, groups inside a plan are re-sorted
  most-selective-first (fewest observed hits first, canonical order as
  the tie-break).  Order never changes what fires, only the scan order.
* **Hot-guard promotion** — for relations with constant-guard buckets,
  the fallback path counts observed guard values; when a value's share
  of the traffic concentrates past ``promote_threshold`` the flush
  synthesizes the per-value plan PR 2 would have built statically
  (unguarded members + that value's bucket, canonical order,
  pre-grouped).  Promoted values bypass the per-tuple bucket probe
  (list build + sort) entirely; values that go cold are demoted, which
  is what tracks mid-stream drift.

Cost model
----------
The per-tuple path gains one dict probe plus at most one counter
increment: ``plan.probes`` on the plan path, one ``value_counts``
bump on the guarded fallback path.  Per-group hit counters ride on the
``hits`` slot of the group's first member (:class:`CompiledTransition`
/ :class:`MergedEntry`) and are only touched when a group actually
holds.  Counters saturate by decay: every flush halves them, so they
stay bounded by a couple of flush intervals (an explicit cap is applied
at flush as a backstop).  Flushes run on the eviction-sweep cadence —
the steady-state sweep pays one integer compare, mirroring the slab
release pass.

Snapshot policy
---------------
Learned state is **deterministically reset on restore** (plans back to
canonical order, all promotions dropped, counters cleared).  This is
observable only through the adaptive activity counters: plans never
change outputs, and the fire loops emulate static operation counting,
so a restored engine's matches and ``EngineStatistics`` are
bit-identical to an uninterrupted run — and snapshots stay fully
interchangeable between adaptive and static engines.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple as Tup

__all__ = [
    "AdaptiveConfig",
    "AdaptiveState",
    "DEFAULT_ADAPTIVE_CONFIG",
    "EvalGroup",
    "EvalPlan",
    "resolve_config",
]


class AdaptiveConfig:
    """Tuning knobs for the feedback loop.

    ``interval``
        Stream positions between counter flushes (reorder + promotion
        passes).  Checked by the runtime sweep, so one flush costs one
        integer compare per position in steady state.
    ``min_probes``
        Observations a relation must accumulate before its counters are
        acted on (and decayed) — keeps cold relations from thrashing.
    ``promote_threshold``
        Fraction of a guarded relation's observed traffic a single
        guard value must reach to be promoted to a standing plan.
    ``max_promoted``
        Cap on simultaneously promoted values per relation.
    ``saturation``
        Hard ceiling applied to hit counters at flush before the decay
        halving (decay alone already bounds them in steady state).
    """

    __slots__ = ("interval", "min_probes", "promote_threshold", "max_promoted", "saturation")

    def __init__(
        self,
        interval: int = 512,
        min_probes: int = 64,
        promote_threshold: float = 0.10,
        max_promoted: int = 8,
        saturation: int = 1 << 20,
    ) -> None:
        if interval < 1:
            raise ValueError("adaptive interval must be >= 1")
        if min_probes < 1:
            raise ValueError("adaptive min_probes must be >= 1")
        if not 0.0 < promote_threshold <= 1.0:
            raise ValueError("adaptive promote_threshold must be in (0, 1]")
        if max_promoted < 0:
            raise ValueError("adaptive max_promoted must be >= 0")
        self.interval = interval
        self.min_probes = min_probes
        self.promote_threshold = promote_threshold
        self.max_promoted = max_promoted
        self.saturation = saturation


DEFAULT_ADAPTIVE_CONFIG = AdaptiveConfig()


def resolve_config(adaptive: Any) -> Optional[AdaptiveConfig]:
    """Map an engine's ``adaptive=`` knob to a config (``None`` = off).

    Accepts ``True``/``False`` or an explicit :class:`AdaptiveConfig`
    (handy in tests that want a short flush interval).
    """
    if isinstance(adaptive, AdaptiveConfig):
        return adaptive
    return DEFAULT_ADAPTIVE_CONFIG if adaptive else None


class EvalGroup:
    """One predicate group of a plan: members sharing a canonical key.

    ``rep`` is the first member in canonical order; its ``hits`` slot is
    the group's hit counter (incremented by the fire loop only when the
    group's unary holds).  ``order`` is the canonical rank used as the
    reorder tie-break, so equal-hit groups keep a deterministic order.
    """

    __slots__ = ("pred_key", "unary", "members", "rep", "order")

    def __init__(self, pred_key: Any, unary: Any, members: Tup[Any, ...], order: int) -> None:
        self.pred_key = pred_key
        self.unary = unary
        self.members = members
        self.rep = members[0]
        self.order = order


class EvalPlan:
    """A relation's (or promoted value's) pre-grouped candidate list.

    ``groups`` is mutated in place by flush reordering; ``total`` is the
    member count across groups (the static path's scan count, used to
    emulate static operation counters in one bulk add).
    """

    __slots__ = ("groups", "probes", "total")

    def __init__(self, groups: List[EvalGroup], total: int) -> None:
        self.groups = groups
        self.probes = 0
        self.total = total


def _build_plan(members: List[Any], order_key: Callable[[Any], int]) -> EvalPlan:
    """Group canonically-ordered members by predicate key."""
    grouped: Dict[Any, List[Any]] = {}
    for member in members:
        bucket = grouped.get(member.pred_key)
        if bucket is None:
            grouped[member.pred_key] = [member]
        else:
            bucket.append(member)
    groups = [
        EvalGroup(pred_key, bucket[0].unary, tuple(bucket), order_key(bucket[0]))
        for pred_key, bucket in grouped.items()
    ]
    total = len(members)
    return EvalPlan(groups, total)


def _group_rank(group: EvalGroup) -> Tup[int, int]:
    # Most-selective-first: fewest observed hits, canonical order tie-break.
    return (group.rep.hits, group.order)


class _RelationAdapter:
    """Per-relation feedback state.

    Two shapes share the class (one attribute test on the hot path):

    * ``guard_position is None`` — plain tracked relation with one
      standing ``plan`` (built only when some group has >= 2 members,
      so singleton-group relations stay on the zero-overhead classic
      path).
    * ``guard_position`` set — guarded relation; ``hot`` maps promoted
      guard values to standing plans, ``value_counts`` tallies the
      fallback traffic the promotion pass ranks.
    """

    __slots__ = (
        "relation",
        "order_key",
        "plan",
        "guard_position",
        "by_value",
        "unguarded",
        "hot",
        "value_counts",
        "barren",
        "hopeless",
    )

    def __init__(self, relation: str, order_key: Callable[[Any], int]) -> None:
        self.relation = relation
        self.order_key = order_key
        self.plan: Optional[EvalPlan] = None
        self.guard_position: Optional[int] = None
        self.by_value: Dict[Any, Tup[Any, ...]] = {}
        self.unguarded: Tup[Any, ...] = ()
        self.hot: Dict[Any, EvalPlan] = {}
        self.value_counts: Dict[Any, int] = {}
        # Consecutive fruitless promotion passes / the resulting sleep
        # request (see AdaptiveState.flush dormancy handling).
        self.barren = 0
        self.hopeless = False

    # ------------------------------------------------------------- flushing
    def _reorder(self, plan: EvalPlan, reps: Dict[int, Any]) -> int:
        groups = plan.groups
        changed = 0
        if len(groups) > 1:
            before = list(groups)
            groups.sort(key=_group_rank)
            if groups != before:
                changed = 1
        for group in groups:
            rep = group.rep
            reps[id(rep)] = rep
        plan.probes >>= 1
        return changed

    def _flush_plain(self, config: AdaptiveConfig, reps: Dict[int, Any]) -> Tup[int, int, int]:
        plan = self.plan
        if plan is None or plan.probes < config.min_probes:
            return (0, 0, 0)
        return (self._reorder(plan, reps), 0, 0)

    def _flush_guarded(self, config: AdaptiveConfig, reps: Dict[int, Any]) -> Tup[int, int, int]:
        counts = self.value_counts
        hot = self.hot
        for value, plan in hot.items():
            counts[value] = counts.get(value, 0) + plan.probes
        total = sum(counts.values())
        if total < config.min_probes:
            return (0, 0, 0)
        threshold = total * config.promote_threshold
        ranked = sorted(
            ((count, repr(value), value) for value, count in counts.items() if count >= threshold),
            key=lambda item: (-item[0], item[1]),
        )
        wanted = {item[2] for item in ranked[: config.max_promoted]}
        promotions = demotions = reorders = 0
        for value in [v for v in hot if v not in wanted]:
            del hot[value]
            demotions += 1
        for value in wanted:
            if value not in hot:
                hot[value] = self._value_plan(value)
                promotions += 1
        for plan in hot.values():
            reorders += self._reorder(plan, reps)
        # Enough traffic observed, nothing concentrated: request dormancy
        # so the per-tuple counting stops costing anything on workloads
        # (uniform value distributions) that will never promote.
        if hot:
            self.barren = 0
            self.hopeless = False
        else:
            self.barren += 1
            self.hopeless = True
        for value in list(counts):
            half = counts[value] >> 1
            if half:
                counts[value] = half
            else:
                del counts[value]
        return (reorders, promotions, demotions)

    def flush(self, config: AdaptiveConfig, reps: Dict[int, Any]) -> Tup[int, int, int]:
        if self.guard_position is None:
            return self._flush_plain(config, reps)
        return self._flush_guarded(config, reps)

    def _value_plan(self, value: Any) -> EvalPlan:
        members = list(self.unguarded)
        bucket = self.by_value.get(value)
        if bucket:
            members.extend(bucket)
        members.sort(key=self.order_key)
        return _build_plan(members, self.order_key)

    # ---------------------------------------------------------- introspection
    def promoted(self) -> int:
        return len(self.hot)

    def selectivity(self) -> float:
        """Observed fraction of group evaluations that held (0 when cold).

        Hit and probe counters decay on the same cadence, so the ratio is
        stable across flushes; it is a gauge, not part of any
        bit-identity contract.
        """
        plans = [self.plan] if self.plan is not None else list(self.hot.values())
        evaluations = 0
        hits = 0
        for plan in plans:
            if plan is None or plan.probes == 0:
                continue
            evaluations += plan.probes * len(plan.groups)
            hits += sum(group.rep.hits for group in plan.groups)
        if evaluations == 0:
            return 0.0
        return min(1.0, hits / evaluations)


class AdaptiveState:
    """Engine-owned feedback state over one dispatch index.

    Built by ``TransitionDispatchIndex.build_adaptive`` /
    ``MergedDispatchIndex.build_adaptive``; the index stays the source
    of truth for structure (plans are derived views), so a structural
    patch only needs :meth:`rebuild_relation` for the touched relations
    — the merged index calls it from its per-relation refresh, which
    keeps adaptation rebuilds as localized as PR 4's bucket patches.
    Learning for a refreshed relation restarts from the canonical
    order; everything untouched keeps its counters and plans.
    """

    __slots__ = (
        "config",
        "order_key",
        "_index",
        "_relations",
        "_dormant",
        "flushes",
        "reorders",
        "promotions",
        "demotions",
    )

    #: Longest dormancy, in flush intervals (the back-off doubles up to this).
    MAX_DORMANT_FLUSHES = 64

    def __init__(self, index: Any, order_key: Callable[[Any], int], config: Optional[AdaptiveConfig] = None) -> None:
        self.config = config if config is not None else DEFAULT_ADAPTIVE_CONFIG
        self.order_key = order_key
        self._index = index
        self._relations: Dict[str, _RelationAdapter] = {}
        # relation -> (sleeping adapter, flush count to wake at).  Dormant
        # relations are absent from _relations, so their per-tuple cost is
        # one dict miss — identical to untracked.  Guarded adapters go
        # dormant with exponential back-off when enough traffic was
        # observed but no value concentrated (a uniform distribution will
        # never promote); waking re-observes one interval, so a later
        # drift to skew is still picked up.
        self._dormant: Dict[str, Tup[_RelationAdapter, int]] = {}
        self.flushes = 0
        self.reorders = 0
        self.promotions = 0
        self.demotions = 0
        self.reset()

    # ------------------------------------------------------------- structure
    def _build_adapter(self, relation: str) -> Optional[_RelationAdapter]:
        members = self._index._by_relation.get(relation)
        if not members:
            return None
        adapter = _RelationAdapter(relation, self.order_key)
        guard = self._index._guarded.get(relation)
        if guard is not None:
            unguarded, groups = guard
            if len(groups) != 1:
                # Guards at several positions would need a probe per
                # position to pick a plan — not worth the hot-path cost;
                # such relations stay on the classic bucket probe.
                return None
            position, by_value = groups[0]
            if not unguarded or all(
                len(group.members) < 2
                for group in _build_plan(list(unguarded), self.order_key).groups
            ):
                # The static bucket probe already reduces this relation to
                # its value bucket (plus unshareable unguarded singletons);
                # a promoted plan could only re-derive that structure, so
                # tracking would be pure overhead.  Promotion pays off
                # exactly when the unguarded members contain a shared
                # predicate group a value plan collapses to one evaluation.
                return None
            adapter.guard_position = position
            adapter.by_value = by_value
            adapter.unguarded = unguarded
            return adapter
        plan = _build_plan(list(members), self.order_key)
        if all(len(group.members) < 2 for group in plan.groups):
            # No shared predicate groups and nothing to promote: a plan
            # could only reorder, which never saves work without
            # sharing, so leave the relation untracked (zero overhead).
            return None
        adapter.plan = plan
        return adapter

    def rebuild_relation(self, relation: str) -> None:
        """Re-derive one relation's adapter after a structural patch."""
        self._dormant.pop(relation, None)
        adapter = self._build_adapter(relation)
        if adapter is None:
            self._relations.pop(relation, None)
        else:
            self._relations[relation] = adapter

    def reset(self) -> None:
        """Deterministically drop all learned state (the restore policy)."""
        relations: Dict[str, _RelationAdapter] = {}
        for relation in self._index._by_relation:
            adapter = self._build_adapter(relation)
            if adapter is not None:
                relations[relation] = adapter
        self._relations = relations
        self._dormant = {}

    def tracked(self) -> bool:
        return bool(self._relations) or bool(self._dormant)

    # --------------------------------------------------------------- hot path
    def plan_for(self, tup: Any) -> Optional[EvalPlan]:
        """The tuple's plan, or ``None`` to run the classic candidate loop."""
        adapter = self._relations.get(tup.relation)
        if adapter is None:
            return None
        position = adapter.guard_position
        if position is None:
            plan = adapter.plan
            plan.probes += 1
            return plan
        if position >= tup.arity:
            return None
        value = tup.value(position)
        plan = adapter.hot.get(value)
        if plan is not None:
            plan.probes += 1
            return plan
        counts = adapter.value_counts
        counts[value] = counts.get(value, 0) + 1
        return None

    # ---------------------------------------------------------------- flushes
    def flush(self) -> Tup[int, int, int]:
        """One reorder/promotion pass; returns (reorders, promotions, demotions).

        ``reps`` dedups the per-group hit counters before decay — a
        member reachable from several plans (an unguarded member shared
        by every promoted value, or a multi-relation transition) must be
        halved exactly once per flush.
        """
        config = self.config
        if self._dormant:
            due = [
                relation
                for relation, (_, wake) in self._dormant.items()
                if wake <= self.flushes
            ]
            for relation in due:
                adapter, _ = self._dormant.pop(relation)
                adapter.value_counts.clear()
                adapter.hopeless = False
                self._relations[relation] = adapter
        reps: Dict[int, Any] = {}
        reorders = promotions = demotions = 0
        sleepers: List[str] = []
        for relation, adapter in self._relations.items():
            r, p, d = adapter.flush(config, reps)
            reorders += r
            promotions += p
            demotions += d
            if adapter.hopeless:
                sleepers.append(relation)
        for relation in sleepers:
            adapter = self._relations.pop(relation)
            adapter.hopeless = False
            backoff = min(1 << min(adapter.barren, 6), self.MAX_DORMANT_FLUSHES)
            self._dormant[relation] = (adapter, self.flushes + backoff)
        saturation = config.saturation
        for rep in reps.values():
            hits = rep.hits
            if hits > saturation:
                hits = saturation
            rep.hits = hits >> 1
        self.flushes += 1
        self.reorders += reorders
        self.promotions += promotions
        self.demotions += demotions
        return (reorders, promotions, demotions)

    # ---------------------------------------------------------- introspection
    def info(self) -> Dict[str, Any]:
        """JSON-serialisable summary for ``observe()`` and the CLI line."""
        relations: Dict[str, Any] = {}
        promoted = 0
        for relation in sorted(self._relations):
            adapter = self._relations[relation]
            entry: Dict[str, Any] = {"selectivity": round(adapter.selectivity(), 6)}
            if adapter.guard_position is not None:
                entry["promoted"] = adapter.promoted()
                promoted += adapter.promoted()
            relations[relation] = entry
        return {
            "enabled": True,
            "interval": self.config.interval,
            "flushes": self.flushes,
            "reorders": self.reorders,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "promoted": promoted,
            "tracked_relations": len(self._relations) + len(self._dormant),
            "dormant_relations": len(self._dormant),
            "relations": relations,
        }
