"""The Theorem 4.1 construction: from a hierarchical CQ to an equivalent PCEA.

Given a hierarchical conjunctive query ``Q`` the construction produces an
unambiguous PCEA ``P_Q`` over the same schema, with unary predicates in
``U_lin`` and binary predicates in ``B_eq``, such that at every stream position
``n`` the automaton outputs exactly the *new* matches of ``Q`` (the
t-homomorphisms whose latest tuple is ``t_n``), each as a valuation from atom
identifiers to stream positions.

Three cases are covered, following Appendix B:

* **connected, no self joins** — the states are the nodes of the compact
  q-tree; the automaton has quadratic size in ``|Q|``;
* **self joins** — states additionally record which self-join group was read
  last (pairs ``(variable, A)``), the label of a transition is the whole group
  ``A``, and the size can be exponential in ``|Q|``;
* **disconnected queries** — a synthetic root variable plays the role of the
  fresh variable ``x*`` added to every atom; since it never appears in a
  predicate, the construction is literally "``P_{Q*}`` with ``x*`` removed from
  the predicates".

A note on the equivalence ``P_Q ≡ Q``: the paper compares ``⟦P⟧_n(S)`` with
``⟦Q⟧_n(S)``; because an accepting run *at position n* necessarily reads the
tuple ``t_n`` at its root, the per-position outputs of ``P_Q`` correspond to
the t-homomorphisms that use position ``n`` (the cumulative union over
positions recovers the full ``⟦Q⟧_n(S)``).  The test-suite checks exactly this
correspondence against the naive CQ evaluator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Sequence, Set, Tuple as Tup

from repro.core.pcea import PCEA, PCEATransition
from repro.core.predicates import (
    AtomJoinEquality,
    AtomUnaryPredicate,
    BinaryPredicate,
    SelfJoinEquality,
    SelfJoinUnaryPredicate,
    VariableAtomEquality,
)
from repro.cq.hierarchical import QTree, QTreeNode, build_q_tree, is_hierarchical, NotHierarchicalError
from repro.cq.query import Atom, ConjunctiveQuery, Variable


#: Reserved name of the synthetic root variable used for disconnected queries.
SYNTHETIC_ROOT_NAME = "__root__"


@dataclass
class _StructureTree:
    """The compact q-tree (possibly with a synthetic root) used as the automaton skeleton."""

    query: ConjunctiveQuery
    root: QTreeNode

    def path_variables(self, atom_id: int) -> List[Variable]:
        """Tree variables on the path from the root to the leaf of ``atom_id`` (root first)."""
        path: List[Variable] = []

        def walk(node: QTreeNode, acc: List[Variable]) -> List[Variable] | None:
            if node.is_leaf:
                return list(acc) if node.label == atom_id else None
            acc.append(node.label)  # type: ignore[arg-type]
            for child in node.children:
                found = walk(child, acc)
                if found is not None:
                    acc.pop()
                    return found
            acc.pop()
            return None

        result = walk(self.root, path)
        if result is None:
            raise KeyError(f"atom {atom_id} not in structure tree")
        return result

    def variable_node(self, variable: Variable) -> QTreeNode:
        for node in self.root.iter_nodes():
            if node.is_variable and node.label == variable:
                return node
        raise KeyError(f"variable {variable} not in structure tree")

    def children_labels(self, variable: Variable) -> List[Hashable]:
        return [child.label for child in self.variable_node(variable).children]

    def variables(self) -> List[Variable]:
        return [node.label for node in self.root.iter_nodes() if node.is_variable]

    def root_variable(self) -> Variable:
        if not isinstance(self.root.label, Variable):
            raise ValueError("structure tree root must be a variable")
        return self.root.label


def _component_subquery(
    query: ConjunctiveQuery, atom_ids: Sequence[int]
) -> Tup[ConjunctiveQuery, Dict[int, int]]:
    """Build the sub-query induced by ``atom_ids`` plus the local→global id map."""
    atoms = [query.atom(i) for i in atom_ids]
    variables: Set[Variable] = set()
    for atom in atoms:
        variables |= atom.variables()
    head = sorted(variables, key=lambda v: v.name)
    sub = ConjunctiveQuery(head, atoms, name=f"{query.name}_component")
    mapping = {local: original for local, original in enumerate(atom_ids)}
    return sub, mapping


def _relabel(node: QTreeNode, mapping: Dict[int, int]) -> QTreeNode:
    """Replace local atom identifiers by the original ones."""
    if node.is_leaf and isinstance(node.label, int):
        return QTreeNode(mapping[node.label])
    return QTreeNode(node.label, [_relabel(child, mapping) for child in node.children])


def _gaifman_components(query: ConjunctiveQuery) -> List[List[int]]:
    """Connected components of the atoms under "shares a variable"."""
    remaining = set(range(len(query.atoms)))
    components: List[List[int]] = []
    while remaining:
        seed = min(remaining)
        component = {seed}
        frontier = [seed]
        while frontier:
            current = frontier.pop()
            current_vars = query.atom(current).variables()
            for other in list(remaining - component):
                if query.atom(other).variables() & current_vars:
                    component.add(other)
                    frontier.append(other)
        components.append(sorted(component))
        remaining -= component
    return components


def build_structure_tree(query: ConjunctiveQuery) -> _StructureTree:
    """Build the compact q-tree skeleton, adding a synthetic root when disconnected."""
    components = _gaifman_components(query)
    subtrees: List[QTreeNode] = []
    for component in components:
        if len(component) == 1 and not query.atom(component[0]).variables():
            # A constant-only atom: a bare leaf hanging from the root.
            subtrees.append(QTreeNode(component[0]))
            continue
        sub, mapping = _component_subquery(query, component)
        tree = build_q_tree(sub).compacted()
        subtrees.append(_relabel(tree.root, mapping))
    if len(subtrees) == 1 and isinstance(subtrees[0].label, Variable):
        return _StructureTree(query, subtrees[0])
    root = QTreeNode(Variable(SYNTHETIC_ROOT_NAME), subtrees)
    return _StructureTree(query, root)


# --------------------------------------------------------------------- simple case
def _incomplete_states(
    tree: _StructureTree, query: ConjunctiveQuery, variable: Variable, atom_ids: Iterable[int]
) -> Set[Hashable]:
    """``C_{x,A}``: children of the path variables from ``x`` down to the leaves of ``A``,
    minus those path variables and the atoms of ``A`` themselves."""
    atom_ids = list(atom_ids)
    path_vars: Set[Variable] = set()
    for atom_id in atom_ids:
        full_path = tree.path_variables(atom_id)
        if variable not in full_path:
            raise ValueError(f"{variable} is not an ancestor of atom {atom_id}")
        below = full_path[full_path.index(variable):]
        path_vars |= set(below)
    hanging: Set[Hashable] = set()
    for path_var in path_vars:
        hanging |= set(tree.children_labels(path_var))
    return hanging - path_vars - set(atom_ids)


def _atoms_below(tree: _StructureTree, query: ConjunctiveQuery, variable: Variable) -> List[Atom]:
    """The atoms at the leaves below ``variable`` in the structure tree."""
    node = tree.variable_node(variable)
    return [query.atom(leaf.label) for leaf in node.leaves() if isinstance(leaf.label, int)]


def _simple_construction(query: ConjunctiveQuery, tree: _StructureTree) -> PCEA:
    """The quadratic construction for HCQ without self joins."""
    atom_ids = list(range(len(query.atoms)))
    states: Set[Hashable] = set(atom_ids) | set(tree.variables())
    final = {tree.root_variable()}
    transitions: List[PCEATransition] = []

    for atom_id in atom_ids:
        atom = query.atom(atom_id)
        transitions.append(
            PCEATransition(frozenset(), AtomUnaryPredicate(atom), {}, {atom_id}, atom_id)
        )
        for variable in tree.path_variables(atom_id):
            sources = _incomplete_states(tree, query, variable, [atom_id])
            binaries: Dict[Hashable, BinaryPredicate] = {}
            for source in sources:
                if isinstance(source, int):
                    binaries[source] = AtomJoinEquality(query.atom(source), atom)
                else:
                    binaries[source] = VariableAtomEquality(
                        _atoms_below(tree, query, source), atom
                    )
            transitions.append(
                PCEATransition(sources, AtomUnaryPredicate(atom), binaries, {atom_id}, variable)
            )

    return PCEA(states, transitions, final, labels=atom_ids)


# ------------------------------------------------------------------ self-join case
def _self_join_groups(query: ConjunctiveQuery) -> List[Tup[int, ...]]:
    """All non-empty sets of atom identifiers sharing a relation name (the set ``SJ_Q``)."""
    by_relation: Dict[str, List[int]] = {}
    for atom_id, atom in enumerate(query.atoms):
        by_relation.setdefault(atom.relation, []).append(atom_id)
    groups: List[Tup[int, ...]] = []
    for ids in by_relation.values():
        for size in range(1, len(ids) + 1):
            for combo in itertools.combinations(ids, size):
                groups.append(tuple(combo))
    return groups


def _common_path_variables(tree: _StructureTree, group: Sequence[int]) -> List[Variable]:
    """Tree variables that are ancestors of every leaf of the group (root first)."""
    paths = [tree.path_variables(atom_id) for atom_id in group]
    common = set(paths[0])
    for path in paths[1:]:
        common &= set(path)
    # Preserve root-first order using the first path.
    return [variable for variable in paths[0] if variable in common]


def _general_construction(query: ConjunctiveQuery, tree: _StructureTree) -> PCEA:
    """The (worst-case exponential) construction for HCQ with self joins."""
    atom_ids = list(range(len(query.atoms)))
    groups = _self_join_groups(query)
    group_atoms: Dict[Tup[int, ...], List[Atom]] = {
        group: [query.atom(i) for i in group] for group in groups
    }

    # Variable states: (variable, group) for every group and every common path variable.
    variable_states: Set[Tup[Variable, Tup[int, ...]]] = set()
    anchors: Dict[Tup[int, ...], List[Variable]] = {}
    for group in groups:
        common = _common_path_variables(tree, group)
        anchors[group] = common
        for variable in common:
            variable_states.add((variable, group))

    # For every variable, the groups that can have produced it (used by encodings).
    groups_of_variable: Dict[Variable, List[Tup[int, ...]]] = {}
    for variable, group in variable_states:
        groups_of_variable.setdefault(variable, []).append(group)
    for variable in groups_of_variable:
        groups_of_variable[variable].sort()

    states: Set[Hashable] = set(atom_ids) | set(variable_states)
    root = tree.root_variable()
    final = {(root, group) for group in groups if (root, group) in variable_states}
    transitions: List[PCEATransition] = []

    for atom_id in atom_ids:
        atom = query.atom(atom_id)
        transitions.append(
            PCEATransition(frozenset(), AtomUnaryPredicate(atom), {}, {atom_id}, atom_id)
        )

    for group in groups:
        atoms = group_atoms[group]
        unary = SelfJoinUnaryPredicate(atoms) if len(atoms) > 1 else AtomUnaryPredicate(atoms[0])
        for variable in anchors[group]:
            incomplete = _incomplete_states(tree, query, variable, group)
            atom_sources = sorted(s for s in incomplete if isinstance(s, int))
            variable_sources = sorted(
                (s for s in incomplete if isinstance(s, Variable)), key=lambda v: v.name
            )
            # Every encoding picks, for each incomplete variable, the group that
            # completed it; atoms of the encoding are fixed.
            choices = [
                [(source, choice) for choice in groups_of_variable.get(source, [])]
                for source in variable_sources
            ]
            if any(not alternatives for alternatives in choices):
                # Some incomplete variable has no state: the transition can never
                # fire (should not happen for well-formed trees).
                continue
            for encoding in itertools.product(*choices):
                sources: Set[Hashable] = set(atom_sources) | set(encoding)
                binaries: Dict[Hashable, BinaryPredicate] = {}
                for source in atom_sources:
                    binaries[source] = SelfJoinEquality([query.atom(source)], atoms)
                for source_variable, source_group in encoding:
                    binaries[(source_variable, source_group)] = SelfJoinEquality(
                        group_atoms[source_group], atoms
                    )
                transitions.append(
                    PCEATransition(sources, unary, binaries, set(group), (variable, group))
                )

    return PCEA(states, transitions, final, labels=atom_ids)


# ------------------------------------------------------------------------- facade
def hcq_to_pcea(query: ConjunctiveQuery, force_general: bool = False) -> PCEA:
    """Build the PCEA ``P_Q`` of Theorem 4.1 for a hierarchical CQ ``Q``.

    Parameters
    ----------
    query:
        A full hierarchical conjunctive query (self joins and disconnected
        queries are supported).
    force_general:
        Use the general (self-join) construction even when the query has no
        self joins — useful for testing that both constructions agree.

    Returns
    -------
    PCEA
        An unambiguous PCEA with labels ``I(Q)`` whose outputs at position ``n``
        are exactly the new matches of ``Q`` at position ``n``.

    Raises
    ------
    NotHierarchicalError
        If the query is not full or not hierarchical.
    """
    if not query.is_full():
        raise NotHierarchicalError(f"{query} is not full")
    if not is_hierarchical(query):
        raise NotHierarchicalError(f"{query} is not hierarchical")

    if len(query.atoms) == 1:
        atom = query.atom(0)
        transition = PCEATransition(frozenset(), AtomUnaryPredicate(atom), {}, {0}, 0)
        pcea = PCEA({0}, [transition], {0}, labels=[0])
    else:
        tree = build_structure_tree(query)
        if query.has_self_joins() or force_general:
            pcea = _general_construction(query, tree)
        else:
            pcea = _simple_construction(query, tree)
    pcea.dispatch_index()  # build the transition dispatch index at compile time
    return pcea
