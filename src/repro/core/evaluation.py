"""Streaming evaluation of unambiguous PCEA with equality predicates (Algorithm 1).

:class:`StreamingEvaluator` reads a stream tuple by tuple.  Processing one
tuple has two phases:

* **update** — fire every transition whose unary predicate holds and whose
  equality predicates find matching partial runs in the hash table ``H``
  (``FireTransitions``), then index the newly created runs so future tuples can
  join with them (``UpdateIndices``).  Partial runs are represented by nodes of
  the persistent data structure ``DS_w``.
* **enumeration** — the nodes that reached a final state represent exactly the
  new outputs; they are enumerated with output-linear delay, restricted to the
  sliding window.

With equality predicates and an unambiguous PCEA this achieves the
``O(|P|·|t| + |P|·log|P| + |P|·log w)`` update time and output-linear delay of
Theorem 5.1.  The evaluator also exposes operation counters so benchmarks can
report machine-independent costs.

Engineering on top of the paper's pseudocode (the theorem charges none of
these costs, so the implementation should not pay them either):

* **Transition dispatch index** — FireTransitions and UpdateIndices only touch
  *candidate* transitions for the incoming tuple, via the compile-once
  :class:`~repro.core.dispatch.TransitionDispatchIndex` (grouped by relation
  name extracted from the unary predicates, plus a reverse ``state ->
  consuming transitions`` map).  ``indexed=False`` restores the seed engine's
  full ``O(|Δ|)`` scans for ablation.
* **Shared runtime core** — the stream position, the expiry-driven eviction
  sweep, the arena release protocol, batched ingestion and the statistics /
  memory introspection surface live in :mod:`repro.runtime`
  (:class:`~repro.runtime.StreamRuntime`), shared verbatim with the
  multi-query and general evaluators; this evaluator is the K=1 lane of that
  runtime.  Entries of ``H`` whose node fell out of the sliding window are
  dropped by a bucket-by-expiry-position sweep, bounding the table at
  ``O(active window)`` instead of ``O(stream length)``; the ``evicted``
  counter reports the reclaimed entries, ``evict=False`` restores the
  unbounded seed behaviour.
* **Optional statistics** — the per-tuple operation counters are skipped
  entirely in fast mode (``collect_stats=False``, and by default inside
  ``run(collect=False)``), so throughput benchmarks measure the algorithm,
  not its instrumentation.
* **Arena-backed enumeration structure** — nodes of ``DS_w`` are dense
  integer ids into the flat per-slab arrays of
  :class:`~repro.core.arena.ArenaDataStructure` (the default; ``arena=False``
  restores the object graph).  The hash table stores ``(node, max_start)``
  pairs so expiry checks never dereference a node, and the eviction sweep
  doubles as the arena's reclamation driver: popping an expiry bucket drops
  the per-slab external references, after which whole expired slabs are
  released in O(1), bounding enumeration memory by the active window.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple as Tup, Union

from repro.core.adaptive import resolve_config
from repro.core.arena import ArenaDataStructure
from repro.core.datastructure import DataStructure, Node
from repro.core.dispatch import TransitionDispatchIndex
from repro.core.pcea import PCEA
from repro.cq.schema import Tuple
from repro.runtime import EngineStatistics, EvictionLane, RuntimeBackedEngine, StreamRuntime
from repro.runtime.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    check_snapshot_header,
    stable_signature,
)
from repro.valuation import Valuation


State = Hashable

#: A ``DS_w`` node reference: a :class:`Node` object (``arena=False``) or a
#: dense integer id into the arena's flat arrays (``arena=True``).
NodeRef = Union[Node, int]

#: Backwards-compatible name: the per-engine statistics dataclasses were
#: unified into :class:`repro.runtime.EngineStatistics`.
UpdateStatistics = EngineStatistics


class NotEqualityPredicateError(TypeError):
    """Raised when Algorithm 1 is instantiated on a PCEA with non-equality joins."""


def _fired_order(item) -> int:
    # Canonical transition order for plan-mode effect application.
    return item[0].index


class StreamingEvaluator(RuntimeBackedEngine):
    """Algorithm 1: streaming evaluation of a PCEA under a sliding window.

    Parameters
    ----------
    pcea:
        The automaton to evaluate.  All binary predicates must be equality
        predicates (class ``B_eq``); the automaton should be unambiguous for
        the outputs to be duplicate-free (Theorem 5.1's hypothesis).
    window:
        The sliding-window size ``w``: at position ``i`` only valuations ``ν``
        with ``i - min(ν) <= w`` are reported.
    datastructure:
        Optional data-structure instance (object or arena flavoured),
        injectable so the ablation benchmark can swap in the naive variant;
        when given it overrides ``arena``.
    arena:
        With ``True`` (default) the enumeration structure is the arena-backed
        :class:`~repro.core.arena.ArenaDataStructure` — flat-array node
        storage whose expired slabs are released wholesale by the eviction
        sweep, bounding enumeration memory by the active window.  ``False``
        restores the persistent object-graph ``DS_w`` (the ablation baseline
        and differential-test oracle).  With ``evict=False`` the arena never
        reclaims either (no sweep runs), reproducing the unbounded seed
        behaviour in both representations.
    audit:
        When ``True``, every enumeration additionally checks that no duplicate
        valuation is produced (debug mode; adds overhead).
    dispatch:
        Optional prebuilt :class:`~repro.core.dispatch.TransitionDispatchIndex`
        (the compilers attach one to the PCEA; it is reused automatically).
    indexed:
        With ``False`` the evaluator scans the full transition list per tuple,
        reproducing the seed engine's update cost (ablation / differential
        testing).
    evict:
        With ``False`` hash-table entries are never reclaimed (the seed
        behaviour); the default sweeps expired entries so memory is bounded by
        the window, not the stream length.
    collect_stats:
        With ``False`` the per-tuple operation counters are skipped (fast
        mode for throughput benchmarks).
    columnar:
        Arena column layout (``array('q')`` packing by default;
        ``False`` keeps the list-backed slabs — ablation).  Ignored with
        ``arena=False`` or an injected ``datastructure``.
    kernel:
        Record-operation backend for the arena hot path: ``"python"``,
        ``"native"`` (the optional C extension) or ``"auto"`` / ``None``
        (defer to ``REPRO_KERNEL``, then auto-detect — see
        :mod:`repro.core.kernel`).  Ignored with ``arena=False`` or an
        injected ``datastructure``; :meth:`kernel_info` reports what is
        actually running.
    adaptive:
        Adaptive selectivity-driven dispatch (:mod:`repro.core.adaptive`):
        ``True`` (default) enables runtime feedback — shared-predicate
        groups evaluated once per tuple, periodic reordering, hot
        constant-guard promotion — with outputs and operation counters
        bit-identical to the static path (``False``, the ablation oracle).
        An explicit :class:`~repro.core.adaptive.AdaptiveConfig` overrides
        the flush/promotion knobs.  Ignored with ``indexed=False``.

    Examples
    --------
    >>> # See examples/quickstart.py for an end-to-end construction.
    """

    def __init__(
        self,
        pcea: PCEA,
        window: int,
        datastructure: DataStructure | None = None,
        audit: bool = False,
        dispatch: TransitionDispatchIndex | None = None,
        indexed: bool = True,
        evict: bool = True,
        collect_stats: bool = True,
        arena: bool = True,
        columnar: bool = True,
        kernel: str | None = None,
        adaptive: object = True,
    ) -> None:
        if not pcea.uses_only_equality_predicates():
            raise NotEqualityPredicateError(
                "Algorithm 1 requires every binary predicate to be an equality predicate"
            )
        self.pcea = pcea
        self.window = window
        if datastructure is not None:
            self.ds = datastructure
        elif arena:
            self.ds = ArenaDataStructure(window, columnar=columnar, kernel=kernel)
        else:
            self.ds = DataStructure(window)
        if self.ds.window != window:
            raise ValueError("data structure window must match the evaluator window")
        # The shared runtime core (position, expiry buckets, eviction sweep,
        # arena release passes, batching, statistics): this evaluator is the
        # K=1 lane of the same machinery the multi-query engine runs per
        # registered query.
        self._runtime = StreamRuntime()
        self._lane = self._runtime.add_lane(EvictionLane(window, self.ds))
        # H maps (transition index, source state, key) to ``(node, max_start)``
        # where the node represents the union of all runs that reached that
        # state with that join key.  max_start is cached in the pair so the
        # hot expiry checks never re-read it through the data structure (an
        # attribute read for object nodes, a slab-array read for arena ids).
        self._hash: Dict[Tup[int, State, Hashable], Tup[NodeRef, int]] = self._lane.hash
        self.audit = audit
        self._count_stats = collect_stats
        # Mirrored into the runtime: the sweep's counters live there and are
        # gated the same way as every other EngineStatistics counter.
        self._runtime.count_stats = collect_stats
        if dispatch is not None:
            if dispatch.final != frozenset(pcea.final):
                raise ValueError(
                    "the dispatch index was built for a different final-state set"
                )
            compiled = dispatch.all_transitions()
            if len(compiled) != len(pcea.transitions) or any(
                c.transition is not t for c, t in zip(compiled, pcea.transitions)
            ):
                raise ValueError(
                    "the dispatch index was built for a different transition list"
                )
            self._dispatch = dispatch
        elif indexed:
            self._dispatch = pcea.dispatch_index()
        else:
            self._dispatch = TransitionDispatchIndex(
                pcea.transitions, indexed=False, final=pcea.final
            )
        self._evict = evict
        # Adaptive dispatch: engine-owned feedback state over the (possibly
        # shared) dispatch index.  Armed only when the index has something
        # to adapt — a guarded relation or a shared predicate group —
        # otherwise the per-tuple path is exactly the static one.
        self._adaptive = None
        config = resolve_config(adaptive) if self._dispatch.indexed else None
        if config is not None:
            state = self._dispatch.build_adaptive(config)
            if state.tracked():
                self._adaptive = state
                self._runtime.arm_adapt(self._adapt_flush, config.interval)

    # -------------------------------------------------------------- main loop
    def run(
        self,
        stream: Iterable[Tuple],
        collect: bool = True,
        stats: bool | None = None,
    ) -> Dict[int, List[Valuation]]:
        """Process a whole (finite) stream, returning outputs per position.

        With ``collect=False`` outputs are enumerated but not stored, which is
        what the throughput benchmarks use; statistics counting is then also
        disabled unless explicitly requested with ``stats=True`` (benchmarks
        that want the counters opt in).
        """
        previous = self._count_stats
        if stats is None:
            self._count_stats = previous and collect
        else:
            self._count_stats = bool(stats)
        self._runtime.count_stats = self._count_stats
        try:
            results: Dict[int, List[Valuation]] = {}
            for tup in stream:
                outputs = self.process(tup)
                if collect:
                    results[self.position] = list(outputs)
                else:
                    for _ in outputs:
                        pass
            return results
        finally:
            self._count_stats = previous
            self._runtime.count_stats = previous

    def process(self, tup: Tuple) -> List[Valuation]:
        """Process one tuple: update phase followed by eager enumeration."""
        final_nodes = self.update(tup)
        return list(self.enumerate_outputs(final_nodes))

    def process_many(self, tuples: Sequence[Tuple]) -> List[List[Valuation]]:
        """Batched ingestion: process ``tuples``, returning outputs per tuple.

        Produces exactly what ``[self.process(t) for t in tuples]`` would,
        but amortises the per-tuple Python overhead: method lookups are
        hoisted out of the loop, the eviction sweep runs once per batch
        (deferred-sweep correctness is the runtime's
        :meth:`~repro.runtime.StreamRuntime.drive_batch` contract), and the
        enumeration counter is flushed to the statistics once per batch.
        """
        if self.audit:
            # Audit mode verifies duplicate-freeness through the slow
            # enumeration path; batching stays semantically identical.
            return [self.process(tup) for tup in tuples]
        runtime = self._runtime
        results, enumerated = runtime.drive_enumerating_batch(
            tuples, self.update, self.ds.enumerate, sweep=self._evict
        )
        if self._count_stats and enumerated:
            runtime.stats.outputs_enumerated += enumerated
        return results

    # ------------------------------------------------------------ update phase
    def update(self, tup: Tuple, sweep: bool = True) -> List[NodeRef]:
        """The update phase (Reset + FireTransitions + UpdateIndices).

        Returns the nodes that reached a final state at the current position;
        feeding them to :meth:`enumerate_outputs` yields the new outputs.
        ``sweep=False`` skips the per-tuple eviction sweep (expiry bucket
        registration still happens); :meth:`process_many` uses it to run one
        batched sweep instead of one per tuple.
        """
        # Reset.
        runtime = self._runtime
        position = runtime.advance()
        window = self.window
        ds = self.ds
        lane = self._lane
        hash_table = self._hash
        dispatch = self._dispatch
        stats = runtime.stats if self._count_stats else None
        if stats is not None:
            stats.tuples_processed += 1
        # Keyed by interned state id (plain int) — composite automaton states
        # never reach a hash table in the per-tuple loop.  Values are
        # ``(node, max_start)`` pairs: max_start is threaded through from the
        # children's cached values (extend takes the min, union the max — both
        # exact by construction / the heap condition), so the loop never reads
        # it back through the data structure.
        new_nodes: Dict[int, List[Tup[NodeRef, int]]] = {}
        final_nodes: List[NodeRef] = []

        # Evict: one shared-runtime sweep.  A key is registered (below) in the
        # bucket of its expiry position ``max_start + window + 1``; since
        # every stored node satisfies max_start >= position - window at
        # storage time, popping the single bucket of the current position
        # reclaims every entry exactly when it expires.  The sweep is also
        # when arena slabs are released: a slab's last external reference is
        # dropped no later than the bucket of its largest max_start, which is
        # due exactly when the slab expires.
        if self._evict and sweep:
            runtime.sweep(position)

        # FireTransitions, restricted to the candidate transitions for this
        # tuple's relation and constant guards (wildcard transitions are
        # always candidates).
        adaptive = self._adaptive
        plan = adaptive.plan_for(tup) if adaptive is not None else None
        if plan is not None:
            # Plan mode (repro.core.adaptive): one ``unary.holds`` per
            # predicate group — a miss skips every member, sound because
            # equal canonical keys accept exactly the same tuples — then the
            # fired transitions applied in canonical transition order.  The
            # fire phase only reads the hash table, so the fired *set* is
            # evaluation-order-invariant; sorting before the effects makes
            # node creation, bucket fill and final collection bit-identical
            # to the static loop.  Counters are bulk-added to exactly what
            # the static loop would have counted for the same member set.
            if stats is not None:
                stats.transitions_scanned += plan.total
                stats.predicate_evaluations += plan.total
            fired: List[Tup[object, List[NodeRef], int]] = []
            for group in plan.groups:
                if not group.unary.holds(tup):
                    continue
                group.rep.hits += 1
                for compiled in group.members:
                    children = []
                    node_ms = position
                    feasible = True
                    for _, source_id, predicate in compiled.joins:
                        key = predicate.right_key(tup)
                        if stats is not None:
                            stats.hash_lookups += 1
                        if key is None:
                            feasible = False
                            break
                        pair = hash_table.get((compiled.index, source_id, key))
                        if pair is None or position - pair[1] > window:
                            feasible = False
                            break
                        children.append(pair[0])
                        if pair[1] < node_ms:
                            node_ms = pair[1]
                    if feasible:
                        fired.append((compiled, children, node_ms))
            if len(fired) > 1:
                fired.sort(key=_fired_order)
            for compiled, children, node_ms in fired:
                node = ds.extend(compiled.labels, position, children, node_ms)
                if stats is not None:
                    stats.transitions_fired += 1
                    stats.nodes_created += 1
                bucket = new_nodes.get(compiled.target_id)
                if bucket is None:
                    new_nodes[compiled.target_id] = [(node, node_ms)]
                else:
                    bucket.append((node, node_ms))
                if compiled.is_final:
                    final_nodes.append(node)
        else:
            for compiled in dispatch.candidates_for(tup):
                if stats is not None:
                    stats.transitions_scanned += 1
                    stats.predicate_evaluations += 1
                if not compiled.unary.holds(tup):
                    continue
                children = []
                node_ms = position
                feasible = True
                for _, source_id, predicate in compiled.joins:
                    key = predicate.right_key(tup)  # the current tuple is the later one
                    if stats is not None:
                        stats.hash_lookups += 1
                    if key is None:
                        feasible = False
                        break
                    pair = hash_table.get((compiled.index, source_id, key))
                    # ``ds.expired`` with the cached max_start: stored nodes
                    # are never bottom, and an expired (possibly released)
                    # node simply fails the window check.
                    if pair is None or position - pair[1] > window:
                        feasible = False
                        break
                    children.append(pair[0])
                    if pair[1] < node_ms:
                        node_ms = pair[1]
                if not feasible:
                    continue
                # node_ms == min(position, min child max_start) — exactly the
                # max_start ``extend`` computes for the new node; passing it
                # in lets the arena skip re-reading the child records (the
                # in-window check above certifies the children are live).
                node = ds.extend(compiled.labels, position, children, node_ms)
                if stats is not None:
                    stats.transitions_fired += 1
                    stats.nodes_created += 1
                bucket = new_nodes.get(compiled.target_id)
                if bucket is None:
                    new_nodes[compiled.target_id] = [(node, node_ms)]
                else:
                    bucket.append((node, node_ms))
                if compiled.is_final:
                    final_nodes.append(node)

        # UpdateIndices, restricted to the transitions that consume a state
        # that actually received new runs this position.
        if new_nodes:
            buckets = runtime.buckets if self._evict else None
            add_ref = lane.add_ref
            lane_id = lane.lane_id
            for state_id, nodes in new_nodes.items():
                for compiled, source_id, predicate in dispatch.consumers_by_id(state_id):
                    key = predicate.left_key(tup)  # the current tuple will be the earlier one
                    if key is None:
                        continue
                    entry_key = (compiled.index, source_id, key)
                    pair = hash_table.get(entry_key)
                    if pair is None:
                        entry = None
                        entry_ms = -1
                    else:
                        entry, entry_ms = pair
                    for node, node_ms in nodes:
                        if stats is not None:
                            stats.hash_updates += 1
                        if entry is None:
                            entry = node
                            entry_ms = node_ms
                        else:
                            if stats is not None:
                                stats.unions += 1
                            # position/node_ms describe the fresh node the
                            # fire loop just built — the arena's fast path.
                            entry = ds.union(entry, node, position, node_ms)
                            # Heap condition: the union's max_start is the max
                            # of the two sides (expired sides are pruned, and
                            # a pruned side is always the smaller one).
                            if node_ms > entry_ms:
                                entry_ms = node_ms
                    hash_table[entry_key] = (entry, entry_ms)
                    if buckets is not None:
                        # Flat-triple registration (see StreamRuntime.register_entry):
                        # three appends, no per-entry tuple allocation.
                        expiry_position = entry_ms + window + 1
                        expiry = buckets.get(expiry_position)
                        if expiry is None:
                            buckets[expiry_position] = [lane_id, entry_key, entry]
                        else:
                            expiry.append(lane_id)
                            expiry.append(entry_key)
                            expiry.append(entry)
                        add_ref(entry)

        # ``final_nodes`` was collected at fire time (transitions know whether
        # their target is final), ready for the enumeration phase.
        return final_nodes

    # ------------------------------------------------------- enumeration phase
    def enumerate_outputs(self, final_nodes: Sequence[NodeRef]) -> Iterator[Valuation]:
        """Enumerate the outputs represented by the final-state nodes.

        Unambiguity guarantees that distinct nodes represent disjoint output
        sets, so concatenating the enumerations is duplicate-free; with
        ``audit=True`` this is verified at runtime.
        """
        seen: Optional[Set[Valuation]] = set() if self.audit else None
        count_stats = self._count_stats
        stats = self._runtime.stats
        position = self.position
        for node in final_nodes:
            for valuation in self.ds.enumerate(node, position):
                if count_stats:
                    stats.outputs_enumerated += 1
                if seen is not None:
                    if valuation in seen:
                        raise AssertionError(
                            f"duplicate output {valuation} at position {position}; "
                            "the PCEA is not unambiguous"
                        )
                    seen.add(valuation)
                yield valuation

    # ------------------------------------------------------- snapshot protocol
    def snapshot(self) -> Dict[str, Hashable]:
        """The engine's complete evaluation state (see :mod:`repro.runtime.snapshot`).

        Picklable and tagged-JSON serialisable; restorable into a freshly
        constructed engine evaluating the same automaton with the same
        window (verified through the dispatch-index signature), after which
        processing continues bit-identically to the snapshotted engine.
        """
        lane = self._lane
        return {
            "snapshot_version": SNAPSHOT_VERSION,
            "engine": "streaming",
            "window": self.window,
            "evict": self._evict,
            "dispatch_signature": stable_signature(self._dispatch.signature()),
            "runtime": self._runtime.snapshot({lane.lane_id: 0}),
            "lane": lane.snapshot(),
        }

    def restore(self, snapshot: Dict[str, object]) -> None:
        """Adopt ``snapshot``'s state; processing then continues bit-identically.

        The engine must have been constructed for the same automaton,
        window, and ``evict`` setting (and with ``arena=True``); everything
        else — position, hash table, arena slabs, expiry buckets, statistics
        — is replaced.
        """
        check_snapshot_header(snapshot, "streaming")
        if snapshot["window"] != self.window:
            raise SnapshotError(
                f"snapshot was taken with window {snapshot['window']}, "
                f"this engine has window {self.window}"
            )
        if bool(snapshot["evict"]) != self._evict:
            raise SnapshotError(
                "snapshot and engine disagree on the evict setting "
                f"(snapshot: {snapshot['evict']}, engine: {self._evict})"
            )
        if stable_signature(self._dispatch.signature()) != snapshot["dispatch_signature"]:
            raise SnapshotError(
                "snapshot was taken from an engine with a different automaton "
                "(dispatch-index signatures differ)"
            )
        # Bind every section before mutating: a truncated snapshot raises
        # before any state is touched, never after a half-restore.
        try:
            lane_snap = snapshot["lane"]
            runtime_snap = snapshot["runtime"]
        except KeyError as exc:
            raise SnapshotError(f"snapshot is missing the {exc} section") from exc
        self._lane.restore(lane_snap)
        self._runtime.restore(runtime_snap, [self._lane])
        if self._adaptive is not None:
            # Restore policy (repro.core.adaptive): learned state resets
            # deterministically and the flush clock re-seats from the
            # restored position — invisible in outputs and statistics, so
            # snapshots stay interchangeable with static engines.
            self._adaptive.reset()
            self._runtime.arm_adapt(self._adapt_flush, self._adaptive.config.interval)

    # ------------------------------------------------------------ introspection
    # (hash_table_size / memory_info / dispatch_info / observe come from
    # RuntimeBackedEngine; this hook points them at the automaton's index.)
    def _dispatch_source(self):
        return self._dispatch

    def _adapt_flush(self, position: int) -> None:
        """Adapt-clock callback: one reorder/promotion pass over the plans."""
        reorders, promotions, demotions = self._adaptive.flush()
        obs = self._runtime.obs
        if obs is not None and (reorders or promotions or demotions):
            obs.on_dispatch_adapt(reorders, promotions, demotions)

    def reset_statistics(self) -> None:
        self._runtime.reset_statistics()
        self.ds.nodes_created = 0
        self.ds.union_calls = 0
        self.ds.union_copies = 0


def evaluate_pcea(
    pcea: PCEA,
    stream: Iterable[Tuple],
    window: int,
    positions: Iterable[int] | None = None,
) -> Dict[int, Set[Valuation]]:
    """Convenience wrapper: run Algorithm 1 over a finite stream.

    Returns the outputs (as sets of valuations) at every position, or only at
    the requested ``positions``.
    """
    evaluator = StreamingEvaluator(pcea, window)
    wanted = set(positions) if positions is not None else None
    results: Dict[int, Set[Valuation]] = {}
    for tup in stream:
        outputs = evaluator.process(tup)
        if wanted is None or evaluator.position in wanted:
            results[evaluator.position] = set(outputs)
    return results
