"""Streaming evaluation of unambiguous PCEA with equality predicates (Algorithm 1).

:class:`StreamingEvaluator` reads a stream tuple by tuple.  Processing one
tuple has two phases:

* **update** — fire every transition whose unary predicate holds and whose
  equality predicates find matching partial runs in the hash table ``H``
  (``FireTransitions``), then index the newly created runs so future tuples can
  join with them (``UpdateIndices``).  Partial runs are represented by nodes of
  the persistent data structure ``DS_w``.
* **enumeration** — the nodes that reached a final state represent exactly the
  new outputs; they are enumerated with output-linear delay, restricted to the
  sliding window.

With equality predicates and an unambiguous PCEA this achieves the
``O(|P|·|t| + |P|·log|P| + |P|·log w)`` update time and output-linear delay of
Theorem 5.1.  The evaluator also exposes operation counters so benchmarks can
report machine-independent costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple as Tup

from repro.core.datastructure import DataStructure, Node
from repro.core.pcea import PCEA, PCEATransition
from repro.core.predicates import EqualityPredicate
from repro.cq.schema import Tuple
from repro.valuation import Valuation


State = Hashable


class NotEqualityPredicateError(TypeError):
    """Raised when Algorithm 1 is instantiated on a PCEA with non-equality joins."""


@dataclass
class UpdateStatistics:
    """Operation counters for one ``process`` call (benchmark instrumentation)."""

    transitions_scanned: int = 0
    transitions_fired: int = 0
    hash_lookups: int = 0
    hash_updates: int = 0
    unions: int = 0
    nodes_created: int = 0
    outputs_enumerated: int = 0


class StreamingEvaluator:
    """Algorithm 1: streaming evaluation of a PCEA under a sliding window.

    Parameters
    ----------
    pcea:
        The automaton to evaluate.  All binary predicates must be equality
        predicates (class ``B_eq``); the automaton should be unambiguous for
        the outputs to be duplicate-free (Theorem 5.1's hypothesis).
    window:
        The sliding-window size ``w``: at position ``i`` only valuations ``ν``
        with ``i - min(ν) <= w`` are reported.
    datastructure:
        Optional :class:`~repro.core.datastructure.DataStructure` instance,
        injectable so the ablation benchmark can swap in the naive variant.
    audit:
        When ``True``, every enumeration additionally checks that no duplicate
        valuation is produced (debug mode; adds overhead).

    Examples
    --------
    >>> # See examples/quickstart.py for an end-to-end construction.
    """

    def __init__(
        self,
        pcea: PCEA,
        window: int,
        datastructure: DataStructure | None = None,
        audit: bool = False,
    ) -> None:
        if not pcea.uses_only_equality_predicates():
            raise NotEqualityPredicateError(
                "Algorithm 1 requires every binary predicate to be an equality predicate"
            )
        self.pcea = pcea
        self.window = window
        self.ds = datastructure if datastructure is not None else DataStructure(window)
        if self.ds.window != window:
            raise ValueError("data structure window must match the evaluator window")
        self.audit = audit
        self.position = -1
        # H maps (transition index, source state, key) to the node representing
        # the union of all runs that reached that state with that join key.
        self._hash: Dict[Tup[int, State, Hashable], Node] = {}
        self.stats = UpdateStatistics()
        self._transitions: Tup[PCEATransition, ...] = pcea.transitions

    # -------------------------------------------------------------- main loop
    def run(
        self, stream: Iterable[Tuple], collect: bool = True
    ) -> Dict[int, List[Valuation]]:
        """Process a whole (finite) stream, returning outputs per position.

        With ``collect=False`` outputs are enumerated but not stored, which is
        what the throughput benchmarks use.
        """
        results: Dict[int, List[Valuation]] = {}
        for tup in stream:
            outputs = self.process(tup)
            if collect:
                results[self.position] = list(outputs)
            else:
                for _ in outputs:
                    pass
        return results

    def process(self, tup: Tuple) -> List[Valuation]:
        """Process one tuple: update phase followed by eager enumeration."""
        final_nodes = self.update(tup)
        return list(self.enumerate_outputs(final_nodes))

    # ------------------------------------------------------------ update phase
    def update(self, tup: Tuple) -> List[Node]:
        """The update phase (Reset + FireTransitions + UpdateIndices).

        Returns the nodes that reached a final state at the current position;
        feeding them to :meth:`enumerate_outputs` yields the new outputs.
        """
        # Reset.
        self.position += 1
        position = self.position
        new_nodes: Dict[State, List[Node]] = {}
        stats = self.stats

        # FireTransitions.
        for index, transition in enumerate(self._transitions):
            stats.transitions_scanned += 1
            if not transition.unary.holds(tup):
                continue
            children: List[Node] = []
            feasible = True
            for source in transition.sources:
                predicate = transition.binaries[source]
                key = predicate.right_key(tup)  # the current tuple is the later one
                stats.hash_lookups += 1
                if key is None:
                    feasible = False
                    break
                node = self._hash.get((index, source, key))
                if node is None or self.ds.expired(node, position):
                    feasible = False
                    break
                children.append(node)
            if not feasible:
                continue
            stats.transitions_fired += 1
            node = self.ds.extend(transition.labels, position, children)
            stats.nodes_created += 1
            new_nodes.setdefault(transition.target, []).append(node)

        # UpdateIndices.
        for index, transition in enumerate(self._transitions):
            for source in transition.sources:
                nodes = new_nodes.get(source)
                if not nodes:
                    continue
                predicate = transition.binaries[source]
                key = predicate.left_key(tup)  # the current tuple will be the earlier one
                if key is None:
                    continue
                for node in nodes:
                    stats.hash_updates += 1
                    existing = self._hash.get((index, source, key))
                    if existing is None:
                        self._hash[(index, source, key)] = node
                    else:
                        stats.unions += 1
                        self._hash[(index, source, key)] = self.ds.union(existing, node)

        # Collect the nodes at final states for the enumeration phase.
        final_nodes: List[Node] = []
        for state in self.pcea.final:
            final_nodes.extend(new_nodes.get(state, []))
        return final_nodes

    # ------------------------------------------------------- enumeration phase
    def enumerate_outputs(self, final_nodes: Sequence[Node]) -> Iterator[Valuation]:
        """Enumerate the outputs represented by the final-state nodes.

        Unambiguity guarantees that distinct nodes represent disjoint output
        sets, so concatenating the enumerations is duplicate-free; with
        ``audit=True`` this is verified at runtime.
        """
        seen: Optional[Set[Valuation]] = set() if self.audit else None
        for node in final_nodes:
            for valuation in self.ds.enumerate(node, self.position):
                self.stats.outputs_enumerated += 1
                if seen is not None:
                    if valuation in seen:
                        raise AssertionError(
                            f"duplicate output {valuation} at position {self.position}; "
                            "the PCEA is not unambiguous"
                        )
                    seen.add(valuation)
                yield valuation

    # ------------------------------------------------------------ introspection
    def hash_table_size(self) -> int:
        """Number of entries currently stored in ``H``."""
        return len(self._hash)

    def reset_statistics(self) -> None:
        self.stats = UpdateStatistics()
        self.ds.nodes_created = 0
        self.ds.union_calls = 0
        self.ds.union_copies = 0


def evaluate_pcea(
    pcea: PCEA,
    stream: Iterable[Tuple],
    window: int,
    positions: Iterable[int] | None = None,
) -> Dict[int, Set[Valuation]]:
    """Convenience wrapper: run Algorithm 1 over a finite stream.

    Returns the outputs (as sets of valuations) at every position, or only at
    the requested ``positions``.
    """
    evaluator = StreamingEvaluator(pcea, window)
    wanted = set(positions) if positions is not None else None
    results: Dict[int, Set[Valuation]] = {}
    for tup in stream:
        outputs = evaluator.process(tup)
        if wanted is None or evaluator.position in wanted:
            results[evaluator.position] = set(outputs)
    return results
