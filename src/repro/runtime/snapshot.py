"""The cross-layer snapshot/restore protocol: serialisation and verification.

Every layer of the runtime knows how to capture and re-absorb its own state
as a plain-Python tree (dicts / lists / tuples / ints / strings / frozensets
/ :class:`~repro.cq.schema.Tuple` events):

* :meth:`ArenaDataStructure.snapshot/restore <repro.core.arena.ArenaDataStructure.snapshot>`
  — the retained slab set, allocation cursor and label table;
* :meth:`EvictionLane.snapshot/restore <repro.runtime.EvictionLane.snapshot>`
  — the window, the run-index hash table and the enumeration structure;
* :meth:`StreamRuntime.snapshot/restore <repro.runtime.StreamRuntime.snapshot>`
  — the stream cursor, sweep cursors, statistics and expiry buckets;
* the engines (``StreamingEvaluator`` / ``GeneralStreamingEvaluator`` /
  ``MultiQueryEngine``) compose those layers, adding their own verification
  header — the dispatch-index :meth:`signature
  <repro.core.dispatch.TransitionDispatchIndex.signature>` (merged-index
  ``signature()`` for the multi engine, plus the
  :meth:`QueryRegistry.snapshot <repro.multi.registry.QueryRegistry.snapshot>`
  entry table) run through :func:`stable_signature` — so a snapshot can only
  be restored into an engine evaluating the *same* queries.

The trees are directly picklable (no engine objects, no callables, no shared
mutable state with the live engine).  For text-format portability —
``repro-cer --checkpoint/--restore`` writes checkpoint files this way — this
module adds a tagged JSON codec that round-trips the non-JSON-native types:
tuples, frozensets, :class:`~repro.cq.schema.Tuple` events, and dicts with
non-string keys (expiry buckets are keyed by int positions, run-index tables
by key tuples).  ``decode(encode(x)) == x`` for every tree a snapshot
produces, which is what makes restore-into-a-fresh-process bit-identical.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Union

from repro.cq.query import Atom, Variable
from repro.cq.schema import Tuple


#: Bumped when the snapshot tree layout changes incompatibly.
SNAPSHOT_VERSION = 1


class SnapshotError(ValueError):
    """Raised when a snapshot cannot be serialised, parsed, or restored."""


# --------------------------------------------------------------- JSON codec
#: Tag key marking an encoded non-JSON-native value.  A plain dict that
#: happens to carry this key is itself encoded through the tagged-dict form,
#: so the codec never misreads user data as a tag.
_TAG = "__repro__"


def _encode(obj: Any) -> Any:
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [_encode(item) for item in obj]
    if isinstance(obj, tuple):
        return {_TAG: "tuple", "v": [_encode(item) for item in obj]}
    if isinstance(obj, frozenset):
        # Deterministic member order so equal snapshots encode identically.
        return {_TAG: "frozenset", "v": sorted((_encode(item) for item in obj), key=repr)}
    if isinstance(obj, set):
        return {_TAG: "set", "v": sorted((_encode(item) for item in obj), key=repr)}
    if isinstance(obj, Tuple):
        return {_TAG: "event", "r": obj.relation, "v": [_encode(item) for item in obj.values]}
    if isinstance(obj, Atom):
        # CQ-compiled automata label their transitions with query atoms, so
        # atoms (and the variables inside them) reach the arena's interned
        # label table and the dispatch signature.
        return {_TAG: "atom", "r": obj.relation, "v": [_encode(term) for term in obj.terms]}
    if isinstance(obj, Variable):
        return {_TAG: "var", "v": obj.name}
    if isinstance(obj, dict):
        if _TAG not in obj and all(isinstance(key, str) for key in obj):
            return {key: _encode(value) for key, value in obj.items()}
        return {_TAG: "dict", "v": [[_encode(key), _encode(value)] for key, value in obj.items()]}
    raise SnapshotError(f"cannot serialise a {type(obj).__name__} in a snapshot")


def _decode(obj: Any) -> Any:
    if isinstance(obj, list):
        return [_decode(item) for item in obj]
    if isinstance(obj, dict):
        tag = obj.get(_TAG)
        if tag is None:
            return {key: _decode(value) for key, value in obj.items()}
        if tag == "tuple":
            return tuple(_decode(item) for item in obj["v"])
        if tag == "frozenset":
            return frozenset(_decode(item) for item in obj["v"])
        if tag == "set":
            return set(_decode(item) for item in obj["v"])
        if tag == "event":
            return Tuple(obj["r"], tuple(_decode(item) for item in obj["v"]))
        if tag == "atom":
            return Atom(obj["r"], tuple(_decode(term) for term in obj["v"]))
        if tag == "var":
            return Variable(obj["v"])
        if tag == "dict":
            return {_decode(key): _decode(value) for key, value in obj["v"]}
        raise SnapshotError(f"unknown snapshot tag {tag!r}")
    return obj


def dumps(snapshot: Any) -> str:
    """Serialise a snapshot tree to tagged-JSON text."""
    try:
        return json.dumps(_encode(snapshot), sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise SnapshotError(f"snapshot is not serialisable: {exc}") from exc


def loads(text: Union[str, bytes]) -> Any:
    """Parse tagged-JSON text back into the snapshot tree."""
    try:
        return _decode(json.loads(text))
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"snapshot text is not valid JSON: {exc}") from exc


def save(path: str, snapshot: Any) -> None:
    """Serialise ``snapshot`` to ``path`` (the CLI ``--checkpoint`` format)."""
    text = dumps(snapshot)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.write("\n")


def load(path: str) -> Any:
    """Read a snapshot written by :func:`save` (the CLI ``--restore`` input)."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())


# -------------------------------------------------------------- verification
def stable_signature(signature: Any) -> Any:
    """Strip process-specific atoms from a dispatch/merged-index signature.

    Canonical predicate keys fall back to ``("lambda", id(func))`` /
    ``("id", id(predicate))`` for callables the canonical-key protocol cannot
    describe structurally; those ids are meaningless in another process, so a
    checkpoint verified across processes replaces them with their bare tag.
    Structurally-describable predicates (the whole standard hierarchy) keep
    their full canonical keys, so the verification still catches restoring a
    snapshot into an engine evaluating different queries.
    """
    if isinstance(signature, tuple):
        if (
            len(signature) == 2
            and signature[0] in ("lambda", "id")
            and isinstance(signature[1], int)
        ):
            return (signature[0],)
        return tuple(stable_signature(item) for item in signature)
    if isinstance(signature, list):
        return [stable_signature(item) for item in signature]
    if isinstance(signature, dict):
        return {
            stable_signature(key): stable_signature(value)
            for key, value in signature.items()
        }
    if isinstance(signature, frozenset):
        return frozenset(stable_signature(item) for item in signature)
    return signature


#: ``kind`` tag of a lane-subset (partial) snapshot — the unit of query
#: migration between engines (see ``MultiQueryEngine.extract_queries``).
PARTIAL_SNAPSHOT_KIND = "multi-partial"


def check_partial_snapshot(snapshot: Any) -> Dict[str, Any]:
    """Validate a lane-subset snapshot's header and section shape.

    Partial snapshots carry a ``kind`` tag instead of the full-engine
    ``engine`` tag, so a full checkpoint cannot be fed to ``adopt_queries``
    (or vice versa) by mistake.  Returns the snapshot for chaining.
    """
    if not isinstance(snapshot, dict):
        raise SnapshotError(
            f"partial snapshot must be a mapping, got {type(snapshot).__name__}"
        )
    version = snapshot.get("snapshot_version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"partial snapshot version {version!r} is not supported "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    kind = snapshot.get("kind")
    if kind != PARTIAL_SNAPSHOT_KIND:
        raise SnapshotError(
            f"expected a {PARTIAL_SNAPSHOT_KIND!r} lane-subset snapshot, got {kind!r}"
        )
    for section in ("position", "queries", "signatures", "lanes", "buckets"):
        if section not in snapshot:
            raise SnapshotError(f"partial snapshot is missing the {section!r} section")
    queries = snapshot["queries"]
    lanes = snapshot["lanes"]
    signatures = snapshot["signatures"]
    if not (len(queries) == len(lanes) == len(signatures)):
        raise SnapshotError(
            f"partial snapshot sections disagree on the query count "
            f"({len(queries)} queries, {len(lanes)} lanes, {len(signatures)} signatures)"
        )
    return snapshot


def check_snapshot_header(snapshot: Any, engine: str) -> Dict[str, Any]:
    """Validate the common engine-snapshot header, returning the snapshot.

    Every engine snapshot carries ``snapshot_version`` and ``engine``; the
    restoring engine passes its own kind so a checkpoint taken with one
    engine mode cannot be silently restored into another.
    """
    if not isinstance(snapshot, dict):
        raise SnapshotError(
            f"engine snapshot must be a mapping, got {type(snapshot).__name__}"
        )
    version = snapshot.get("snapshot_version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version!r} is not supported "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    kind = snapshot.get("engine")
    if kind != engine:
        raise SnapshotError(
            f"snapshot was taken from a {kind!r} engine, cannot restore into {engine!r}"
        )
    return snapshot
