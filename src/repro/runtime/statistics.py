"""The unified operation-counter surface shared by every streaming engine.

One dataclass serves the single-query evaluator, the multi-query engine and
the general (non-hashed) evaluator, so the benchmark harness
(:func:`~repro.bench.harness.collect_engine_counters`), the CLI ``--stats``
line and the differential tests read the same field names regardless of
engine.  Fields an engine cannot meaningfully count simply stay zero (e.g.
``predicate_cache_hits`` outside the memoising multi-query loop).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EngineStatistics:
    """Operation counters for the per-tuple loop (benchmark instrumentation).

    ``transitions_scanned`` counts the candidate transitions the dispatch
    lookup returned (the multi-query engine historically called this
    ``candidates_scanned``; the property below keeps that name working).
    ``hash_lookups``/``hash_updates`` count run-index table probes and stores
    for the hashed engines; the general evaluator reports its live-run scans
    as ``hash_lookups`` so the "how much stored state did this tuple touch"
    column means the same thing everywhere.

    ``sweeps``/``sweep_evicted`` attribute eviction cost per run segment
    (reset the statistics per batch to attribute it per batch): ``sweeps``
    counts non-empty expiry buckets popped, ``sweep_evicted`` the entries
    those pops genuinely evicted — both deterministic, so they participate
    in snapshot equality like every other counter.  Like every other
    counter here they are gated on the engine's ``collect_stats`` (mirrored
    into ``StreamRuntime.count_stats``); fast mode pays no per-sweep
    attribute writes.  ``sweep_seconds``
    accumulates measured sweep wall time and is only ever non-zero while an
    observer (:mod:`repro.obs`) samples sweeps; engines without one keep it
    at exactly ``0.0``, which keeps snapshots bit-identical across hosts.
    """

    tuples_processed: int = 0
    transitions_scanned: int = 0
    predicate_evaluations: int = 0
    predicate_cache_hits: int = 0
    transitions_fired: int = 0
    hash_lookups: int = 0
    hash_updates: int = 0
    unions: int = 0
    nodes_created: int = 0
    outputs_enumerated: int = 0
    sweeps: int = 0
    sweep_evicted: int = 0
    sweep_seconds: float = 0.0

    @property
    def candidates_scanned(self) -> int:
        """Backwards-compatible alias for :attr:`transitions_scanned`."""
        return self.transitions_scanned

    @candidates_scanned.setter
    def candidates_scanned(self, value: int) -> None:
        self.transitions_scanned = value
