"""The shared streaming runtime: three engines, one per-tuple machinery.

Why this package exists
-----------------------
The repository evaluates the paper's streaming algorithm through three
engines, each owning a different *matching* strategy but sharing every piece
of cross-cutting machinery around it:

* :class:`~repro.core.evaluation.StreamingEvaluator` — Algorithm 1 for one
  unambiguous equality-predicate PCEA (hash-indexed joins, Theorem 5.1's
  update bound);
* :class:`~repro.multi.engine.MultiQueryEngine` — many registered PCEA over
  one stream, one merged dispatch lookup per tuple, per-query isolated state;
* :class:`~repro.extensions.general_evaluation.GeneralStreamingEvaluator` —
  arbitrary binary predicates (no hash keys), scanning live runs per
  transition.

Before this package, each engine re-implemented the stream position counter,
the ``max_start``-bucketed eviction sweep, the arena slab-release protocol,
batched ingestion, and the statistics/memory introspection surface — so every
optimisation had to be hand-ported three times and the copies drifted (the
general evaluator lagged two PRs behind).  The runtime extracts exactly that
machinery:

* :class:`EvictionLane` — one query's evictable state: a sliding window, a
  run-index table (``hash``), an enumeration structure (``ds``), and the
  representation-agnostic reclamation hooks (``add_ref`` / ``drop_ref`` /
  ``release``) bound once at construction.  ``StreamingEvaluator`` and
  ``GeneralStreamingEvaluator`` are single-lane engines;
  ``MultiQueryEngine`` owns one lane per registered query.  The single-query
  evaluator is literally the K=1 lane of the same runtime.
* :class:`StreamRuntime` — the per-stream core: the global position, the
  shared expiry-bucket map (keyed by the *absolute* position at which an
  entry expires, ``max_start + lane.window + 1``, so lanes with different
  windows share one map), the single eviction sweep implementation
  (steady-state one-bucket pop per position, batched catch-up range sweep,
  periodic full arena-release pass over idle lanes), the batching driver
  behind every engine's ``process_many``, and the aggregated
  ``memory_info()`` the CLI ``--stats`` memory section prints.
* :class:`EngineStatistics` — the unified operation-counter surface.  One
  dataclass serves all three engines (fields an engine cannot meaningfully
  count stay zero), so benchmark JSON, ``collect_engine_counters`` and the
  CLI ``--stats`` line are identical across modes.

Engines keep what is genuinely theirs: the FireTransitions/UpdateIndices hot
loop (hash joins vs merged-index dispatch vs live-run scans) and the output
routing.  Everything an engine registers into the runtime is a flat
``lane_id, key, node`` int triple appended to the expiry bucket (lanes are
interned to dense small ints; no per-entry tuple is allocated — see
:meth:`StreamRuntime.register_entry` for the reference implementation); the
sweep pops the bucket, drops the arena reference, and deletes the entry from
``lane.hash`` when the cached ``max_start`` (the second element of the
stored pair) is out of the lane's window — the exact protocol PRs 1–3
proved out per engine, now in one place.

The runtime also anchors the cross-layer **snapshot/restore protocol**
(:mod:`repro.runtime.snapshot`): every layer — arena slabs, lanes, the
runtime itself, the engines — captures its state as a plain-Python tree that
pickles directly and JSON-encodes through the tagged codec, so a mid-stream
checkpoint restored in a fresh process continues bit-identically (the seam
the multi-process sharding roadmap item builds on).
"""

from repro.runtime.core import (
    RELEASE_PASS_INTERVAL,
    EvictionLane,
    RuntimeBackedEngine,
    StreamRuntime,
)
from repro.runtime.snapshot import SNAPSHOT_VERSION, SnapshotError, stable_signature
from repro.runtime.statistics import EngineStatistics

__all__ = [
    "RELEASE_PASS_INTERVAL",
    "SNAPSHOT_VERSION",
    "EvictionLane",
    "RuntimeBackedEngine",
    "SnapshotError",
    "StreamRuntime",
    "EngineStatistics",
    "stable_signature",
]
