"""`StreamRuntime` / `EvictionLane`: the cross-cutting per-tuple machinery.

See the package docstring (:mod:`repro.runtime`) for the architecture.  The
contract with the engines:

* every entry an engine stores in a lane's ``hash`` maps a key to a
  ``(value, max_start)`` pair whose second element is the cached expiry
  anchor (``max_start`` of the stored node for the hashed engines, the run's
  newest stream position for the general evaluator);
* when the engine stores an entry it appends ``(lane, key, node)`` to
  ``buckets[max_start + lane.window + 1]`` (the absolute position at which
  the entry expires) and calls ``lane.add_ref(node)`` — the two inlined
  lines every hot loop pays, everything else lives here;
* the sweep pops due buckets, drops the arena reference exactly once per
  registration, and deletes the hash entry iff it is genuinely out of the
  window *now* (an entry superseded by a younger node was re-registered in a
  later bucket and survives).

Expired arena slabs are released by the same sweep: popping a bucket releases
the lanes it touched, and a periodic full pass (every
:data:`RELEASE_PASS_INTERVAL` positions) covers lanes that stopped
registering entries — without it an idle lane would retain its last
``O(window)`` of expired slabs indefinitely.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Sequence, Tuple as Tup, TypeVar

from repro.runtime.statistics import EngineStatistics


#: Positions between full arena-release passes over every registered lane.
RELEASE_PASS_INTERVAL = 256

_T = TypeVar("_T")


class EvictionLane:
    """One query's evictable runtime state, shared-sweep ready.

    ``hash`` is the lane's run-index table (``(key) -> (value, max_start)``
    pairs); ``ds`` its enumeration structure.  The reclamation hooks are
    bound once so the per-tuple loops and the sweep never branch on the node
    representation (the object-graph ``DS_w`` exposes them as no-ops).
    """

    __slots__ = ("window", "ds", "hash", "active", "add_ref", "drop_ref", "release")

    def __init__(self, window: int, ds) -> None:
        self.window = window
        self.ds = ds
        self.hash: Dict[Hashable, Tup[object, int]] = {}
        self.active = True
        self.add_ref = ds.add_ref
        self.drop_ref = ds.drop_ref
        self.release = ds.release_expired

    def deactivate(self) -> None:
        """Drop the lane's state immediately (unregistration).

        Stale expiry-bucket entries may still reference the lane for up to a
        window; the sweep skips inactive lanes instead of scrubbing every
        bucket eagerly.  Clearing the bound hooks matters: they are bound
        methods and would otherwise pin the enumeration structure until the
        lane's last expiry bucket is popped.
        """
        self.active = False
        self.hash.clear()
        self.ds = None
        self.add_ref = None
        self.drop_ref = None
        self.release = None

    def __repr__(self) -> str:
        state = "active" if self.active else "inactive"
        return f"{type(self).__name__}(window={self.window}, |H|={len(self.hash)}, {state})"


class StreamRuntime:
    """The per-stream core shared by all engines: position, sweep, batching.

    One runtime serves one engine (which may own one lane or thousands).
    Engines advance the position with :meth:`advance`, call :meth:`sweep`
    once per sweeping update, register stored entries into :attr:`buckets`
    (inlined, see the module docstring for the two-line protocol), and route
    their ``process_many`` through :meth:`drive_batch` so the one-sweep-per-
    batch policy exists exactly once.
    """

    __slots__ = (
        "position",
        "evicted",
        "stats",
        "buckets",
        "_swept_upto",
        "_next_release_pass",
        "_lanes",
    )

    def __init__(self) -> None:
        self.position = -1
        self.evicted = 0
        self.stats = EngineStatistics()
        # Absolute expiry position -> [(lane, hash key, registered node)].
        # Entries always register in strictly future buckets (a storable
        # entry satisfies max_start >= position - lane.window), so the sweep
        # can pop the dense range of newly due positions instead of scanning
        # every bucket key.
        self.buckets: Dict[int, List[Tup[EvictionLane, Hashable, object]]] = {}
        self._swept_upto = -1
        self._next_release_pass = 0
        # Keyed by id(lane) so drop_lane is O(1) — unregistration latency
        # must stay independent of how many lanes are registered (the same
        # requirement that motivates incremental merged-index patching).
        self._lanes: Dict[int, EvictionLane] = {}

    # ------------------------------------------------------------------ lanes
    def add_lane(self, lane: EvictionLane) -> EvictionLane:
        """Register a lane for the periodic release pass and memory reporting."""
        self._lanes[id(lane)] = lane
        return lane

    def drop_lane(self, lane: EvictionLane) -> None:
        """Deactivate ``lane`` and stop tracking it (unregistration, O(1))."""
        lane.deactivate()
        self._lanes.pop(id(lane), None)

    def lanes(self) -> Sequence[EvictionLane]:
        return tuple(self._lanes.values())

    # --------------------------------------------------------------- position
    def advance(self) -> int:
        """Move to the next stream position and return it."""
        position = self.position + 1
        self.position = position
        return position

    # ------------------------------------------------------------------ sweep
    def sweep(self, position: int) -> None:
        """The per-tuple eviction sweep (the only implementation).

        Steady state — exactly one new bucket became due — pops that bucket;
        a gap (updates ran with the sweep deferred, or the position was
        reseated) falls back to the batched range sweep so no bucket is ever
        skipped for good.  Also runs the periodic full arena-release pass.
        """
        if position == self._swept_upto + 1:
            self._swept_upto = position
            expired = self.buckets.pop(position, None)
            if expired:
                evicted = 0
                touched = set()
                for lane, key, registered in expired:
                    if not lane.active:
                        continue
                    lane.drop_ref(registered)
                    touched.add(lane)
                    pair = lane.hash.get(key)
                    # The entry may have been superseded by a younger node
                    # (re-registered in a later bucket) — only drop it if it
                    # is genuinely out of the window now.
                    if pair is not None and position - pair[1] > lane.window:
                        del lane.hash[key]
                        evicted += 1
                self.evicted += evicted
                for lane in touched:
                    lane.release(position)
            if position >= self._next_release_pass:
                self.release_lanes(position)
        elif position > self._swept_upto:
            self.sweep_upto(position)

    def sweep_upto(self, position: int) -> None:
        """Pop every expiry bucket due at or before ``position`` (batch sweep).

        Iterates the dense range of positions not yet swept, so the cost is
        O(positions advanced since the last sweep), not O(live buckets).
        """
        if position <= self._swept_upto:
            return
        buckets = self.buckets
        evicted = 0
        touched = set()
        for bucket in range(self._swept_upto + 1, position + 1):
            expired = buckets.pop(bucket, None)
            if not expired:
                continue
            for lane, key, registered in expired:
                if not lane.active:
                    continue
                lane.drop_ref(registered)
                touched.add(lane)
                pair = lane.hash.get(key)
                if pair is not None and position - pair[1] > lane.window:
                    del lane.hash[key]
                    evicted += 1
        self._swept_upto = position
        self.evicted += evicted
        for lane in touched:
            lane.release(position)
        if position >= self._next_release_pass:
            self.release_lanes(position)

    def release_lanes(self, position: int) -> None:
        """Release expired arena slabs in every active lane.

        Bucket pops release the lanes they touch immediately; this periodic
        full pass (every :data:`RELEASE_PASS_INTERVAL` positions, amortised
        O(lanes / interval) per tuple) covers lanes that stopped registering
        entries.
        """
        self._next_release_pass = position + RELEASE_PASS_INTERVAL
        for lane in self._lanes.values():
            if lane.active:
                lane.release(position)

    # --------------------------------------------------------------- batching
    def drive_batch(
        self,
        tuples: Iterable[object],
        step: Callable[[object], _T],
        sweep: bool = True,
    ) -> List[_T]:
        """Batched ingestion: one ``step`` per tuple, one sweep per batch.

        ``step`` must process exactly one tuple with its per-tuple sweep
        deferred (the engines pass a closure over ``update(tup, sweep=False)``
        plus their enumeration).  Deferring the sweep to the end of the batch
        only delays memory reclamation, never changes outputs, because expiry
        is re-checked at every hash lookup through the cached ``max_start``.
        """
        results = [step(tup) for tup in tuples]
        if sweep:
            self.sweep_upto(self.position)
        return results

    def drive_enumerating_batch(
        self,
        tuples: Iterable[object],
        update: Callable[..., Sequence[object]],
        enumerate_node: Callable[[object, int], Iterable[object]],
        sweep: bool = True,
    ) -> Tup[List[List[object]], int]:
        """:meth:`drive_batch` specialised for single-lane engines.

        Runs ``update(tup, sweep=False)`` followed by eager enumeration of
        the returned final nodes per tuple, returning the per-tuple output
        lists and the total output count (for the caller's one-per-batch
        statistics flush).  Shared by ``StreamingEvaluator.process_many`` and
        ``GeneralStreamingEvaluator.process_many`` so the batched
        update-then-enumerate loop exists exactly once.
        """
        tally = [0]

        def step(tup: object) -> List[object]:
            final_nodes = update(tup, sweep=False)
            if not final_nodes:
                return []
            position = self.position
            outputs: List[object] = []
            extend = outputs.extend
            for node in final_nodes:
                extend(enumerate_node(node, position))
            tally[0] += len(outputs)
            return outputs

        results = self.drive_batch(tuples, step, sweep=sweep)
        return results, tally[0]

    # ----------------------------------------------------------- introspection
    def hash_table_size(self) -> int:
        """Total entries across every active lane's run-index table."""
        return sum(len(lane.hash) for lane in self._lanes.values() if lane.active)

    def memory_info(self) -> Dict[str, int]:
        """Enumeration-structure occupancy aggregated across the lanes.

        The same keys as ``DS_w.memory_stats()`` so a single-lane engine
        reports exactly what its structure would; ``arena`` is 1 only when
        every lane is arena-backed (mixed or object-graph setups report 0,
        matching the ablation flag the engines expose).
        """
        total = {
            "arena": 1 if self._lanes else 0,
            "slabs": 0,
            "slab_capacity": 0,
            "live_nodes": 0,
            "released_slabs": 0,
            "released_nodes": 0,
            "nodes_created": 0,
        }
        for lane in self._lanes.values():
            if lane.ds is None:
                continue
            stats = lane.ds.memory_stats()
            if not stats.get("arena"):
                total["arena"] = 0
            for key in ("slabs", "live_nodes", "released_slabs", "released_nodes", "nodes_created"):
                total[key] += stats[key]
            total["slab_capacity"] = max(total["slab_capacity"], stats["slab_capacity"])
        return total

    def reset_statistics(self) -> None:
        self.stats = EngineStatistics()

    def __repr__(self) -> str:
        return (
            f"StreamRuntime(position={self.position}, lanes={len(self._lanes)}, "
            f"evicted={self.evicted})"
        )


class RuntimeBackedEngine:
    """Mixin: the runtime-delegating surface every engine exposes.

    Requires the subclass to set ``self._runtime`` before use.  Keeping the
    property trio (``position`` / ``evicted`` / ``stats``) and the
    ``_expiry_buckets`` view here means the three engines cannot drift apart
    on this surface — the single-place principle applied to the API, not just
    the sweep.  ``position`` and the counters are settable because the
    differential tests reseat reference evaluators mid-stream
    (``evaluator.position = p - 1``) and benchmarks reset counters.
    """

    _runtime: StreamRuntime

    @property
    def position(self) -> int:
        """Current global stream position (owned by the shared runtime)."""
        return self._runtime.position

    @position.setter
    def position(self, value: int) -> None:
        self._runtime.position = value

    @property
    def evicted(self) -> int:
        """Entries reclaimed by the shared eviction sweep so far."""
        return self._runtime.evicted

    @evicted.setter
    def evicted(self, value: int) -> None:
        self._runtime.evicted = value

    @property
    def stats(self) -> EngineStatistics:
        return self._runtime.stats

    @stats.setter
    def stats(self, value: EngineStatistics) -> None:
        self._runtime.stats = value

    @property
    def _expiry_buckets(self) -> Dict[int, List[Tup[EvictionLane, Hashable, object]]]:
        return self._runtime.buckets

    def memory_info(self) -> Dict[str, int]:
        """Enumeration-structure occupancy aggregated across the engine's lanes."""
        return self._runtime.memory_info()

    def hash_table_size(self) -> int:
        """Total entries across the engine's run-index tables."""
        return self._runtime.hash_table_size()
