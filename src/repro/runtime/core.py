"""`StreamRuntime` / `EvictionLane`: the cross-cutting per-tuple machinery.

See the package docstring (:mod:`repro.runtime`) for the architecture.  The
contract with the engines:

* every entry an engine stores in a lane's ``hash`` maps a key to a
  ``(value, max_start)`` pair whose second element is the cached expiry
  anchor (``max_start`` of the stored node for the hashed engines, the run's
  newest stream position for the general evaluator);
* when the engine stores an entry it appends the *flat int triple*
  ``lane.lane_id, key, node`` (three plain appends, no per-entry tuple) to
  ``buckets[max_start + lane.window + 1]`` (the absolute position at which
  the entry expires) and calls ``lane.add_ref(node)`` — the inlined lines
  every hot loop pays, everything else lives here.
  :meth:`StreamRuntime.register_entry` is the reference implementation;
* the sweep pops due buckets, drops the arena reference exactly once per
  registration, and deletes the hash entry iff it is genuinely out of the
  window *now* (an entry superseded by a younger node was re-registered in a
  later bucket and survives).

Compact bucket representation
-----------------------------
Lanes are interned to dense small ints at :meth:`StreamRuntime.add_lane`
(``lane.lane_id``), and each expiry bucket is one flat list
``[lane_id, key, node, lane_id, key, node, ...]`` instead of a list of
``(lane, key, node)`` tuples.  Registration therefore allocates *nothing*
beyond the (amortised) list growth — the key object already lives in the
lane's hash table, the node is an arena int — and the steady-state sweep
walks the flat list with a stride-3 index loop, so the dominant steady-state
allocation of the tuple layout (one 3-tuple per stored entry per window) is
gone entirely.  ``benchmarks/bench_state_footprint.py`` measures the
difference in both time and allocated blocks.

Expired arena slabs are released by the same sweep: popping a bucket releases
the lanes it touched, and a periodic full pass (every ``release_interval``
positions, a constructor knob defaulting to
:data:`RELEASE_PASS_INTERVAL`) covers lanes that stopped registering
entries — without it an idle lane would retain its last ``O(window)`` of
expired slabs indefinitely.

Snapshot / restore
------------------
:meth:`StreamRuntime.snapshot` / :meth:`StreamRuntime.restore` and
:meth:`EvictionLane.snapshot` / :meth:`EvictionLane.restore` are the
runtime's layers of the cross-layer checkpoint protocol (see
:mod:`repro.runtime.snapshot`): the runtime serialises the stream cursor,
the sweep cursors, the statistics and the expiry buckets (lane ids remapped
through a dense snapshot index, because a restored engine assigns fresh lane
ids); a lane serialises its window, its hash table and its enumeration
structure (which must expose ``snapshot``/``restore`` — the arena does, the
object-graph oracle does not).
"""

from __future__ import annotations

import dataclasses
from time import perf_counter as _perf
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple as Tup, TypeVar

from repro.runtime.statistics import EngineStatistics


#: Default positions between full arena-release passes over every lane.
RELEASE_PASS_INTERVAL = 256

#: Sentinel "never" position for the adaptive-dispatch flush clock: far past
#: any reachable stream position, so the disabled path is one int compare.
_NEVER_ADAPT = 1 << 62

_T = TypeVar("_T")


class EvictionLane:
    """One query's evictable runtime state, shared-sweep ready.

    ``hash`` is the lane's run-index table (``(key) -> (value, max_start)``
    pairs); ``ds`` its enumeration structure.  The reclamation hooks are
    bound once so the per-tuple loops and the sweep never branch on the node
    representation (the object-graph ``DS_w`` exposes them as no-ops).
    ``lane_id`` is the dense int the owning runtime interned the lane to —
    the id the engines append to expiry buckets.  ``on_evict``, when set, is
    called with the hash key of every entry the sweep genuinely evicts (the
    general evaluator drives its per-state ring buffers with it).
    """

    __slots__ = (
        "window",
        "ds",
        "hash",
        "active",
        "lane_id",
        "on_evict",
        "add_ref",
        "drop_ref",
        "release",
    )

    def __init__(self, window: int, ds) -> None:
        self.window = window
        self.ds = ds
        self.hash: Dict[Hashable, Tup[object, int]] = {}
        self.active = True
        self.lane_id = -1  # assigned by StreamRuntime.add_lane
        self.on_evict: Optional[Callable[[Hashable], None]] = None
        self.add_ref = ds.add_ref
        self.drop_ref = ds.drop_ref
        self.release = ds.release_expired

    def deactivate(self) -> None:
        """Drop the lane's state immediately (unregistration).

        Stale expiry-bucket entries may still reference the lane's id for up
        to a window; the sweep skips ids that no longer resolve to an active
        lane instead of scrubbing every bucket eagerly.  Clearing the bound
        hooks matters: they are bound methods and would otherwise pin the
        enumeration structure until the lane's last expiry bucket is popped.
        """
        self.active = False
        self.hash.clear()
        self.ds = None
        self.on_evict = None
        self.add_ref = None
        self.drop_ref = None
        self.release = None

    # ------------------------------------------------------- snapshot protocol
    def snapshot(self) -> Dict[str, object]:
        """The lane's state (window, hash table, enumeration structure).

        Requires a snapshotable enumeration structure — the arena-backed
        ``DS_w``; the object-graph oracle (``arena=False``) has no explicit
        state to capture and is rejected with a clear error.
        """
        ds = self.ds
        ds_snapshot = getattr(ds, "snapshot", None)
        if ds_snapshot is None:
            raise ValueError(
                "snapshot requires the arena-backed enumeration structure "
                "(construct the engine with arena=True)"
            )
        return {
            "window": self.window,
            "hash": [(key, value) for key, value in self.hash.items()],
            "ds": ds_snapshot(),
        }

    def restore(self, snapshot: Dict[str, object]) -> None:
        """Replace the lane's state with ``snapshot``'s, in place."""
        if snapshot["window"] != self.window:
            raise ValueError(
                f"snapshot was taken with window {snapshot['window']}, "
                f"this lane has window {self.window}"
            )
        ds_restore = getattr(self.ds, "restore", None)
        if ds_restore is None:
            raise ValueError(
                "restore requires the arena-backed enumeration structure "
                "(construct the engine with arena=True)"
            )
        ds_restore(snapshot["ds"])
        self.hash.clear()
        for key, value in snapshot["hash"]:
            self.hash[key] = value

    def __repr__(self) -> str:
        state = "active" if self.active else "inactive"
        return f"{type(self).__name__}(window={self.window}, |H|={len(self.hash)}, {state})"


class StreamRuntime:
    """The per-stream core shared by all engines: position, sweep, batching.

    One runtime serves one engine (which may own one lane or thousands).
    Engines advance the position with :meth:`advance`, call :meth:`sweep`
    once per sweeping update, register stored entries into :attr:`buckets`
    (inlined, see the module docstring for the flat-triple protocol), and
    route their ``process_many`` through :meth:`drive_batch` so the
    one-sweep-per-batch policy exists exactly once.

    ``release_interval`` sets the cadence of the periodic full arena-release
    pass (positions between passes; the engines surface it as a constructor
    knob and ``memory_info`` reports it).
    """

    __slots__ = (
        "position",
        "evicted",
        "stats",
        "count_stats",
        "buckets",
        "release_interval",
        "obs",
        "obs_sample_every",
        "obs_arm",
        "obs_next",
        "obs_sweep_sampled",
        "adapt_hook",
        "adapt_interval",
        "_next_adapt",
        "_swept_upto",
        "_next_release_pass",
        "_lanes",
        "_next_lane_id",
    )

    def __init__(self, release_interval: int = RELEASE_PASS_INTERVAL) -> None:
        if release_interval < 1:
            raise ValueError("release_interval must be at least 1 position")
        self.position = -1
        self.evicted = 0
        self.stats = EngineStatistics()
        # Mirror of the owning engine's ``collect_stats``: the sweep's
        # ``sweeps``/``sweep_evicted`` counters are gated on it exactly like
        # every other ``EngineStatistics`` counter (fast mode pays no
        # per-sweep attribute writes).  The engines set it at construction.
        self.count_stats = False
        # The attached repro.obs.Observer, or None.  Every observability hook
        # below hides behind an ``obs is None`` test at batch/sweep/slab
        # granularity — the per-candidate loops never see it, which is the
        # disabled-path overhead contract (BENCH_observability.json).
        self.obs = None
        # Mirror of ``obs.sample_every`` (slot load beats an instance-dict
        # lookup in the per-position sweep); 1 whenever no observer is attached.
        self.obs_sample_every = 1
        # Period-sampling callback: when an observer is attached, ``advance``
        # calls this at each sampled position (begin phase: stamp the clock)
        # and again one position later (finish phase: the interval is the
        # sampled update's latency).  See ``Observer._wrap_entry``.
        self.obs_arm = None
        # The absolute position at which ``advance`` calls ``obs_arm`` next
        # (-1 = never).  Maintained by the observer's period clock, so the
        # per-position cost is one slot load and one int compare — no modulo,
        # no None test — whether or not an observer is attached.
        self.obs_next = -1
        # True only between the begin and finish phases of a sampled period;
        # the sweep keys its (timed, slab-accounting) sampled branch off this
        # single flag instead of re-deriving the sampling grid.
        self.obs_sweep_sampled = False
        # Adaptive-dispatch flush callback (repro.core.adaptive), fired by
        # the sweep every ``adapt_interval`` positions.  ``_next_adapt``
        # mirrors ``_next_release_pass``: a sentinel far future position when
        # no adaptive engine armed it, so the disabled steady-state cost is
        # one slot load and one int compare.
        self.adapt_hook = None
        self.adapt_interval = 0
        self._next_adapt = _NEVER_ADAPT
        # Absolute expiry position -> flat [lane_id, key, node, ...] triples.
        # Entries always register in strictly future buckets (a storable
        # entry satisfies max_start >= position - lane.window), so the sweep
        # can pop the dense range of newly due positions instead of scanning
        # every bucket key.
        self.buckets: Dict[int, List[object]] = {}
        self.release_interval = release_interval
        self._swept_upto = -1
        self._next_release_pass = 0
        # Keyed by the dense interned lane id, which is also what the bucket
        # triples carry — drop_lane stays O(1) (unregistration latency must
        # be independent of how many lanes are registered) and the sweep
        # resolves ids with one small-int dict lookup.
        self._lanes: Dict[int, EvictionLane] = {}
        self._next_lane_id = 0

    # ------------------------------------------------------------- adaptation
    def arm_adapt(self, hook: Callable[[int], None], interval: int) -> None:
        """Arm the adaptive flush clock: call ``hook(position)`` every
        ``interval`` positions from the sweep.  The first flush fires once the
        stream has advanced ``interval`` positions past the current cursor —
        which is also how restore re-seats the clock (learned state resets on
        restore, so the clock is derived, never serialised)."""
        if interval < 1:
            raise ValueError("adapt interval must be at least 1 position")
        self.adapt_hook = hook
        self.adapt_interval = interval
        self._next_adapt = self.position + interval

    def disarm_adapt(self) -> None:
        self.adapt_hook = None
        self.adapt_interval = 0
        self._next_adapt = _NEVER_ADAPT

    # ------------------------------------------------------------------ lanes
    def add_lane(self, lane: EvictionLane) -> EvictionLane:
        """Intern ``lane`` to a dense id and track it for release/reporting.

        Ids are never reused: a stale bucket triple of a dropped lane must
        not resolve to a different lane later (the one-slot-per-ever-
        registered-lane residue this avoids is the dict entry removed by
        :meth:`drop_lane`, i.e. nothing).
        """
        lane_id = self._next_lane_id
        self._next_lane_id = lane_id + 1
        lane.lane_id = lane_id
        self._lanes[lane_id] = lane
        return lane

    def drop_lane(self, lane: EvictionLane) -> None:
        """Deactivate ``lane`` and stop tracking it (unregistration, O(1))."""
        lane.deactivate()
        self._lanes.pop(lane.lane_id, None)

    def lanes(self) -> Sequence[EvictionLane]:
        return tuple(self._lanes.values())

    # --------------------------------------------------------------- position
    def advance(self) -> int:
        """Move to the next stream position and return it."""
        position = self.position + 1
        self.position = position
        if position == self.obs_next:
            self.obs_arm()
        return position

    # ------------------------------------------------------------ registration
    def register_entry(self, lane: EvictionLane, key: Hashable, node: object, expiry_position: int) -> None:
        """Register a stored entry for eviction at ``expiry_position``.

        The reference implementation of the registration protocol — three
        flat appends plus the arena reference — which the engines inline in
        their hot loops (keep the inlined copies in sync with this).
        """
        expiry = self.buckets.get(expiry_position)
        if expiry is None:
            self.buckets[expiry_position] = [lane.lane_id, key, node]
        else:
            expiry.append(lane.lane_id)
            expiry.append(key)
            expiry.append(node)
        lane.add_ref(node)

    # ------------------------------------------------------------------ sweep
    def sweep(self, position: int) -> None:
        """The per-tuple eviction sweep (the only implementation).

        Steady state — exactly one new bucket became due — pops that bucket;
        a gap (updates ran with the sweep deferred, or the position was
        reseated) falls back to the batched range sweep so no bucket is ever
        skipped for good.  Also runs the periodic full arena-release pass.
        The stride-3 loop over the flat bucket allocates no per-entry
        objects.
        """
        if position == self._swept_upto + 1:
            self._swept_upto = position
            expired = self.buckets.pop(position, None)
            if expired:
                if self.obs_sweep_sampled:
                    # Sampled (observer period clock): the timed variant
                    # lives in a cold method so this steady-state loop stays
                    # free of timing and accounting residue.
                    self._sweep_expired_sampled(position, expired)
                else:
                    evicted = 0
                    touched = set()
                    lanes = self._lanes
                    for index in range(0, len(expired), 3):
                        lane = lanes.get(expired[index])
                        if lane is None or not lane.active:
                            continue
                        key = expired[index + 1]
                        lane.drop_ref(expired[index + 2])
                        touched.add(lane)
                        pair = lane.hash.get(key)
                        # The entry may have been superseded by a younger
                        # node (re-registered in a later bucket) — only drop
                        # it if it is genuinely out of the window now.
                        if pair is not None and position - pair[1] > lane.window:
                            del lane.hash[key]
                            evicted += 1
                            hook = lane.on_evict
                            if hook is not None:
                                hook(key)
                    self.evicted += evicted
                    if self.count_stats:
                        stats = self.stats
                        stats.sweeps += 1
                        stats.sweep_evicted += evicted
                    for lane in touched:
                        lane.release(position)
            if position >= self._next_release_pass:
                self.release_lanes(position)
            if position >= self._next_adapt:
                self._next_adapt = position + self.adapt_interval
                self.adapt_hook(position)
        elif position > self._swept_upto:
            self.sweep_upto(position)

    def _sweep_expired_sampled(self, position: int, expired: List[object]) -> None:
        """The timed twin of :meth:`sweep`'s steady-state branch.

        Runs only while the observer's period clock has ``obs_sweep_sampled``
        set: same eviction semantics, plus sweep timing, released-slab
        accounting and the observer's ``on_sweep`` span.
        """
        start = _perf()
        evicted = 0
        touched = set()
        lanes = self._lanes
        for index in range(0, len(expired), 3):
            lane = lanes.get(expired[index])
            if lane is None or not lane.active:
                continue
            key = expired[index + 1]
            lane.drop_ref(expired[index + 2])
            touched.add(lane)
            pair = lane.hash.get(key)
            if pair is not None and position - pair[1] > lane.window:
                del lane.hash[key]
                evicted += 1
                hook = lane.on_evict
                if hook is not None:
                    hook(key)
        self.evicted += evicted
        if self.count_stats:
            stats = self.stats
            stats.sweeps += 1
            stats.sweep_evicted += evicted
        obs = self.obs
        released = 0
        for lane in touched:
            released += lane.release(position)
        if released:
            obs.on_slab_release(released, position)
        elapsed = _perf() - start
        self.stats.sweep_seconds += elapsed
        obs.on_sweep(position, evicted, elapsed)

    def sweep_upto(self, position: int) -> None:
        """Pop every expiry bucket due at or before ``position`` (batch sweep).

        Iterates the dense range of positions not yet swept, so the cost is
        O(positions advanced since the last sweep), not O(live buckets).
        """
        if position <= self._swept_upto:
            return
        obs = self.obs
        start = _perf() if obs is not None else 0.0
        buckets = self.buckets
        lanes = self._lanes
        evicted = 0
        swept = 0
        touched = set()
        for bucket in range(self._swept_upto + 1, position + 1):
            expired = buckets.pop(bucket, None)
            if not expired:
                continue
            swept += 1
            for index in range(0, len(expired), 3):
                lane = lanes.get(expired[index])
                if lane is None or not lane.active:
                    continue
                key = expired[index + 1]
                lane.drop_ref(expired[index + 2])
                touched.add(lane)
                pair = lane.hash.get(key)
                if pair is not None and position - pair[1] > lane.window:
                    del lane.hash[key]
                    evicted += 1
                    hook = lane.on_evict
                    if hook is not None:
                        hook(key)
        self._swept_upto = position
        self.evicted += evicted
        if self.count_stats:
            stats = self.stats
            stats.sweeps += swept
            stats.sweep_evicted += evicted
        if obs is not None and swept:
            released = 0
            for lane in touched:
                released += lane.release(position)
            if released:
                obs.on_slab_release(released, position)
            elapsed = _perf() - start
            self.stats.sweep_seconds += elapsed
            obs.on_sweep(position, evicted, elapsed)
        else:
            for lane in touched:
                lane.release(position)
        if position >= self._next_release_pass:
            self.release_lanes(position)
        if position >= self._next_adapt:
            self._next_adapt = position + self.adapt_interval
            self.adapt_hook(position)

    def release_lanes(self, position: int) -> None:
        """Release expired arena slabs in every active lane.

        Bucket pops release the lanes they touch immediately; this periodic
        full pass (every ``release_interval`` positions, amortised
        O(lanes / interval) per tuple) covers lanes that stopped registering
        entries.
        """
        self._next_release_pass = position + self.release_interval
        obs = self.obs
        if obs is None:
            for lane in self._lanes.values():
                if lane.active:
                    lane.release(position)
            return
        released = 0
        for lane in self._lanes.values():
            if lane.active:
                released += lane.release(position)
        if released:
            obs.on_slab_release(released, position)

    # --------------------------------------------------------------- batching
    def drive_batch(
        self,
        tuples: Iterable[object],
        step: Callable[[object], _T],
        sweep: bool = True,
    ) -> List[_T]:
        """Batched ingestion: one ``step`` per tuple, one sweep per batch.

        ``step`` must process exactly one tuple with its per-tuple sweep
        deferred (the engines pass a closure over ``update(tup, sweep=False)``
        plus their enumeration).  Deferring the sweep to the end of the batch
        only delays memory reclamation, never changes outputs, because expiry
        is re-checked at every hash lookup through the cached ``max_start``.
        """
        obs = self.obs
        if obs is None:
            results = [step(tup) for tup in tuples]
            if sweep:
                self.sweep_upto(self.position)
            return results
        start = _perf()
        results = [step(tup) for tup in tuples]
        if sweep:
            self.sweep_upto(self.position)
        obs.on_batch(len(results), _perf() - start, self.position)
        return results

    def drive_enumerating_batch(
        self,
        tuples: Iterable[object],
        update: Callable[..., Sequence[object]],
        enumerate_node: Callable[[object, int], Iterable[object]],
        sweep: bool = True,
    ) -> Tup[List[List[object]], int]:
        """:meth:`drive_batch` specialised for single-lane engines.

        Runs ``update(tup, sweep=False)`` followed by eager enumeration of
        the returned final nodes per tuple, returning the per-tuple output
        lists and the total output count (for the caller's one-per-batch
        statistics flush).  Shared by ``StreamingEvaluator.process_many`` and
        ``GeneralStreamingEvaluator.process_many`` so the batched
        update-then-enumerate loop exists exactly once.
        """
        tally = [0]

        def step(tup: object) -> List[object]:
            final_nodes = update(tup, sweep=False)
            if not final_nodes:
                return []
            position = self.position
            outputs: List[object] = []
            extend = outputs.extend
            for node in final_nodes:
                extend(enumerate_node(node, position))
            tally[0] += len(outputs)
            return outputs

        results = self.drive_batch(tuples, step, sweep=sweep)
        return results, tally[0]

    # ------------------------------------------------- lane-subset extraction
    def extract_bucket_entries(self, lane_index: Dict[int, int]) -> Dict[int, List[object]]:
        """The expiry-bucket triples of a *subset* of lanes, non-destructively.

        ``lane_index`` maps interned lane ids to the dense subset indexes the
        caller assigns (the lane-subset snapshot protocol behind query
        migration — :meth:`MultiQueryEngine.extract_queries
        <repro.multi.engine.MultiQueryEngine.extract_queries>`).  Triples of
        other lanes are left untouched; the extracted lanes' triples stay in
        this runtime too (the caller typically unregisters the lanes next,
        after which the sweep skips the stale ids).  Entries always sit in
        strictly future buckets, so every extracted triple is re-absorbable
        by a runtime standing at the same position.
        """
        extracted: Dict[int, List[object]] = {}
        for expiry_position, entries in self.buckets.items():
            flat: List[object] = []
            for index in range(0, len(entries), 3):
                mapped = lane_index.get(entries[index])
                if mapped is None:
                    continue
                flat.append(mapped)
                flat.append(entries[index + 1])
                flat.append(entries[index + 2])
            if flat:
                extracted[expiry_position] = flat
        return extracted

    def absorb_bucket_entries(
        self, buckets: Dict[int, List[object]], lanes_by_index: Sequence[EvictionLane]
    ) -> None:
        """Merge extracted bucket triples into this runtime's expiry map.

        ``lanes_by_index`` mirrors the ``lane_index`` the triples were
        extracted with.  No arena references are taken here: the extracted
        lanes' enumeration-structure snapshots carry their refcounts, exactly
        as in a full :meth:`restore`.  Every absorbed bucket must still be in
        the future — an already-swept expiry position would leak its entries
        (and their refcounts) forever, so it is rejected.
        """
        own = self.buckets
        for expiry_position, entries in buckets.items():
            expiry_position = int(expiry_position)
            if expiry_position <= self._swept_upto:
                raise ValueError(
                    f"cannot absorb expiry bucket {expiry_position}: this runtime "
                    f"already swept up to {self._swept_upto} (positions must be "
                    "synchronised before migrating lanes)"
                )
            target = own.get(expiry_position)
            if target is None:
                target = own[expiry_position] = []
            for index in range(0, len(entries), 3):
                target.append(lanes_by_index[entries[index]].lane_id)
                target.append(entries[index + 1])
                target.append(entries[index + 2])

    # ------------------------------------------------------- snapshot protocol
    def snapshot(self, lane_index: Dict[int, int]) -> Dict[str, object]:
        """The runtime's state, with lane ids remapped through ``lane_index``.

        ``lane_index`` maps this runtime's interned lane ids to the dense
        snapshot indexes the owning engine assigns (registration order); a
        bucket triple whose lane id is absent belongs to a dropped lane and
        is omitted — the sweep would have skipped it anyway.
        """
        buckets: Dict[int, List[object]] = {}
        for expiry_position, entries in self.buckets.items():
            flat: List[object] = []
            for index in range(0, len(entries), 3):
                mapped = lane_index.get(entries[index])
                if mapped is None:
                    continue
                flat.append(mapped)
                flat.append(entries[index + 1])
                flat.append(entries[index + 2])
            if flat:
                buckets[expiry_position] = flat
        return {
            "position": self.position,
            "evicted": self.evicted,
            "swept_upto": self._swept_upto,
            "next_release_pass": self._next_release_pass,
            "release_interval": self.release_interval,
            "stats": dataclasses.asdict(self.stats),
            "buckets": buckets,
        }

    def restore(self, snapshot: Dict[str, object], lanes_by_index: Sequence[EvictionLane]) -> None:
        """Replace the runtime's state with ``snapshot``'s.

        ``lanes_by_index`` positions must mirror the ``lane_index`` mapping
        the snapshot was taken with (the engine passes its lanes in
        registration order on both sides).
        """
        self.position = int(snapshot["position"])
        self.evicted = int(snapshot["evicted"])
        self._swept_upto = int(snapshot["swept_upto"])
        self._next_release_pass = int(snapshot["next_release_pass"])
        self.release_interval = int(snapshot["release_interval"])
        self.stats = EngineStatistics(**snapshot["stats"])
        buckets: Dict[int, List[object]] = {}
        for expiry_position, entries in snapshot["buckets"].items():
            flat: List[object] = []
            for index in range(0, len(entries), 3):
                flat.append(lanes_by_index[entries[index]].lane_id)
                flat.append(entries[index + 1])
                flat.append(entries[index + 2])
            buckets[int(expiry_position)] = flat
        self.buckets = buckets

    # ----------------------------------------------------------- introspection
    def hash_table_size(self) -> int:
        """Total entries across every active lane's run-index table."""
        return sum(len(lane.hash) for lane in self._lanes.values() if lane.active)

    def memory_info(self) -> Dict[str, int]:
        """Enumeration-structure occupancy aggregated across the lanes.

        The same keys as ``DS_w.memory_stats()`` so a single-lane engine
        reports exactly what its structure would; ``arena`` is 1 only when
        every lane is arena-backed (mixed or object-graph setups report 0,
        matching the ablation flag the engines expose), ``columnar``
        likewise only when every lane's arena packs its columns, and
        ``native`` only when every lane's hot path runs the C kernel.
        ``release_interval`` surfaces the periodic-release cadence knob.
        """
        total = {
            "arena": 1 if self._lanes else 0,
            "columnar": 1 if self._lanes else 0,
            "native": 1 if self._lanes else 0,
            "slabs": 0,
            "slab_capacity": 0,
            "live_nodes": 0,
            "released_slabs": 0,
            "released_nodes": 0,
            "nodes_created": 0,
            "release_interval": self.release_interval,
        }
        for lane in self._lanes.values():
            if lane.ds is None:
                continue
            stats = lane.ds.memory_stats()
            if not stats.get("arena"):
                total["arena"] = 0
            if not stats.get("columnar"):
                total["columnar"] = 0
            if not stats.get("native"):
                total["native"] = 0
            for key in ("slabs", "live_nodes", "released_slabs", "released_nodes", "nodes_created"):
                total[key] += stats[key]
            total["slab_capacity"] = max(total["slab_capacity"], stats["slab_capacity"])
        return total

    def reset_statistics(self) -> None:
        self.stats = EngineStatistics()

    def __repr__(self) -> str:
        return (
            f"StreamRuntime(position={self.position}, lanes={len(self._lanes)}, "
            f"evicted={self.evicted})"
        )


class RuntimeBackedEngine:
    """Mixin: the runtime-delegating surface every engine exposes.

    Requires the subclass to set ``self._runtime`` before use.  Keeping the
    property trio (``position`` / ``evicted`` / ``stats``) and the
    ``_expiry_buckets`` view here means the three engines cannot drift apart
    on this surface — the single-place principle applied to the API, not just
    the sweep.  ``position`` and the counters are settable because the
    differential tests reseat reference evaluators mid-stream
    (``evaluator.position = p - 1``) and benchmarks reset counters.
    """

    _runtime: StreamRuntime

    @property
    def position(self) -> int:
        """Current global stream position (owned by the shared runtime)."""
        return self._runtime.position

    @position.setter
    def position(self, value: int) -> None:
        self._runtime.position = value

    @property
    def evicted(self) -> int:
        """Entries reclaimed by the shared eviction sweep so far."""
        return self._runtime.evicted

    @evicted.setter
    def evicted(self, value: int) -> None:
        self._runtime.evicted = value

    @property
    def stats(self) -> EngineStatistics:
        return self._runtime.stats

    @stats.setter
    def stats(self, value: EngineStatistics) -> None:
        self._runtime.stats = value

    @property
    def _expiry_buckets(self) -> Dict[int, List[object]]:
        return self._runtime.buckets

    def memory_info(self) -> Dict[str, int]:
        """Enumeration-structure occupancy aggregated across the engine's lanes."""
        return self._runtime.memory_info()

    def hash_table_size(self) -> int:
        """Total entries across the engine's run-index tables."""
        return self._runtime.hash_table_size()

    def kernel_info(self) -> Dict[str, object]:
        """Which record-operation backend this engine's hot path runs.

        :func:`repro.core.kernel.backend_info` (what the process *can* run)
        plus ``"active"`` — the backend the engine's data structures actually
        resolved to: ``"python"`` / ``"native"`` for arena lanes, ``"object"``
        for the object-graph ablation structure, ``"mixed"`` if lanes differ.
        """
        from repro.core.kernel import backend_info

        info = backend_info()
        active = {
            getattr(lane.ds, "kernel", "object")
            for lane in self._runtime._lanes.values()
            if lane.ds is not None
        }
        if not active:
            info["active"] = "object"
        elif len(active) == 1:
            info["active"] = active.pop()
        else:
            info["active"] = "mixed"
        return info

    # -------------------------------------------------------------- dispatch
    def _dispatch_source(self):
        """The engine's dispatch index (each engine points at its own)."""
        raise NotImplementedError

    def dispatch_info(self) -> Dict[str, float]:
        """Dispatch-index layout/sharing statistics.

        One shared implementation over :meth:`_dispatch_source`, so the key
        set is identical across all three engines (``describe()`` of the
        single-automaton and merged indexes agree on keys by contract) and
        the CLI ``--stats`` dispatch line never drifts between modes.
        """
        return self._dispatch_source().describe()

    def relation_fanout(self) -> Dict[str, int]:
        """Per-relation candidate fan-out (``"*"`` = wildcard fallback)."""
        return self._dispatch_source().relation_fanout()

    # --------------------------------------------------------- observability
    def observe(self) -> Dict[str, object]:
        """One point-in-time snapshot of every introspection surface.

        Folds ``stats`` / ``dispatch_info`` / ``memory_info`` /
        ``kernel_info`` (plus the cursor counters and, for single-structure
        engines, the enumeration-structure counters) into a single dict —
        the one shape :func:`~repro.bench.harness.collect_engine_counters`
        and the :meth:`repro.obs.Observer.observe_engine` gauge refresh
        consume.
        """
        runtime = self._runtime
        snapshot: Dict[str, object] = {
            "engine": type(self).__name__,
            "position": runtime.position,
            "hash_entries": runtime.hash_table_size(),
            "evicted": runtime.evicted,
            "stats": dataclasses.asdict(runtime.stats),
            "dispatch": self.dispatch_info(),
            "fanout": self.relation_fanout(),
            "memory": self.memory_info(),
            "kernel": self.kernel_info(),
        }
        ds = getattr(self, "ds", None)
        if ds is not None and hasattr(ds, "nodes_created"):
            snapshot["ds"] = {
                "nodes_created": ds.nodes_created,
                "union_calls": getattr(ds, "union_calls", 0),
                "union_copies": getattr(ds, "union_copies", 0),
            }
        adaptive = self.adaptive_info()
        if adaptive is not None:
            snapshot["adaptive"] = adaptive
        return snapshot

    def adaptive_info(self) -> Optional[Dict[str, object]]:
        """The adaptive-dispatch summary, or ``None`` when not enabled.

        See :meth:`repro.core.adaptive.AdaptiveState.info` for the keys.
        """
        state = getattr(self, "_adaptive", None)
        return state.info() if state is not None else None

    def ingest_batch(self, tuples: Sequence[object]):
        """The network front end's batch-drain hook.

        Returns ``(base_position, outputs)`` where ``outputs`` is whatever
        the engine's ``process_many`` produces and ``base_position`` is the
        stream position assigned to ``tuples[0]`` — so a caller that did
        not count tuples itself (the ingest server coalescing frames from
        many connections) can stamp every output with its global position.
        """
        base = self._runtime.position + 1
        return base, self.process_many(tuples)

    def attach_observer(self, observer) -> None:
        """Attach a :class:`repro.obs.Observer` (see its ``attach``)."""
        observer.attach(self)

    def detach_observer(self) -> None:
        """Detach the current observer, if any (restores the plain hot path)."""
        observer = getattr(self, "_observer", None)
        if observer is not None:
            observer.detach(self)

    @property
    def observer(self):
        """The attached :class:`repro.obs.Observer`, or ``None``."""
        return getattr(self, "_observer", None)
