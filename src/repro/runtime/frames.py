"""The shared wire codec: length-prefixed pickled frames.

Every message between two repro processes — a shard coordinator and its
workers over a ``multiprocessing`` pipe, or a network client and the
ingestion server over a TCP socket — is one **frame**::

    +----------------+------------------------------------+
    | length (4B !I) | pickle.dumps(message, HIGHEST)     |
    +----------------+------------------------------------+

The 4-byte big-endian length prefix covers the pickled body only.  Messages
are plain tuples ``(command, *args)`` — no engine objects, no callables —
so a frame is decodable by any process that imports :mod:`repro` (spawn
start method included; nothing in a frame depends on inherited process
state).  ``pickle.HIGHEST_PROTOCOL`` is pinned deliberately: protocol 5
frames out-of-band-encode the large ``bytes``/``array`` payloads inside
lane snapshots, and both ends of a pipe are by construction the same
interpreter version.

Two transports share this codec:

* **Message-oriented pipes** (:class:`multiprocessing.connection.Connection`,
  the ends of a ``multiprocessing.Pipe``).  The connection delivers whole
  frames, so the length prefix is *verified* on receipt — a mismatch means
  a torn or corrupted frame and raises :class:`FrameProtocolError` instead
  of unpickling garbage.  :class:`FrameChannel` wraps this transport.
* **Byte streams** (TCP sockets).  The stream delivers arbitrary chunks, so
  the prefix is the *delimiter*: read 4 bytes, validate the length against
  :data:`MAX_FRAME_BYTES` **before** allocating or reading the body
  (:func:`frame_length`), then read exactly that many bytes and decode them
  (:func:`decode_body`).  :class:`FrameAssembler` implements the
  reassembly state machine for synchronous readers; asyncio readers use
  ``readexactly`` with the same two helpers.

:meth:`FrameChannel.send_raw`/:meth:`recv_raw` expose the encoded-bytes
layer so a broadcast frame can be encoded **once** and the same bytes
written to every peer — the coordinator's batch broadcast and the ingest
server's match fan-out both depend on it.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Iterator, Optional, Tuple

#: Frames are pickled with the highest protocol available — both pipe ends
#: are the same interpreter, and protocol 5 keeps large snapshot buffers as
#: single contiguous writes.
PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

_LENGTH = struct.Struct("!I")

#: Size in bytes of the frame length prefix.
HEADER_SIZE = _LENGTH.size

#: Maximum frame body accepted on receipt (a corrupted length prefix must
#: not trigger a multi-gigabyte allocation).  1 GiB is far above any real
#: frame — a full 1024-query engine snapshot measures in the tens of MB.
MAX_FRAME_BYTES = 1 << 30


class FrameProtocolError(RuntimeError):
    """A frame failed to encode, frame, or decode."""


class WorkerDied(RuntimeError):
    """The peer end of a shard channel is gone (EOF / broken pipe)."""


def encode_frame(message: Any) -> bytes:
    """One length-prefixed pickled frame for ``message``."""
    try:
        body = pickle.dumps(message, protocol=PICKLE_PROTOCOL)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        raise FrameProtocolError(f"message is not picklable: {exc}") from exc
    return _LENGTH.pack(len(body)) + body


def frame_length(header: bytes, max_frame_bytes: int = MAX_FRAME_BYTES) -> int:
    """Body length promised by a 4-byte ``header``, validated against the cap.

    Stream transports call this before reading (or allocating) the body, so
    a corrupted or hostile prefix is rejected without buffering anything.
    """
    if len(header) != HEADER_SIZE:
        raise FrameProtocolError(
            f"frame header is {len(header)} bytes, expected {HEADER_SIZE}"
        )
    (length,) = _LENGTH.unpack(header)
    if length > max_frame_bytes:
        raise FrameProtocolError(f"frame of {length} bytes exceeds the cap")
    return length


def decode_body(body: bytes) -> Any:
    """Unpickle a frame body whose length was already validated."""
    try:
        return pickle.loads(body)
    except Exception as exc:  # unpickling raises a zoo of exception types
        raise FrameProtocolError(f"frame body does not unpickle: {exc}") from exc


def decode_frame(frame: bytes) -> Any:
    """Decode one whole frame, verifying the length prefix against the body."""
    if len(frame) < HEADER_SIZE:
        raise FrameProtocolError(
            f"frame of {len(frame)} bytes is shorter than the length prefix"
        )
    (length,) = _LENGTH.unpack_from(frame)
    body = len(frame) - HEADER_SIZE
    if length != body:
        raise FrameProtocolError(
            f"frame length prefix says {length} bytes, body holds {body}"
        )
    if length > MAX_FRAME_BYTES:
        raise FrameProtocolError(f"frame of {length} bytes exceeds the cap")
    return decode_body(frame[HEADER_SIZE:])


class FrameAssembler:
    """Reassemble frames from an arbitrary-chunked byte stream.

    Feed whatever the socket returned; iterate the decoded messages that
    completed.  The length prefix is validated as soon as its 4 bytes are
    available — an oversized frame raises :class:`FrameProtocolError`
    *before* its body is buffered, so a hostile peer cannot balloon the
    reassembly buffer past ``max_frame_bytes`` plus one socket read.

    Counts frames and bytes received, mirroring :class:`FrameChannel`.
    """

    __slots__ = ("_buffer", "_need", "max_frame_bytes", "frames_received", "bytes_received")

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self._need: Optional[int] = None  # body length once the header parsed
        self.max_frame_bytes = max_frame_bytes
        self.frames_received = 0
        self.bytes_received = 0

    def feed(self, chunk: bytes) -> Iterator[Any]:
        """Absorb ``chunk``; yield every message completed by it, in order."""
        self.bytes_received += len(chunk)
        self._buffer.extend(chunk)
        while True:
            if self._need is None:
                if len(self._buffer) < HEADER_SIZE:
                    return
                self._need = frame_length(
                    bytes(self._buffer[:HEADER_SIZE]), self.max_frame_bytes
                )
                del self._buffer[:HEADER_SIZE]
            if len(self._buffer) < self._need:
                return
            body = bytes(self._buffer[: self._need])
            del self._buffer[: self._need]
            self._need = None
            self.frames_received += 1
            yield decode_body(body)

    def pending(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)


class FrameChannel:
    """Framed messaging over one ``multiprocessing`` pipe connection.

    Counts frames and bytes in both directions (the coordinator surfaces
    the totals through ``observe()`` / ``--stats``).
    """

    __slots__ = ("connection", "frames_sent", "frames_received", "bytes_sent", "bytes_received")

    def __init__(self, connection) -> None:
        self.connection = connection
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    # ------------------------------------------------------------- raw layer
    def send_raw(self, frame: bytes) -> None:
        """Write an already-encoded frame (broadcast path: encode once)."""
        try:
            self.connection.send_bytes(frame)
        except (BrokenPipeError, ConnectionResetError, OSError, EOFError) as exc:
            raise WorkerDied(f"peer is gone: {exc!r}") from exc
        self.frames_sent += 1
        self.bytes_sent += len(frame)

    def recv_raw(self) -> bytes:
        """Block for the next frame's raw bytes (prefix not yet verified)."""
        try:
            frame = self.connection.recv_bytes()
        except (EOFError, ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise WorkerDied(f"peer is gone: {exc!r}") from exc
        self.frames_received += 1
        self.bytes_received += len(frame)
        return frame

    # --------------------------------------------------------- message layer
    def send(self, message: Any) -> None:
        self.send_raw(encode_frame(message))

    def recv(self) -> Any:
        return decode_frame(self.recv_raw())

    def poll(self, timeout: float = 0.0) -> bool:
        """Whether a frame is ready (never blocks past ``timeout``)."""
        try:
            return self.connection.poll(timeout)
        except (BrokenPipeError, ConnectionResetError, OSError, EOFError):
            return False

    def close(self) -> None:
        try:
            self.connection.close()
        except OSError:
            pass

    def counters(self) -> Tuple[int, int, int, int]:
        return (self.frames_sent, self.frames_received, self.bytes_sent, self.bytes_received)

    def __repr__(self) -> str:
        return (
            f"FrameChannel(sent={self.frames_sent}/{self.bytes_sent}B, "
            f"received={self.frames_received}/{self.bytes_received}B)"
        )
