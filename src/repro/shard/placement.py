"""Placement policies: which shard owns a newly registered query.

The coordinator asks its policy once per registration (and never again —
later *rebalancing* is an explicit :meth:`ShardedEngine.rebalance
<repro.shard.coordinator.ShardedEngine.rebalance>` call, so placement stays
a pure function of registration-time information).  Policies see the handle
being placed and the current per-shard query counts; they must return a
shard index in ``range(shards)``.

:class:`HashPlacement` is the default: deterministic, stateless, and — via
a multiplicative mix of the handle id — spreads consecutively allocated ids
across shards, so the grouped workloads (where neighbouring ids share a
relation alphabet) don't pile one group onto one shard.
"""

from __future__ import annotations

from typing import Sequence

from repro.multi.registry import QueryHandle


class PlacementPolicy:
    """Strategy interface: ``assign`` a registered query to a shard."""

    def assign(self, handle: QueryHandle, shards: int, loads: Sequence[int]) -> int:
        """The shard (``0 <= index < shards``) that should own ``handle``.

        ``loads`` is the current number of queries per shard; stateless
        policies are free to ignore it.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return type(self).__name__


class HashPlacement(PlacementPolicy):
    """Deterministic spread of handle ids across shards (the default).

    Knuth's multiplicative hash of the id, reduced mod ``shards`` — handle
    ids are never reused, so a query keeps its shard for its whole life and
    a re-registered query (new id) may land elsewhere.
    """

    _MIX = 2654435761  # 2**32 / golden ratio, odd

    def assign(self, handle: QueryHandle, shards: int, loads: Sequence[int]) -> int:
        return ((handle.id * self._MIX) & 0xFFFFFFFF) % shards


class RoundRobinPlacement(PlacementPolicy):
    """Cycle through the shards in registration order (stateful)."""

    def __init__(self) -> None:
        self._next = 0

    def assign(self, handle: QueryHandle, shards: int, loads: Sequence[int]) -> int:
        index = self._next % shards
        self._next = index + 1
        return index


class LeastLoadedPlacement(PlacementPolicy):
    """Place on the shard currently owning the fewest queries.

    Ties break toward the lowest shard index, so placement is deterministic
    for a given registration sequence.
    """

    def assign(self, handle: QueryHandle, shards: int, loads: Sequence[int]) -> int:
        return min(range(shards), key=lambda index: (loads[index], index))
