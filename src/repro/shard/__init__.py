"""Sharded multi-process evaluation: N workers, one engine's semantics.

The coordinator (:class:`ShardedEngine`) partitions registered queries
across worker processes and broadcasts every stream batch to all of them,
so each worker advances through the same global stream positions while
evaluating only its shard's queries — client-visible output is exactly a
single :class:`~repro.multi.engine.MultiQueryEngine`'s, with the per-tuple
work divided by the worker count.  Live rebalancing and worker-death
recovery ride on the lane-subset snapshot machinery
(:meth:`MultiQueryEngine.extract_queries
<repro.multi.engine.MultiQueryEngine.extract_queries>` /
:meth:`adopt_queries <repro.multi.engine.MultiQueryEngine.adopt_queries>`)
and lose or duplicate nothing.  See the README's "Scaling out" section.
"""

from repro.shard.coordinator import ShardedEngine, ShardError
from repro.shard.frames import (
    FrameChannel,
    FrameProtocolError,
    PICKLE_PROTOCOL,
    WorkerDied,
    decode_frame,
    encode_frame,
)
from repro.shard.placement import (
    HashPlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
)
from repro.shard.worker import ShardWorker, worker_main

#: Role-named alias for the coordinator (the class name mirrors the engines'
#: API surface, which is how client code mostly uses it).
ShardCoordinator = ShardedEngine

__all__ = [
    "ShardedEngine",
    "ShardCoordinator",
    "ShardError",
    "ShardWorker",
    "worker_main",
    "PlacementPolicy",
    "HashPlacement",
    "RoundRobinPlacement",
    "LeastLoadedPlacement",
    "FrameChannel",
    "FrameProtocolError",
    "WorkerDied",
    "PICKLE_PROTOCOL",
    "encode_frame",
    "decode_frame",
]
