"""The shard coordinator: one client-facing engine over N worker processes.

:class:`ShardedEngine` partitions registered queries across worker processes
(each running one :class:`~repro.multi.engine.MultiQueryEngine` behind
:func:`~repro.shard.worker.worker_main`) and broadcasts every stream batch to
every worker.  Broadcasting is the exactness trick: all workers advance
through the *same* global stream positions, so per-query ``max_start``
eviction, match positions and batched-sweep timing are bit-identical to a
single shared engine — the only thing divided by N is the per-tuple
evaluation work, because each worker owns only its shard's query lanes.
Matches fan back in keyed by the coordinator's *global* handle ids, so
``process_many`` returns exactly what one big ``MultiQueryEngine`` would.

Exactness under failure and rebalancing
---------------------------------------
The coordinator keeps, per shard, a command log of every state-changing
frame since that shard's last checkpoint (batch frames are shared between
the logs — one encoded frame object, N references).  Worker replies are the
*only* thing that mutates coordinator state, and every worker command is
deterministic, so:

* **rebalance** — moving queries is an ``extract`` on the source (lane-subset
  snapshot out, lanes dropped) and an ``adopt`` on the target, both between
  batches where every worker sits at the same stream position.  The adopted
  lanes carry their hash tables, enumeration structures and expiry buckets,
  so no match is lost; the source dropped them atomically, so none is
  duplicated.
* **worker death** — detected as a broken pipe; the coordinator spawns a
  fresh worker, re-registers the shard's checkpoint roster, restores the
  checkpoint snapshot, then replays the log.  Replayed batch replies are
  discarded except the last (the batch in flight when the worker died), so
  the client sees each match exactly once.  With no checkpoint taken yet the
  log reaches back to the shard's birth and replay alone reconstructs it.

Queries must be *picklable* specifications (query strings,
:class:`~repro.cq.query.ConjunctiveQuery` objects, DSL patterns or PCEAs
without closure predicates) — they cross the process boundary in frames.
Raises :class:`~repro.shard.frames.FrameProtocolError` at registration
otherwise, with the registry rolled back.

``start_method="inline"`` runs the shards in-process behind the same frame
codec — no processes, same message semantics — which is what the
differential and hypothesis tests drive (and a useful single-process
debugging mode).
"""

from __future__ import annotations

import multiprocessing
from collections import deque
from time import perf_counter, process_time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple as Tup

from repro.cq.schema import Tuple
from repro.multi.registry import QueryHandle, QueryRegistry, QuerySpec
from repro.runtime.statistics import EngineStatistics
from repro.shard.frames import FrameChannel, WorkerDied, decode_frame, encode_frame
from repro.shard.placement import HashPlacement, PlacementPolicy
from repro.shard.worker import ShardWorker, worker_main
from repro.valuation import Valuation


class ShardError(RuntimeError):
    """A worker rejected a command (the reply was an ``error`` frame)."""


class _InlineChannel:
    """A ``FrameChannel`` look-alike driving a :class:`ShardWorker` in-process.

    Frames still round-trip through :func:`encode_frame`/:func:`decode_frame`
    (so inline mode exercises the exact wire representation, protocol pins
    included); only the pipe and the process are elided.  Tests flip
    :attr:`dead` to simulate a crashed worker and exercise recovery without
    paying process spawns.
    """

    __slots__ = (
        "worker",
        "dead",
        "_replies",
        "frames_sent",
        "frames_received",
        "bytes_sent",
        "bytes_received",
    )

    def __init__(self, worker: ShardWorker) -> None:
        self.worker = worker
        self.dead = False
        self._replies: deque = deque()
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def send_raw(self, frame: bytes) -> None:
        if self.dead:
            raise WorkerDied("inline worker was marked dead")
        self.frames_sent += 1
        self.bytes_sent += len(frame)
        start = process_time()
        try:
            reply = self.worker.handle(decode_frame(frame))
        except Exception as exc:  # mirror worker_main's containment
            reply = ("error", f"{type(exc).__name__}: {exc}")
        encoded = encode_frame(reply)
        self.worker.busy_seconds += process_time() - start
        self._replies.append(encoded)

    def recv_raw(self) -> bytes:
        if self.dead:
            raise WorkerDied("inline worker was marked dead")
        frame = self._replies.popleft()
        self.frames_received += 1
        self.bytes_received += len(frame)
        return frame

    def close(self) -> None:
        self._replies.clear()


class _Shard:
    """One shard's coordinator-side bookkeeping."""

    __slots__ = ("index", "process", "channel", "roster", "log")

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None  # multiprocessing.Process, or None inline
        self.channel = None  # FrameChannel or _InlineChannel
        self.roster: List[int] = []  # global ids owned, registration order
        self.log: List[bytes] = []  # frames since the last checkpoint


class ShardedEngine:
    """Parallel multi-query evaluation: N workers, one engine's semantics.

    Parameters
    ----------
    workers:
        Number of shards (worker processes).
    placement:
        :class:`~repro.shard.placement.PlacementPolicy` deciding which shard
        owns each newly registered query (:class:`HashPlacement` default).
    start_method:
        ``"spawn"`` (default; safest, exercised by the spawn-safety tests),
        ``"fork"``/``"forkserver"`` where the platform offers them, or
        ``"inline"`` for in-process shards behind the same frame codec.
    checkpoint_interval:
        Take a coordinator checkpoint automatically every this many stream
        positions (``None`` disables; :meth:`checkpoint` is always available
        explicitly).  Checkpoints bound the log replayed on worker death.
    memoise / guards / collect_stats / arena / columnar / kernel:
        Forwarded to every worker's ``MultiQueryEngine``.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        placement: Optional[PlacementPolicy] = None,
        start_method: str = "spawn",
        checkpoint_interval: Optional[int] = None,
        memoise: bool = True,
        guards: bool = True,
        collect_stats: bool = False,
        arena: bool = True,
        columnar: bool = True,
        kernel: Optional[str] = None,
        adaptive: object = True,
    ) -> None:
        if workers < 1:
            raise ValueError("a sharded engine needs at least 1 worker")
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be at least 1 position")
        self._config = {
            "memoise": memoise,
            "guards": guards,
            "collect_stats": collect_stats,
            "arena": arena,
            "columnar": columnar,
            "kernel": kernel,
            "adaptive": adaptive,
        }
        self._placement = placement if placement is not None else HashPlacement()
        self._start_method = start_method
        self._ctx = None if start_method == "inline" else multiprocessing.get_context(start_method)
        self._registry = QueryRegistry()  # allocates the *global* handle ids
        self._specs: Dict[int, Tup[str, int, QuerySpec]] = {}  # gid -> (name, window, spec)
        self._assignment: Dict[int, int] = {}  # gid -> shard index
        self._checkpoints: Dict[int, Dict[str, Any]] = {}  # shard index -> ckpt
        self._checkpoint_interval = checkpoint_interval
        self._last_checkpoint = -1
        self._position = -1  # mirrors every worker's stream position
        self._observer = None
        self._closed = False
        self.rebalances = 0
        self.recoveries = 0
        self.checkpoints_taken = 0
        self.batches = 0
        self.fan_in_matches = 0
        self._shards = [_Shard(index) for index in range(workers)]
        try:
            for shard in self._shards:
                self._spawn(shard)
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------- lifecycle
    def _spawn(self, shard: _Shard) -> None:
        """Start (or restart) ``shard``'s worker and handshake with it."""
        if self._start_method == "inline":
            shard.process = None
            shard.channel = _InlineChannel(ShardWorker(self._config))
        else:
            parent_end, child_end = self._ctx.Pipe()
            process = self._ctx.Process(
                target=worker_main,
                args=(child_end, self._config),
                name=f"repro-shard-{shard.index}",
                daemon=True,
            )
            process.start()
            child_end.close()  # the parent keeps only its own end
            shard.process = process
            shard.channel = FrameChannel(parent_end)
        # Handshake: a worker that failed to import/construct shows up here,
        # at spawn, not as a broken pipe mid-stream.
        shard.channel.send_raw(encode_frame(("ping",)))
        reply = decode_frame(shard.channel.recv_raw())
        if reply[0] != "pong":
            raise ShardError(f"shard {shard.index} failed its handshake: {reply!r}")

    def close(self) -> None:
        """Shut every worker down and release the pipes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            channel = shard.channel
            if channel is None:
                continue
            try:
                channel.send_raw(encode_frame(("close",)))
                decode_frame(channel.recv_raw())
            except WorkerDied:
                pass
            channel.close()
            shard.channel = None
            process = shard.process
            if process is not None:
                process.join(timeout=5)
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.terminate()
                    process.join(timeout=5)
                shard.process = None

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------- messaging
    def _ask(self, shard: _Shard, message: Tup[Any, ...], *, log: bool = True) -> Tup[Any, ...]:
        """One command round-trip, with logging and death recovery.

        Logged commands that hit a dead worker are answered by the replay at
        the end of :meth:`_revive` (the command is the log's last entry);
        unlogged ones (checkpoint probes) are simply re-asked after revival.
        """
        frame = encode_frame(message)
        if log:
            shard.log.append(frame)
        try:
            shard.channel.send_raw(frame)
            reply = decode_frame(shard.channel.recv_raw())
        except WorkerDied:
            reply = self._revive(shard)
            if not log:
                frame = encode_frame(message)
                shard.channel.send_raw(frame)
                reply = decode_frame(shard.channel.recv_raw())
        if reply[0] == "error":
            raise ShardError(f"shard {shard.index} rejected {message[0]}: {reply[1]}")
        return reply

    def _revive(self, shard: _Shard) -> Optional[Tup[Any, ...]]:
        """Replace a dead worker, reconstructing its state exactly.

        Fresh process → checkpoint roster re-registered → checkpoint snapshot
        restored → log replayed.  Returns the reply to the last logged frame
        (the command in flight when the death was detected), or ``None`` for
        an empty log.  A second death during revival is unrecoverable and
        propagates as :class:`WorkerDied`.
        """
        self.recoveries += 1
        if shard.channel is not None:
            shard.channel.close()
        process = shard.process
        if process is not None:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - kill-resistant worker
                process.terminate()
                process.join(timeout=5)
        self._spawn(shard)
        checkpoint = self._checkpoints.get(shard.index)
        if checkpoint is not None:
            if checkpoint["roster"]:
                self._direct(shard, ("register_many", checkpoint["roster"]))
            self._direct(shard, ("restore", checkpoint["snapshot"]))
        last: Optional[Tup[Any, ...]] = None
        for frame in shard.log:
            shard.channel.send_raw(frame)
            last = decode_frame(shard.channel.recv_raw())
            if last[0] == "error":
                raise ShardError(
                    f"shard {shard.index} diverged during replay: {last[1]}"
                )
        return last

    def _direct(self, shard: _Shard, message: Tup[Any, ...]) -> Tup[Any, ...]:
        """An unlogged, unrecovered round-trip (revival internals)."""
        shard.channel.send_raw(encode_frame(message))
        reply = decode_frame(shard.channel.recv_raw())
        if reply[0] == "error":
            raise ShardError(f"shard {shard.index} rejected {message[0]}: {reply[1]}")
        return reply

    # ----------------------------------------------------------- registration
    @property
    def workers(self) -> int:
        return len(self._shards)

    def _loads(self) -> List[int]:
        return [len(shard.roster) for shard in self._shards]

    def register(
        self, query: QuerySpec, window: int, name: Optional[str] = None
    ) -> QueryHandle:
        """Register a query on the shard the placement policy picks.

        The coordinator compiles ``query`` first (so malformed queries fail
        here, with the registry untouched), then ships the *specification*
        to the worker, which compiles its own lane.
        """
        handle = self._registry.register(query, window, name)
        try:
            index = self._place(handle)
            shard = self._shards[index]
            self._specs[handle.id] = (handle.name, handle.window, query)
            self._assignment[handle.id] = index
            shard.roster.append(handle.id)
            self._ask(shard, ("register", handle.id, handle.name, handle.window, query))
        except Exception:
            self._registry.unregister(handle)
            self._specs.pop(handle.id, None)
            index = self._assignment.pop(handle.id, None)
            if index is not None:
                self._shards[index].roster.remove(handle.id)
            raise
        return handle

    def register_many(
        self, queries: Iterable[Tup], default_window: Optional[int] = None
    ) -> List[QueryHandle]:
        """Bulk registration: one ``register_many`` frame per shard.

        ``queries`` holds ``(query, window)`` or ``(query, window, name)``
        tuples.  Equivalent to a :meth:`register` loop but pays one command
        round-trip per *shard* instead of per query — the difference between
        seconds and minutes at K=1024.
        """
        handles: List[QueryHandle] = []
        per_shard: Dict[int, List[Tup[int, str, int, QuerySpec]]] = {}
        try:
            for item in queries:
                query, window = item[0], item[1]
                name = item[2] if len(item) > 2 else None
                handle = self._registry.register(query, window, name)
                index = self._place(handle)
                self._specs[handle.id] = (handle.name, handle.window, query)
                self._assignment[handle.id] = index
                self._shards[index].roster.append(handle.id)
                per_shard.setdefault(index, []).append(
                    (handle.id, handle.name, handle.window, query)
                )
                handles.append(handle)
            for index, entries in per_shard.items():
                self._ask(self._shards[index], ("register_many", entries))
        except Exception:
            for handle in handles:
                if handle in self._registry:
                    self._registry.unregister(handle)
                self._specs.pop(handle.id, None)
                index = self._assignment.pop(handle.id, None)
                if index is not None and handle.id in self._shards[index].roster:
                    self._shards[index].roster.remove(handle.id)
            raise
        return handles

    def _place(self, handle: QueryHandle) -> int:
        index = self._placement.assign(handle, len(self._shards), self._loads())
        if not 0 <= index < len(self._shards):
            raise ValueError(
                f"{self._placement!r} placed {handle} on shard {index}; "
                f"this engine has shards 0..{len(self._shards) - 1}"
            )
        return index

    def unregister(self, handle: QueryHandle) -> None:
        """Drop a query everywhere; raises ``KeyError`` for stale handles."""
        if handle.id not in self._assignment:
            raise KeyError(f"no registered query with handle {handle}")
        self._registry.unregister(handle)
        index = self._assignment.pop(handle.id)
        del self._specs[handle.id]
        shard = self._shards[index]
        shard.roster.remove(handle.id)
        self._ask(shard, ("unregister", handle.id))

    def handles(self) -> List[QueryHandle]:
        """Handles of the registered queries, in registration order."""
        return [entry.handle for entry in self._registry.entries()]

    def assignment(self) -> Dict[int, int]:
        """Current query placement: global handle id → shard index."""
        return dict(self._assignment)

    # ------------------------------------------------------------- processing
    def process(self, event: Tuple) -> Dict[int, List[Valuation]]:
        """Single-tuple ingestion (a batch of one; prefer :meth:`process_many`)."""
        return self.process_many([event])[0]

    def process_many(
        self, tuples: Sequence[Tuple]
    ) -> List[Dict[int, List[Valuation]]]:
        """Broadcast one batch to every shard and fan the matches back in.

        Per-tuple output dicts are keyed by *global* handle id, exactly as a
        single ``MultiQueryEngine.process_many`` keys them by its handle ids
        — a client routing outputs through :meth:`handles` sees no
        difference.  The batch frame is encoded once and written to every
        worker; replies are collected only after every live worker has the
        frame, so workers evaluate concurrently.
        """
        tuples = list(tuples)
        if not tuples:
            return []
        start = perf_counter()
        base_position = self._position + 1
        frame = encode_frame(("batch", tuples))
        dead: List[_Shard] = []
        for shard in self._shards:
            shard.log.append(frame)
            try:
                shard.channel.send_raw(frame)
            except WorkerDied:
                dead.append(shard)  # revived (and replayed) in the fan-in loop
        results: List[Dict[int, List[Valuation]]] = [dict() for _ in tuples]
        for shard in self._shards:
            if shard in dead:
                reply = self._revive(shard)
            else:
                try:
                    reply = decode_frame(shard.channel.recv_raw())
                except WorkerDied:
                    reply = self._revive(shard)
            if reply is None or reply[0] != "matches":
                detail = reply[1] if reply and reply[0] == "error" else repr(reply)
                raise ShardError(f"shard {shard.index} failed the batch: {detail}")
            if reply[1] != base_position:
                raise ShardError(
                    f"shard {shard.index} is at stream position {reply[1] - 1}, "
                    f"the coordinator expected {base_position - 1} — shards lost sync"
                )
            for offset, gid, valuations in reply[2]:
                results[offset][gid] = valuations
                self.fan_in_matches += len(valuations)
        self._position += len(tuples)
        self.batches += 1
        observer = self._observer
        if observer is not None:
            observer.on_shard_batch(
                len(tuples), perf_counter() - start, self._position, len(self._shards)
            )
        if (
            self._checkpoint_interval is not None
            and self._position - self._last_checkpoint >= self._checkpoint_interval
        ):
            self.checkpoint()
        return results

    def ingest_batch(self, tuples: Sequence[Tuple]):
        """The network front end's batch-drain hook (see
        :meth:`repro.runtime.core.RuntimeBackedEngine.ingest_batch`)."""
        base = self._position + 1
        return base, self.process_many(tuples)

    # ------------------------------------------------- checkpoint / rebalance
    def checkpoint(self) -> None:
        """Snapshot every shard and truncate the recovery logs.

        The checkpoint (engine snapshot + owned-query roster, per shard)
        lives in the coordinator; a later worker death replays only the
        commands issued since.  Taken between batches, so every shard
        snapshots at the same stream position.
        """
        for shard in self._shards:
            reply = self._ask(shard, ("snapshot",), log=False)
            snapshot, order = reply[1], reply[2]
            roster = [(gid, *self._specs[gid]) for gid in order]
            self._checkpoints[shard.index] = {"snapshot": snapshot, "roster": roster}
            shard.log.clear()
        self._last_checkpoint = self._position
        self.checkpoints_taken += 1

    def rebalance(self, handle: QueryHandle, target: int) -> None:
        """Move one query's live state to shard ``target``, losing nothing.

        The source shard extracts the query's lane-subset snapshot (hash
        table, enumeration structure, pending expiry buckets) and drops the
        lane; the target adopts it at the same stream position.  Outputs for
        the handle continue seamlessly — the differential tests assert
        bit-identical matches across a mid-stream rebalance.
        """
        if handle.id not in self._assignment:
            raise KeyError(f"no registered query with handle {handle}")
        if not 0 <= target < len(self._shards):
            raise ValueError(
                f"target shard {target} out of range 0..{len(self._shards) - 1}"
            )
        source = self._assignment[handle.id]
        if source == target:
            return
        start = perf_counter()
        name, window, spec = self._specs[handle.id]
        reply = self._ask(self._shards[source], ("extract", [handle.id]))
        partial = reply[1]
        self._shards[source].roster.remove(handle.id)
        try:
            self._ask(
                self._shards[target],
                ("adopt", partial, [(handle.id, name, window, spec)]),
            )
        except Exception:
            # The target refused (worker-side rollback already dropped the
            # lanes there); put the state back where it came from.
            self._ask(
                self._shards[source],
                ("adopt", partial, [(handle.id, name, window, spec)]),
            )
            self._shards[source].roster.append(handle.id)
            raise
        self._shards[target].roster.append(handle.id)
        self._assignment[handle.id] = target
        self.rebalances += 1
        observer = self._observer
        if observer is not None:
            observer.on_rebalance(1, perf_counter() - start, source, target)

    # ---------------------------------------------------------- introspection
    @property
    def position(self) -> int:
        """Current global stream position (identical on every shard)."""
        return self._position

    @property
    def evicted(self) -> int:
        """Entries reclaimed across all shards (one ``observe`` round-trip)."""
        return int(self.observe()["evicted"])

    @property
    def stats(self) -> EngineStatistics:
        """Aggregated operation counters (one ``observe`` round-trip).

        Work counters (scans, predicate evaluations, hash operations, …) sum
        across shards — together they are exactly the single-engine totals,
        since each query lane lives on exactly one shard.
        ``tuples_processed`` is *not* summed: every worker ingests every
        tuple, so the maximum (= any shard's count) is the stream's.
        """
        observed = self._observe_workers()
        total = EngineStatistics()
        for snapshot in observed:
            for field, value in snapshot["stats"].items():
                setattr(total, field, getattr(total, field) + value)
        if observed:
            total.tuples_processed = max(s["stats"]["tuples_processed"] for s in observed)
        return total

    def hash_table_size(self) -> int:
        """Total run-index entries across all shards."""
        return int(self.observe()["hash_entries"])

    def _observe_workers(self) -> List[Dict[str, Any]]:
        replies = [self._ask(shard, ("observe",), log=False) for shard in self._shards]
        return [reply[1] for reply in replies]

    def observe(self) -> Dict[str, object]:
        """One point-in-time snapshot, shaped like ``MultiQueryEngine.observe()``.

        The standard keys aggregate across shards (sums for additive
        counters, max/mean where summing would be meaningless); the extra
        ``"shard"`` section carries the coordinator's own counters and one
        entry per shard — the surface ``collect_engine_counters`` and the
        CLI ``--stats`` shard line read.
        """
        observed = self._observe_workers()
        stats_total: Dict[str, float] = {}
        for snapshot in observed:
            for field, value in snapshot["stats"].items():
                stats_total[field] = stats_total.get(field, 0) + value
        if observed:
            stats_total["tuples_processed"] = max(
                s["stats"]["tuples_processed"] for s in observed
            )
        dispatch: Dict[str, float] = {}
        for snapshot in observed:
            for field, value in snapshot["dispatch"].items():
                if field == "max_candidates":
                    dispatch[field] = max(dispatch.get(field, 0.0), value)
                elif field == "mean_candidates":
                    dispatch[field] = dispatch.get(field, 0.0) + value / len(observed)
                else:
                    dispatch[field] = dispatch.get(field, 0.0) + value
        fanout: Dict[str, int] = {}
        memory: Dict[str, int] = {}
        for snapshot in observed:
            for relation, candidates in snapshot["fanout"].items():
                fanout[relation] = fanout.get(relation, 0) + candidates
            for field, value in snapshot["memory"].items():
                memory[field] = memory.get(field, 0) + value
        kernel: Dict[str, object] = dict(observed[0]["kernel"]) if observed else {}
        active = {str(s["kernel"].get("active")) for s in observed}
        if len(active) == 1:
            kernel["active"] = active.pop()
        elif active:
            kernel["active"] = "mixed"
        adaptive_snaps = [s["adaptive"] for s in observed if "adaptive" in s]
        adaptive: Optional[Dict[str, object]] = None
        if adaptive_snaps:
            adaptive = {
                "enabled": True,
                "interval": adaptive_snaps[0]["interval"],
                "flushes": sum(a["flushes"] for a in adaptive_snaps),
                "reorders": sum(a["reorders"] for a in adaptive_snaps),
                "promotions": sum(a["promotions"] for a in adaptive_snaps),
                "demotions": sum(a["demotions"] for a in adaptive_snaps),
                "promoted": sum(a["promoted"] for a in adaptive_snaps),
                "tracked_relations": sum(a["tracked_relations"] for a in adaptive_snaps),
                "dormant_relations": sum(a["dormant_relations"] for a in adaptive_snaps),
            }
        per_shard = []
        frames_sent = frames_received = bytes_sent = bytes_received = 0
        for shard, snapshot in zip(self._shards, observed):
            channel = shard.channel
            frames_sent += channel.frames_sent
            frames_received += channel.frames_received
            bytes_sent += channel.bytes_sent
            bytes_received += channel.bytes_received
            per_shard.append(
                {
                    "shard": shard.index,
                    "queries": len(shard.roster),
                    "log_depth": len(shard.log),
                    "busy_seconds": snapshot["worker"]["busy_seconds"],
                    "hash_entries": snapshot["hash_entries"],
                    "frames_sent": channel.frames_sent,
                    "bytes_sent": channel.bytes_sent,
                }
            )
        snapshot_out: Dict[str, object] = {
            "engine": type(self).__name__,
            "position": self._position,
            "hash_entries": sum(s["hash_entries"] for s in observed),
            "evicted": sum(s["evicted"] for s in observed),
            "stats": stats_total,
            "dispatch": dispatch,
            "fanout": fanout,
            "memory": memory,
            "kernel": kernel,
            "shard": {
                "workers": len(self._shards),
                "start_method": self._start_method,
                "rebalances": self.rebalances,
                "recoveries": self.recoveries,
                "checkpoints": self.checkpoints_taken,
                "batches": self.batches,
                "fan_in_matches": self.fan_in_matches,
                "frames_sent": frames_sent,
                "frames_received": frames_received,
                "bytes_sent": bytes_sent,
                "bytes_received": bytes_received,
                "busy_seconds_max": max(
                    (s["worker"]["busy_seconds"] for s in observed), default=0.0
                ),
                "per_shard": per_shard,
            },
        }
        if adaptive is not None:
            snapshot_out["adaptive"] = adaptive
        return snapshot_out

    def adaptive_info(self) -> Optional[Dict[str, object]]:
        """Adaptive-dispatch counters summed across shards (``None`` if off)."""
        return self.observe().get("adaptive")

    def dispatch_info(self) -> Dict[str, float]:
        """Aggregated merged-index statistics (see :meth:`observe`)."""
        return dict(self.observe()["dispatch"])

    def memory_info(self) -> Dict[str, int]:
        """Aggregated enumeration-structure occupancy (see :meth:`observe`)."""
        return dict(self.observe()["memory"])

    def kernel_info(self) -> Dict[str, object]:
        """The workers' record-operation backend (``"mixed"`` if they differ)."""
        return dict(self.observe()["kernel"])

    # --------------------------------------------------------- observability
    def attach_observer(self, observer) -> None:
        """Register a :class:`repro.obs.Observer` for coordinator metrics.

        Pull-model only: the observer's collection loop reads
        :meth:`observe` into gauges, and the coordinator pushes
        ``on_shard_batch``/``on_rebalance`` events.  Workers run in other
        processes, so the per-tuple sampling shims never cross over — the
        zero-cost-when-disabled contract holds trivially on both sides.
        """
        if self._observer is not None:
            raise ValueError(
                "ShardedEngine already has an observer attached "
                "(call detach_observer() first)"
            )
        self._observer = observer
        observer.watch(self)

    def detach_observer(self) -> None:
        if self._observer is not None:
            self._observer.unwatch(self)
            self._observer = None

    @property
    def observer(self):
        return self._observer

    def __repr__(self) -> str:
        return (
            f"ShardedEngine({len(self._registry)} queries over "
            f"{len(self._shards)} workers [{self._start_method}], "
            f"position={self._position})"
        )
