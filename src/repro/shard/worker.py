"""The shard worker: one ``MultiQueryEngine`` behind a framed command loop.

A worker process owns the runtime state of the queries placed on its shard
and sees **every** stream tuple (the coordinator broadcasts each batch), so
its stream positions are the global positions — ``max_start`` eviction and
match positions are exactly those of a single shared engine, which is what
makes the fan-in output bit-identical.

Handle remapping
----------------
The coordinator allocates *global* handle ids from its own registry; the
worker's engine allocates its own *local* ids.  The worker keeps both maps
and translates at the boundary: commands arrive keyed by global id, matches
leave keyed by global id.  After a full-snapshot restore (worker recovery)
the engine rewrites its local ids to the snapshot's, so the maps are rebuilt
from the engine's post-restore handle list — the coordinator-visible global
ids never change.

Spawn safety
------------
The worker is start-method agnostic (``fork``, ``spawn`` and ``forkserver``
all work) because nothing it needs crosses the process boundary implicitly:

* all state is built *inside* the child from ``config`` and later command
  frames — the parent's engines, registries and interned tables are never
  inherited on purpose;
* the pipe connection is passed as a ``Process`` argument (connections are
  picklable through ``multiprocessing``'s reduction machinery under every
  start method);
* module-level state touched at import (kernel auto-detection, metric
  allocation counters, interned key tables) is re-created by the child's own
  import of :mod:`repro`;
* frames are pickled with :data:`~repro.shard.frames.PICKLE_PROTOCOL`
  (``pickle.HIGHEST_PROTOCOL``) on both ends.

The module also carries a ``__main__`` guard: under ``spawn`` the child
re-imports modules by name, and importing this one must never start a
worker loop (or anything else) as a side effect.
"""

from __future__ import annotations

from time import process_time
from typing import Any, Dict, List, Optional, Tuple as Tup

from repro.multi.engine import MultiQueryEngine
from repro.multi.registry import QueryHandle
from repro.shard.frames import FrameChannel, WorkerDied, decode_frame, encode_frame


class ShardWorker:
    """Command handler around one :class:`MultiQueryEngine`.

    Transport-free on purpose: :func:`worker_main` drives it from a pipe in
    a child process, the inline (in-process) shards of
    :class:`~repro.shard.coordinator.ShardedEngine` drive it directly, and
    tests can poke commands at it synchronously.  Every mutating command is
    deterministic given the command sequence — worker recovery replays a
    command log against a fresh instance.
    """

    def __init__(self, config: Optional[Dict[str, Any]] = None) -> None:
        config = dict(config or {})
        self.engine = MultiQueryEngine(
            memoise=config.get("memoise", True),
            guards=config.get("guards", True),
            collect_stats=config.get("collect_stats", False),
            arena=config.get("arena", True),
            columnar=config.get("columnar", True),
            kernel=config.get("kernel"),
            adaptive=config.get("adaptive", True),
        )
        self._order: List[int] = []  # global ids in registration order
        self._local: Dict[int, QueryHandle] = {}  # global id -> local handle
        self._global: Dict[int, int] = {}  # local id -> global id
        self.busy_seconds = 0.0
        self.batches = 0
        self.tuples = 0

    # -------------------------------------------------------------- commands
    def handle(self, message: Tup[Any, ...]) -> Tup[Any, ...]:
        """Execute one command tuple, returning the reply tuple."""
        command = message[0]
        handler = getattr(self, f"_cmd_{command}", None)
        if handler is None:
            raise ValueError(f"unknown shard command {command!r}")
        return handler(*message[1:])

    def _register_one(self, gid: int, name: str, window: int, spec: Any) -> None:
        handle = self.engine.register(spec, window=window, name=name)
        self._order.append(gid)
        self._local[gid] = handle
        self._global[handle.id] = gid

    def _forget(self, gid: int) -> QueryHandle:
        handle = self._local.pop(gid)
        del self._global[handle.id]
        self._order.remove(gid)
        return handle

    def _rebuild_maps(self) -> None:
        """Re-derive the handle maps after a restore rewrote local ids."""
        handles = self.engine.handles()
        if len(handles) != len(self._order):
            raise ValueError(
                f"engine holds {len(handles)} queries, worker tracked {len(self._order)}"
            )
        self._local = dict(zip(self._order, handles))
        self._global = {handle.id: gid for gid, handle in self._local.items()}

    def _cmd_ping(self) -> Tup[Any, ...]:
        return ("pong", self.engine.position)

    def _cmd_register(self, gid: int, name: str, window: int, spec: Any) -> Tup[Any, ...]:
        self._register_one(gid, name, window, spec)
        return ("ok", gid)

    def _cmd_register_many(self, entries: List[Tup[int, str, int, Any]]) -> Tup[Any, ...]:
        for gid, name, window, spec in entries:
            self._register_one(gid, name, window, spec)
        return ("ok", len(entries))

    def _cmd_unregister(self, gid: int) -> Tup[Any, ...]:
        handle = self._forget(gid)
        self.engine.unregister(handle)
        return ("ok", gid)

    def _cmd_batch(self, tuples: List[Any]) -> Tup[Any, ...]:
        engine = self.engine
        base_position = engine.position + 1
        to_global = self._global
        entries: List[Tup[int, int, List[Any]]] = []
        for offset, outputs in enumerate(engine.process_many(tuples)):
            for local_id, valuations in outputs.items():
                entries.append((offset, to_global[local_id], valuations))
        self.batches += 1
        self.tuples += len(tuples)
        return ("matches", base_position, entries)

    def _cmd_snapshot(self) -> Tup[Any, ...]:
        return ("snapshot", self.engine.snapshot(), list(self._order))

    def _cmd_restore(self, snapshot: Dict[str, object]) -> Tup[Any, ...]:
        self.engine.restore(snapshot)
        self._rebuild_maps()
        return ("ok", self.engine.position)

    def _cmd_extract(self, gids: List[int]) -> Tup[Any, ...]:
        handles = [self._local[gid] for gid in gids]
        partial = self.engine.extract_queries(handles)
        for gid in gids:
            self.engine.unregister(self._forget(gid))
        return ("extracted", partial)

    def _cmd_adopt(
        self, partial: Dict[str, object], entries: List[Tup[int, str, int, Any]]
    ) -> Tup[Any, ...]:
        handles = []
        for gid, name, window, spec in entries:
            self._register_one(gid, name, window, spec)
            handles.append(self._local[gid])
        try:
            self.engine.adopt_queries(partial, handles)
        except Exception:
            # A rejected adopt leaves the lanes registered but empty; drop
            # them so the worker's roster matches the coordinator's view
            # (which only commits the move on success).
            for gid, _, _, _ in entries:
                self.engine.unregister(self._forget(gid))
            raise
        return ("ok", len(entries))

    def _cmd_observe(self) -> Tup[Any, ...]:
        snapshot = self.engine.observe()
        snapshot["worker"] = {
            "busy_seconds": self.busy_seconds,
            "batches": self.batches,
            "tuples": self.tuples,
            "queries": len(self._order),
        }
        return ("observe", snapshot)

    def _cmd_close(self) -> Tup[Any, ...]:
        return ("bye",)


def worker_main(connection, config: Optional[Dict[str, Any]] = None) -> None:
    """The child-process entry point: frames in, frames out, until close.

    Busy time (frame decode + command handling + reply encode) is
    accumulated and reported through the ``observe`` command — the blocking
    wait for the next frame is excluded, which is what lets the scaling
    benchmark separate per-shard work (the critical path under true
    parallelism) from coordinator round-trip idle time.  It is measured
    with ``time.process_time`` (this process's CPU time), not wall-clock,
    so it stays honest when more workers than cores time-slice the machine
    — a descheduled worker is not busy.

    Errors from command handling are reported to the coordinator as
    ``("error", repr)`` replies — the worker survives and keeps serving (a
    bad rebalance request must not take the shard down).  A vanished peer
    ends the loop.
    """
    channel = FrameChannel(connection)
    worker = ShardWorker(config)
    while True:
        try:
            raw = channel.recv_raw()
        except WorkerDied:
            return
        start = process_time()
        try:
            message = decode_frame(raw)
            reply = worker.handle(message)
        except Exception as exc:  # reported, not fatal
            reply = ("error", f"{type(exc).__name__}: {exc}")
        frame = encode_frame(reply)
        worker.busy_seconds += process_time() - start
        try:
            channel.send_raw(frame)
        except WorkerDied:
            return
        if reply[0] == "bye":
            return


if __name__ == "__main__":  # pragma: no cover
    # Spawn-started children import this module by name; executing it as a
    # script is never how a worker starts (the coordinator launches
    # ``worker_main`` through ``multiprocessing.Process``).
    raise SystemExit(
        "repro.shard.worker is a multiprocessing entry point, not a script; "
        "use the repro-cer CLI with --workers, or repro.shard.ShardedEngine"
    )
