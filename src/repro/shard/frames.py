"""The shard wire protocol: length-prefixed pickled frames.

Every message between the coordinator and a worker is one **frame**::

    +----------------+------------------------------------+
    | length (4B !I) | pickle.dumps(message, HIGHEST)     |
    +----------------+------------------------------------+

The 4-byte big-endian length prefix covers the pickled body only.  Messages
are plain tuples ``(command, *args)`` — no engine objects, no callables —
so a frame is decodable by any process that imports :mod:`repro` (spawn
start method included; nothing in a frame depends on inherited process
state).  ``pickle.HIGHEST_PROTOCOL`` is pinned deliberately: protocol 5
frames out-of-band-encode the large ``bytes``/``array`` payloads inside
lane snapshots, and both ends of a pipe are by construction the same
interpreter version.

Transport is :class:`multiprocessing.connection.Connection` (the ends of a
``multiprocessing.Pipe``).  Connections are message-oriented, so the length
prefix is *verified* on receipt — a mismatch means a torn or corrupted
frame and raises :class:`FrameProtocolError` instead of unpickling garbage.
:meth:`FrameChannel.send_raw`/:meth:`recv_raw` expose the encoded-bytes
layer so the coordinator can encode a broadcast frame **once** and write
the same bytes to every worker, and so the worker loop can time
decode+handle+encode as busy work while excluding the blocking wait.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Tuple

#: Frames are pickled with the highest protocol available — both pipe ends
#: are the same interpreter, and protocol 5 keeps large snapshot buffers as
#: single contiguous writes.
PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

_LENGTH = struct.Struct("!I")

#: Maximum frame body accepted on receipt (a corrupted length prefix must
#: not trigger a multi-gigabyte allocation).  1 GiB is far above any real
#: frame — a full 1024-query engine snapshot measures in the tens of MB.
MAX_FRAME_BYTES = 1 << 30


class FrameProtocolError(RuntimeError):
    """A frame failed to encode, frame, or decode."""


class WorkerDied(RuntimeError):
    """The peer end of a shard channel is gone (EOF / broken pipe)."""


def encode_frame(message: Any) -> bytes:
    """One length-prefixed pickled frame for ``message``."""
    try:
        body = pickle.dumps(message, protocol=PICKLE_PROTOCOL)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        raise FrameProtocolError(f"message is not picklable: {exc}") from exc
    return _LENGTH.pack(len(body)) + body


def decode_frame(frame: bytes) -> Any:
    """Decode one frame, verifying the length prefix against the body."""
    if len(frame) < _LENGTH.size:
        raise FrameProtocolError(
            f"frame of {len(frame)} bytes is shorter than the length prefix"
        )
    (length,) = _LENGTH.unpack_from(frame)
    body = len(frame) - _LENGTH.size
    if length != body:
        raise FrameProtocolError(
            f"frame length prefix says {length} bytes, body holds {body}"
        )
    if length > MAX_FRAME_BYTES:
        raise FrameProtocolError(f"frame of {length} bytes exceeds the cap")
    try:
        return pickle.loads(frame[_LENGTH.size :])
    except Exception as exc:  # unpickling raises a zoo of exception types
        raise FrameProtocolError(f"frame body does not unpickle: {exc}") from exc


class FrameChannel:
    """Framed messaging over one ``multiprocessing`` pipe connection.

    Counts frames and bytes in both directions (the coordinator surfaces
    the totals through ``observe()`` / ``--stats``).
    """

    __slots__ = ("connection", "frames_sent", "frames_received", "bytes_sent", "bytes_received")

    def __init__(self, connection) -> None:
        self.connection = connection
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    # ------------------------------------------------------------- raw layer
    def send_raw(self, frame: bytes) -> None:
        """Write an already-encoded frame (broadcast path: encode once)."""
        try:
            self.connection.send_bytes(frame)
        except (BrokenPipeError, ConnectionResetError, OSError, EOFError) as exc:
            raise WorkerDied(f"peer is gone: {exc!r}") from exc
        self.frames_sent += 1
        self.bytes_sent += len(frame)

    def recv_raw(self) -> bytes:
        """Block for the next frame's raw bytes (prefix not yet verified)."""
        try:
            frame = self.connection.recv_bytes()
        except (EOFError, ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise WorkerDied(f"peer is gone: {exc!r}") from exc
        self.frames_received += 1
        self.bytes_received += len(frame)
        return frame

    # --------------------------------------------------------- message layer
    def send(self, message: Any) -> None:
        self.send_raw(encode_frame(message))

    def recv(self) -> Any:
        return decode_frame(self.recv_raw())

    def poll(self, timeout: float = 0.0) -> bool:
        """Whether a frame is ready (never blocks past ``timeout``)."""
        try:
            return self.connection.poll(timeout)
        except (BrokenPipeError, ConnectionResetError, OSError, EOFError):
            return False

    def close(self) -> None:
        try:
            self.connection.close()
        except OSError:
            pass

    def counters(self) -> Tuple[int, int, int, int]:
        return (self.frames_sent, self.frames_received, self.bytes_sent, self.bytes_received)

    def __repr__(self) -> str:
        return (
            f"FrameChannel(sent={self.frames_sent}/{self.bytes_sent}B, "
            f"received={self.frames_received}/{self.bytes_received}B)"
        )
