"""The shard wire protocol — a re-export of the shared frame codec.

The length-prefixed pickled-frame codec started life here (PR 8, pipes
between the coordinator and its workers) and moved to
:mod:`repro.runtime.frames` when the network ingestion server needed the
identical framing over TCP sockets.  This module remains the import path
the sharding layer uses; everything below *is* the shared implementation.
"""

from __future__ import annotations

from repro.runtime.frames import (
    HEADER_SIZE,
    MAX_FRAME_BYTES,
    PICKLE_PROTOCOL,
    FrameAssembler,
    FrameChannel,
    FrameProtocolError,
    WorkerDied,
    decode_body,
    decode_frame,
    encode_frame,
    frame_length,
)

__all__ = [
    "HEADER_SIZE",
    "MAX_FRAME_BYTES",
    "PICKLE_PROTOCOL",
    "FrameAssembler",
    "FrameChannel",
    "FrameProtocolError",
    "WorkerDied",
    "decode_body",
    "decode_frame",
    "encode_frame",
    "frame_length",
]
