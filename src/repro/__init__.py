"""repro — a reproduction of "Complex Event Recognition meets Hierarchical
Conjunctive Queries" (Pinto & Riveros, PODS 2024).

The package provides:

* a relational / conjunctive-query substrate (:mod:`repro.cq`),
* classical and parallelized finite automata (:mod:`repro.automata`),
* the paper's contribution — CCEA, PCEA, the HCQ→PCEA translation and the
  streaming evaluation algorithm with output-linear delay (:mod:`repro.core`),
* the shared streaming runtime behind all three evaluators — eviction
  sweep, arena release, batching, statistics (:mod:`repro.runtime`),
* baseline engines used for comparison (:mod:`repro.baselines`),
* stream abstractions and synthetic workload generators (:mod:`repro.streams`),
* a small CER pattern DSL compiled to PCEA (:mod:`repro.engine`), and
* the measurement harness behind the benchmarks (:mod:`repro.bench`).

Quickstart
----------
>>> from repro import parse_query, hcq_to_pcea, StreamingEvaluator
>>> query = parse_query("Q(x, y) <- T(x), S(x, y), R(x, y)")
>>> pcea = hcq_to_pcea(query)
>>> engine = StreamingEvaluator(pcea, window=100)
"""

from repro.valuation import Valuation, product_of, is_simple_product
from repro.cq.schema import Schema, Tuple, make_tuple
from repro.cq.bag import Bag
from repro.cq.database import Database
from repro.cq.query import Atom, ConjunctiveQuery, Variable, parse_query
from repro.cq.hierarchical import QTree, build_q_tree, is_hierarchical
from repro.cq.acyclic import build_join_tree, is_acyclic
from repro.cq.homomorphism import bag_semantics, chaudhuri_vardi_semantics
from repro.cq.stream_semantics import cq_stream_output, cq_stream_new_outputs
from repro.automata.nfa import NFA, DFA
from repro.automata.pfa import PFA, determinize_pfa
from repro.core.predicates import (
    AtomJoinEquality,
    AtomUnaryPredicate,
    AttributeFilter,
    EqualityPredicate,
    LambdaBinaryPredicate,
    LambdaUnaryPredicate,
    OrderPredicate,
    ProjectionEquality,
    RelationPredicate,
    SelfJoinEquality,
    SelfJoinUnaryPredicate,
    TrueEquality,
    TruePredicate,
    VariableAtomEquality,
)
from repro.core.ccea import CCEA, CCEATransition, chain_ccea
from repro.core.pcea import PCEA, PCEATransition, check_unambiguous_on_stream
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.core.arena import ArenaDataStructure, BOTTOM_ID
from repro.core.datastructure import BOTTOM, DataStructure, LinkedListUnionStructure, Node
from repro.core.evaluation import StreamingEvaluator, evaluate_pcea
from repro.runtime import EngineStatistics, EvictionLane, StreamRuntime
from repro.streams.stream import Stream, stream_from_rows
from repro.streams.generators import (
    HCQWorkloadGenerator,
    SensorStreamGenerator,
    StockStreamGenerator,
    random_stream,
)
from repro.baselines.naive import NaiveRecomputeEngine
from repro.baselines.delta_join import DeltaJoinEngine
from repro.baselines.ccea_engine import CCEAStreamingEngine
from repro.engine.dsl import Pattern, atom, sequence, conjunction, disjunction
from repro.engine.compiler import compile_pattern
from repro.extensions.general_evaluation import GeneralStreamingEvaluator
from repro.extensions.disambiguation import ambiguity_witness, is_syntactically_unambiguous
from repro.automata.operations import (
    languages_equal_up_to,
    pfa_difference_dfa,
    pfa_intersection_dfa,
    pfa_union,
)

__version__ = "1.0.0"

__all__ = [
    "Valuation",
    "product_of",
    "is_simple_product",
    "Schema",
    "Tuple",
    "make_tuple",
    "Bag",
    "Database",
    "Atom",
    "ConjunctiveQuery",
    "Variable",
    "parse_query",
    "QTree",
    "build_q_tree",
    "is_hierarchical",
    "build_join_tree",
    "is_acyclic",
    "bag_semantics",
    "chaudhuri_vardi_semantics",
    "cq_stream_output",
    "cq_stream_new_outputs",
    "NFA",
    "DFA",
    "PFA",
    "determinize_pfa",
    "AtomJoinEquality",
    "AtomUnaryPredicate",
    "AttributeFilter",
    "EqualityPredicate",
    "LambdaBinaryPredicate",
    "LambdaUnaryPredicate",
    "ProjectionEquality",
    "RelationPredicate",
    "SelfJoinEquality",
    "SelfJoinUnaryPredicate",
    "TruePredicate",
    "VariableAtomEquality",
    "CCEA",
    "CCEATransition",
    "chain_ccea",
    "PCEA",
    "PCEATransition",
    "check_unambiguous_on_stream",
    "hcq_to_pcea",
    "ArenaDataStructure",
    "BOTTOM",
    "BOTTOM_ID",
    "DataStructure",
    "LinkedListUnionStructure",
    "Node",
    "StreamingEvaluator",
    "evaluate_pcea",
    "EngineStatistics",
    "EvictionLane",
    "StreamRuntime",
    "Stream",
    "stream_from_rows",
    "HCQWorkloadGenerator",
    "SensorStreamGenerator",
    "StockStreamGenerator",
    "random_stream",
    "NaiveRecomputeEngine",
    "DeltaJoinEngine",
    "CCEAStreamingEngine",
    "Pattern",
    "atom",
    "sequence",
    "conjunction",
    "disjunction",
    "compile_pattern",
    "OrderPredicate",
    "TrueEquality",
    "GeneralStreamingEvaluator",
    "ambiguity_witness",
    "is_syntactically_unambiguous",
    "languages_equal_up_to",
    "pfa_difference_dfa",
    "pfa_intersection_dfa",
    "pfa_union",
    "__version__",
]
