"""Bounded checks for the unambiguity hypothesis of Theorem 5.1.

The paper's evaluation algorithm assumes an *unambiguous* PCEA (each output is
witnessed by exactly one, simple, run) and leaves "a disambiguation procedure
or deciding unambiguity" as future work.  This module provides two pragmatic
tools:

* :func:`is_syntactically_unambiguous` — a cheap *sufficient* structural
  condition.  When it returns ``True`` the automaton is guaranteed unambiguous;
  ``False`` means "unknown" (the Theorem 4.1 automata, for instance, are
  unambiguous for semantic reasons this check cannot see).
* :func:`ambiguity_witness` — an exhaustive bounded search over small abstract
  streams that either returns a concrete witness stream on which two distinct
  accepting runs produce the same valuation (or a non-simple run), or ``None``
  if no violation exists up to the given bounds.  This is a semi-decision
  procedure: the absence of a witness within the bounds is evidence, not proof.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Optional, Sequence, Set

from repro.core.pcea import PCEA, check_unambiguous_on_stream
from repro.core.predicates import (
    AtomUnaryPredicate,
    RelationPredicate,
    SelfJoinUnaryPredicate,
    UnaryPredicate,
)
from repro.cq.schema import Schema, Tuple


def _possible_relations(unary: UnaryPredicate) -> Optional[frozenset[str]]:
    """The relation names a unary predicate can accept, when statically known."""
    if isinstance(unary, RelationPredicate):
        return frozenset(unary.relations)
    if isinstance(unary, AtomUnaryPredicate):
        return frozenset({unary.atom.relation})
    if isinstance(unary, SelfJoinUnaryPredicate):
        return frozenset({unary.unified.relation})
    return None


def is_syntactically_unambiguous(pcea: PCEA) -> bool:
    """A sufficient structural condition for unambiguity.

    The condition: (1) every label is written by exactly one transition, and
    (2) any two distinct transitions are *relation-disjoint* (their unary
    predicates can never accept the same tuple, as far as relation names
    reveal) or have disjoint label sets and different targets.  Under these
    conditions a tuple can extend runs in at most one way per label, so no two
    distinct runs can share a valuation and every run is simple.

    Returns ``False`` whenever the condition cannot be established — in
    particular for the Theorem 4.1 automata, whose unambiguity relies on the
    q-tree structure rather than on syntactic disjointness.
    """
    transitions = list(pcea.transitions)
    label_writers: dict = {}
    for index, transition in enumerate(transitions):
        for label in transition.labels:
            label_writers.setdefault(label, set()).add(index)
    if any(len(writers) > 1 for writers in label_writers.values()):
        return False
    for first, second in itertools.combinations(range(len(transitions)), 2):
        t1, t2 = transitions[first], transitions[second]
        relations1 = _possible_relations(t1.unary)
        relations2 = _possible_relations(t2.unary)
        relation_disjoint = (
            relations1 is not None and relations2 is not None and not (relations1 & relations2)
        )
        if relation_disjoint:
            continue
        if t1.labels & t2.labels:
            return False
        if t1.target == t2.target:
            return False
    return True


def _tuple_universe(schema: Schema, domain: Sequence[int]) -> List[Tuple]:
    """Every tuple over ``schema`` with values drawn from ``domain``."""
    universe: List[Tuple] = []
    for relation in sorted(schema.relation_names):
        arity = schema.arity(relation)
        for values in itertools.product(domain, repeat=arity):
            universe.append(Tuple(relation, values))
    return universe


def _streams(universe: Sequence[Tuple], length: int) -> Iterator[List[Tuple]]:
    yield from (list(stream) for stream in itertools.product(universe, repeat=length))


def ambiguity_witness(
    pcea: PCEA,
    schema: Schema,
    max_length: int = 3,
    domain: Sequence[int] = (0, 1),
    max_streams: int | None = 20_000,
) -> Optional[List[Tuple]]:
    """Search exhaustively for a small stream violating unambiguity.

    Parameters
    ----------
    pcea:
        The automaton to audit.
    schema:
        Schema from which candidate tuples are drawn.
    max_length:
        Maximum stream length explored (the search is exponential in this).
    domain:
        Data values used to build candidate tuples; two or three values
        suffice to expose equality/inequality behaviour of ``B_eq`` predicates.
    max_streams:
        Safety cap on the number of candidate streams (``None`` for no cap).

    Returns
    -------
    The first stream (as a list of tuples) on which the automaton has either a
    non-simple accepting run or two distinct accepting runs with the same
    valuation; ``None`` if no such stream exists within the bounds.
    """
    universe = _tuple_universe(schema, domain)
    explored = 0
    for length in range(1, max_length + 1):
        for stream in _streams(universe, length):
            explored += 1
            if max_streams is not None and explored > max_streams:
                return None
            if check_unambiguous_on_stream(pcea, stream):
                return stream
    return None
