"""Streaming evaluation of PCEA with arbitrary binary predicates.

Algorithm 1 (Section 5) hashes partial runs on equality keys, which is what
makes its update time independent of the number of live runs.  When a
transition carries a *non-equality* predicate (an inequality, a similarity
join, an arbitrary callable) no such key exists; the paper leaves this case
open (Section 6).

:class:`GeneralStreamingEvaluator` is the pragmatic fallback: it keeps the same
factorised run representation (the ``DS_w`` nodes of Section 5, so the
enumeration phase is still output-linear), but during the update phase it scans
the live nodes of every source state and filters them with the binary
predicate.  Its update time is therefore ``O(candidates · live_nodes)`` —
matching the "update time linear in the data" behaviour of the θ-join engines
discussed in the related work — while producing exactly the same outputs as
Algorithm 1 whenever both apply.

Runtime parity
--------------
This evaluator runs on the same :class:`~repro.runtime.StreamRuntime` core as
the hashed engines (it is a single :class:`~repro.runtime.EvictionLane`, like
:class:`~repro.core.evaluation.StreamingEvaluator`):

* **dispatch** — transitions are probed through the compile-once
  :class:`~repro.core.dispatch.TransitionDispatchIndex` (``indexed=False``
  restores the full per-tuple scan), so tuples of irrelevant relations cost
  one dict lookup instead of ``O(|Δ|)`` predicate evaluations;
* **eviction** — live runs are stored in the lane's table keyed by
  ``(source state id, sequence number)`` with the run's newest position as
  the expiry anchor, and reclaimed by the runtime's shared bucket sweep: a
  run whose newest tuple is older than ``w`` can never contribute an
  in-window output again, because outputs are constrained through
  ``min(ν) >= i - w`` and ``min(ν) <=`` every position of the run.  The scan
  re-checks ``ds.expired`` before touching a stored node, so entries whose
  arena slab was already released read as expired and are skipped;
* **batching / statistics / memory** — ``process_many`` rides the runtime's
  batch driver, and ``collect_stats`` / ``memory_info`` / ``dispatch_info``
  mirror the other engines (the CLI ``--stats`` output is identical across
  all three modes).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Sequence, Tuple as Tup

from repro.core.arena import ArenaDataStructure
from repro.core.datastructure import DataStructure
from repro.core.dispatch import TransitionDispatchIndex
from repro.core.evaluation import NodeRef
from repro.core.pcea import PCEA
from repro.cq.schema import Tuple
from repro.runtime import EvictionLane, RuntimeBackedEngine, StreamRuntime
from repro.valuation import Valuation


State = Hashable

#: Positions between compactions of the per-state sequence lists (dead
#: sequence numbers — whose hash entry the shared sweep already reclaimed —
#: are dropped; amortised O(live / interval) per tuple).
_COMPACT_INTERVAL = 256


class GeneralStreamingEvaluator(RuntimeBackedEngine):
    """Sliding-window evaluation of a PCEA whose predicates may be arbitrary.

    Parameters
    ----------
    pcea:
        The automaton; binary predicates only need the boolean
        ``holds(earlier, later)`` interface.
    window:
        Sliding-window size ``w``; outputs ``ν`` satisfy ``i - min(ν) <= w``.
    arena:
        With ``True`` (default) partial runs live in the arena-backed
        :class:`~repro.core.arena.ArenaDataStructure`; the shared eviction
        sweep additionally releases expired slabs, so the enumeration
        structure is window-bounded here too.  ``False`` restores the
        object-graph ``DS_w``.
    indexed:
        With ``False`` every transition is probed for every tuple (the
        pre-dispatch behaviour, kept for ablation / differential testing).
    collect_stats:
        With ``False`` the per-tuple operation counters are skipped.  The
        ``nodes_scanned`` attribute (the engine's signature linear-in-data
        cost) is maintained regardless, as it always was.
    """

    def __init__(
        self,
        pcea: PCEA,
        window: int,
        arena: bool = True,
        indexed: bool = True,
        collect_stats: bool = True,
    ) -> None:
        self.pcea = pcea
        self.window = window
        self.ds = ArenaDataStructure(window) if arena else DataStructure(window)
        self._runtime = StreamRuntime()
        self._lane = self._runtime.add_lane(EvictionLane(window, self.ds))
        # The lane table maps (source state id, sequence number) to
        # ``((stored tuple, node), stored position)`` — the pair's second
        # element is the expiry anchor the shared sweep checks, so a run is
        # reclaimed exactly when its newest position leaves the window.
        self._hash: Dict[Tup[int, int], Tup[Tup[Tuple, NodeRef], int]] = self._lane.hash
        if indexed:
            self._dispatch = pcea.dispatch_index()
        else:
            self._dispatch = TransitionDispatchIndex(
                pcea.transitions, indexed=False, final=pcea.final
            )
        # Per-state insertion-ordered sequence numbers into the lane table.
        # Entries the sweep reclaimed read as misses and are skipped by the
        # scan; the periodic compaction drops them from the lists.
        self._state_seqs: Dict[int, List[int]] = {}
        self._next_seq = 0
        self._next_compact = _COMPACT_INTERVAL
        self._count_stats = collect_stats
        self.nodes_scanned = 0

    # -------------------------------------------------------------- main loop
    def process(self, tup: Tuple) -> List[Valuation]:
        final_nodes = self.update(tup)
        return list(self.enumerate_outputs(final_nodes))

    def run(self, stream: Iterable[Tuple], collect: bool = True) -> Dict[int, List[Valuation]]:
        results: Dict[int, List[Valuation]] = {}
        for tup in stream:
            outputs = self.process(tup)
            if collect:
                results[self.position] = outputs
        return results

    def process_many(self, tuples: Sequence[Tuple]) -> List[List[Valuation]]:
        """Batched ingestion: one shared-runtime sweep per batch.

        Semantically identical to ``[self.process(t) for t in tuples]`` (the
        scan re-checks expiry per stored run, so deferring the sweep only
        delays reclamation); the one-sweep-per-batch policy is the runtime's
        :meth:`~repro.runtime.StreamRuntime.drive_batch`.
        """
        runtime = self._runtime
        results, enumerated = runtime.drive_enumerating_batch(
            tuples, self.update, self.ds.enumerate
        )
        if self._count_stats and enumerated:
            runtime.stats.outputs_enumerated += enumerated
        return results

    # ------------------------------------------------------------ update phase
    def update(self, tup: Tuple, sweep: bool = True) -> List[NodeRef]:
        runtime = self._runtime
        position = runtime.advance()
        if sweep:
            runtime.sweep(position)
        if position >= self._next_compact:
            self._compact(position)
        ds = self.ds
        ds_expired = ds.expired
        hash_table = self._hash
        state_seqs = self._state_seqs
        stats = runtime.stats if self._count_stats else None
        if stats is not None:
            stats.tuples_processed += 1
        created: List[Tup[int, bool, NodeRef]] = []
        scanned = 0
        for compiled in self._dispatch.candidates_for(tup):
            if stats is not None:
                stats.transitions_scanned += 1
                stats.predicate_evaluations += 1
            if not compiled.unary.holds(tup):
                continue
            if not compiled.joins:  # initial transition: no sources to join
                node = ds.extend(compiled.labels, position, [])
                if stats is not None:
                    stats.transitions_fired += 1
                    stats.nodes_created += 1
                created.append((compiled.target_id, compiled.is_final, node))
                continue
            per_source: List[List[NodeRef]] = []
            feasible = True
            for _, source_id, predicate in compiled.joins:
                compatible: List[NodeRef] = []
                seqs = state_seqs.get(source_id)
                if seqs:
                    holds = predicate.holds
                    for seq in seqs:
                        pair = hash_table.get((source_id, seq))
                        if pair is None:
                            continue  # reclaimed by the sweep; compaction pending
                        stored_tuple, node = pair[0]
                        scanned += 1
                        if ds_expired(node, position):
                            continue
                        if holds(stored_tuple, tup):
                            compatible.append(node)
                if not compatible:
                    feasible = False
                    break
                per_source.append(compatible)
            if not feasible:
                continue
            # Union the compatible runs of each source into one node, then take
            # the product — the same factorisation as Algorithm 1, built per
            # tuple instead of maintained per key.  Every stored node is a
            # product node (no union links), so ``DS_w.union`` applies.
            children: List[NodeRef] = []
            for compatible in per_source:
                union_node = compatible[0]
                for node in compatible[1:]:
                    union_node = ds.union(union_node, node)
                    if stats is not None:
                        stats.unions += 1
                children.append(union_node)
            node = ds.extend(compiled.labels, position, children)
            if stats is not None:
                stats.transitions_fired += 1
                stats.nodes_created += 1
            created.append((compiled.target_id, compiled.is_final, node))

        self.nodes_scanned += scanned
        if stats is not None:
            stats.hash_lookups += scanned

        # Store the new runs: lane table + per-state sequence list + one
        # shared expiry-bucket registration each (newest position anchors the
        # expiry, exactly the old deque eviction's timing).
        final_nodes: List[NodeRef] = []
        if created:
            lane = self._lane
            buckets = runtime.buckets
            add_ref = lane.add_ref
            expiry_position = position + self.window + 1
            expiry = buckets.get(expiry_position)
            if expiry is None:
                expiry = buckets[expiry_position] = []
            for state_id, is_final, node in created:
                seq = self._next_seq
                self._next_seq = seq + 1
                key = (state_id, seq)
                hash_table[key] = ((tup, node), position)
                if stats is not None:
                    stats.hash_updates += 1
                seqs = state_seqs.get(state_id)
                if seqs is None:
                    state_seqs[state_id] = [seq]
                else:
                    seqs.append(seq)
                expiry.append((lane, key, node))
                add_ref(node)
                if is_final:
                    final_nodes.append(node)
        return final_nodes

    def _compact(self, position: int) -> None:
        """Drop sequence numbers whose entry the sweep already reclaimed."""
        self._next_compact = position + _COMPACT_INTERVAL
        hash_table = self._hash
        for state_id, seqs in self._state_seqs.items():
            live = [seq for seq in seqs if (state_id, seq) in hash_table]
            if len(live) != len(seqs):
                self._state_seqs[state_id] = live

    # ------------------------------------------------------- enumeration phase
    def enumerate_outputs(self, final_nodes: Sequence[NodeRef]) -> Iterator[Valuation]:
        count_stats = self._count_stats
        stats = self._runtime.stats
        position = self.position
        for node in final_nodes:
            for valuation in self.ds.enumerate(node, position):
                if count_stats:
                    stats.outputs_enumerated += 1
                yield valuation

    # ------------------------------------------------------------ introspection
    def live_run_count(self) -> int:
        """Number of live partial runs currently stored (benchmark instrumentation).

        The same quantity as the inherited ``hash_table_size`` — each stored
        run is one lane-table entry — kept under this engine's historical
        name.
        """
        return len(self._hash)

    # (hash_table_size / memory_info come from RuntimeBackedEngine.)
    def dispatch_info(self) -> Dict[str, float]:
        """Summary of the transition dispatch index (see ``TransitionDispatchIndex.describe``)."""
        return self._dispatch.describe()

    def reset_statistics(self) -> None:
        self._runtime.reset_statistics()
        self.nodes_scanned = 0
