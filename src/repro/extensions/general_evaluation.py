"""Streaming evaluation of PCEA with arbitrary binary predicates.

Algorithm 1 (Section 5) hashes partial runs on equality keys, which is what
makes its update time independent of the number of live runs.  When a
transition carries a *non-equality* predicate (an inequality, a similarity
join, an arbitrary callable) no such key exists; the paper leaves this case
open (Section 6).

:class:`GeneralStreamingEvaluator` is the pragmatic fallback: it keeps the same
factorised run representation (the ``DS_w`` nodes of Section 5, so the
enumeration phase is still output-linear), but during the update phase it scans
the live nodes of every source state and filters them with the binary
predicate.  Its update time is therefore ``O(candidates · live_nodes)`` —
matching the "update time linear in the data" behaviour of the θ-join engines
discussed in the related work — while producing exactly the same outputs as
Algorithm 1 whenever both apply.

Runtime parity
--------------
This evaluator runs on the same :class:`~repro.runtime.StreamRuntime` core as
the hashed engines (it is a single :class:`~repro.runtime.EvictionLane`, like
:class:`~repro.core.evaluation.StreamingEvaluator`):

* **dispatch** — transitions are probed through the compile-once
  :class:`~repro.core.dispatch.TransitionDispatchIndex` (``indexed=False``
  restores the full per-tuple scan), so tuples of irrelevant relations cost
  one dict lookup instead of ``O(|Δ|)`` predicate evaluations;
* **eviction** — live runs are stored in the lane's table keyed by
  ``(source state id, sequence number)`` with the run's newest position as
  the expiry anchor, and reclaimed by the runtime's shared bucket sweep: a
  run whose newest tuple is older than ``w`` can never contribute an
  in-window output again, because outputs are constrained through
  ``min(ν) >= i - w`` and ``min(ν) <=`` every position of the run.  The scan
  re-checks ``ds.expired`` before touching a stored node, so entries whose
  arena slab was already released read as expired and are skipped;
* **batching / statistics / memory** — ``process_many`` rides the runtime's
  batch driver, and ``collect_stats`` / ``memory_info`` / ``dispatch_info``
  mirror the other engines (the CLI ``--stats`` output is identical across
  all three modes).

Per-state ring buffers
----------------------
The per-state index over live runs is a fixed-stride ring buffer of sequence
numbers (:class:`_SeqRing`, an ``array('q')`` circle with absolute
head/tail cursors), not a periodically-compacted Python list.  The crucial
structural fact: runs of one state die in insertion order — each ``(state,
seq)`` entry is stored exactly once with its stream position as the expiry
anchor, positions only grow, and the shared sweep pops expiry buckets in
position order — so expiry is strictly FIFO per state.  The sweep *drives*
the ring directly through the lane's ``on_evict`` hook: evicting ``(state,
seq)`` advances that state's head past every leading dead entry, so the scan
never iterates garbage and the old ``O(live)`` compaction pass (and its
``_COMPACT_INTERVAL`` tuning constant) is gone.  ``ring_capacity`` sets the
initial per-state capacity (a constructor knob; rings grow by doubling and
``memory_info`` reports their occupancy).
"""

from __future__ import annotations

import struct
from array import array
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple as Tup

from repro.core.adaptive import resolve_config
from repro.core.arena import ArenaDataStructure
from repro.core.datastructure import DataStructure
from repro.core.dispatch import TransitionDispatchIndex, _transition_order
from repro.core.evaluation import NodeRef
from repro.core.pcea import PCEA
from repro.cq.schema import Tuple
from repro.runtime import EvictionLane, RuntimeBackedEngine, StreamRuntime
from repro.runtime.snapshot import SNAPSHOT_VERSION, SnapshotError, check_snapshot_header, stable_signature
from repro.valuation import Valuation


State = Hashable

#: Default initial per-state ring-buffer capacity (slots; rings double on
#: overflow, so this only sets the growth starting point).
DEFAULT_RING_CAPACITY = 64

#: Ring-head advance reads sequence numbers in batched chunks of up to this
#: many (one ``unpack_from`` call instead of one boxed ``array`` element read
#: each); small, because most sweeps advance a head by only a slot or two and
#: over-reading past the first live entry is wasted work.
_SEQ_CHUNK = 8

#: Cached per-length unpackers for the chunked reads (index = run length).
_UNPACK_SEQS = [struct.Struct(f"{n}q").unpack_from for n in range(_SEQ_CHUNK + 1)]


class _SeqRing:
    """A fixed-stride ring of sequence numbers with absolute cursors.

    ``buf`` is an ``array('q')`` whose length is a power of two; ``head`` and
    ``tail`` are absolute (monotonic) counters, so the live slice is
    ``buf[i & mask] for i in range(head, tail)`` and the ring is full when
    ``tail - head == len(buf)``.  Appending into a full ring reallocates at
    double capacity, copying the live entries in order.
    """

    __slots__ = ("buf", "mask", "head", "tail")

    def __init__(self, capacity: int) -> None:
        size = 1
        while size < capacity:
            size <<= 1
        self.buf = array("q", bytes(8 * size))
        self.mask = size - 1
        self.head = 0
        self.tail = 0

    def append(self, seq: int) -> None:
        buf = self.buf
        mask = self.mask
        tail = self.tail
        if tail - self.head > mask:  # full: grow by doubling, preserving order
            grown = array("q", bytes(16 * (mask + 1)))
            for index in range(self.head, tail):
                grown[index - self.head] = buf[index & mask]
            self.buf = buf = grown
            self.mask = mask = len(grown) - 1
            self.tail = tail = tail - self.head
            self.head = 0
        buf[tail & mask] = seq
        self.tail = tail + 1

    def __len__(self) -> int:
        return self.tail - self.head

    def live(self) -> List[int]:
        """The live sequence numbers, oldest first (snapshot/introspection)."""
        buf = self.buf
        mask = self.mask
        return [buf[index & mask] for index in range(self.head, self.tail)]

    def __repr__(self) -> str:
        return f"_SeqRing(live={len(self)}, capacity={self.mask + 1})"


class GeneralStreamingEvaluator(RuntimeBackedEngine):
    """Sliding-window evaluation of a PCEA whose predicates may be arbitrary.

    Parameters
    ----------
    pcea:
        The automaton; binary predicates only need the boolean
        ``holds(earlier, later)`` interface.
    window:
        Sliding-window size ``w``; outputs ``ν`` satisfy ``i - min(ν) <= w``.
    arena:
        With ``True`` (default) partial runs live in the arena-backed
        :class:`~repro.core.arena.ArenaDataStructure`; the shared eviction
        sweep additionally releases expired slabs, so the enumeration
        structure is window-bounded here too.  ``False`` restores the
        object-graph ``DS_w``.
    columnar:
        Arena column layout (``array('q')`` packing by default;
        ``False`` keeps the list-backed slabs — ablation).  Ignored with
        ``arena=False``.
    indexed:
        With ``False`` every transition is probed for every tuple (the
        pre-dispatch behaviour, kept for ablation / differential testing).
    collect_stats:
        With ``False`` the per-tuple operation counters are skipped.  The
        ``nodes_scanned`` attribute (the engine's signature linear-in-data
        cost) is maintained regardless, as it always was.
    ring_capacity:
        Initial capacity (slots) of each per-state sequence ring
        (:data:`DEFAULT_RING_CAPACITY` by default; rings grow by doubling).
    kernel:
        Record-operation backend for the arena hot path (``"python"`` /
        ``"native"`` / ``"auto"``; ``None`` defers to ``REPRO_KERNEL`` then
        auto-detection — :mod:`repro.core.kernel`).  Ignored with
        ``arena=False``.
    adaptive:
        Adaptive selectivity-driven dispatch (:mod:`repro.core.adaptive`):
        runtime hit counters reorder candidate groups and promote hot
        constant-guard values.  Particularly effective here, where a shared
        group verdict saves whole ring scans; outputs, counters and
        snapshots stay bit-identical to the static path (``False``, the
        ablation oracle).  Requires ``indexed=True`` (silently inert
        otherwise); an :class:`~repro.core.adaptive.AdaptiveConfig`
        overrides the knobs.
    """

    def __init__(
        self,
        pcea: PCEA,
        window: int,
        arena: bool = True,
        indexed: bool = True,
        collect_stats: bool = True,
        columnar: bool = True,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        kernel: Optional[str] = None,
        adaptive: object = True,
    ) -> None:
        if ring_capacity < 1:
            raise ValueError("ring_capacity must be at least 1 slot")
        self.pcea = pcea
        self.window = window
        self.ds = (
            ArenaDataStructure(window, columnar=columnar, kernel=kernel)
            if arena
            else DataStructure(window)
        )
        self._runtime = StreamRuntime()
        self._lane = self._runtime.add_lane(EvictionLane(window, self.ds))
        # The lane table maps (source state id, sequence number) to
        # ``((stored tuple, node), stored position)`` — the pair's second
        # element is the expiry anchor the shared sweep checks, so a run is
        # reclaimed exactly when its newest position leaves the window.
        self._hash: Dict[Tup[int, int], Tup[Tup[Tuple, NodeRef], int]] = self._lane.hash
        if indexed:
            self._dispatch = pcea.dispatch_index()
        else:
            self._dispatch = TransitionDispatchIndex(
                pcea.transitions, indexed=False, final=pcea.final
            )
        # Per-state rings of live sequence numbers (FIFO by the expiry
        # argument in the module docstring); the sweep advances the heads
        # through the lane's eviction hook.
        self._rings: Dict[int, _SeqRing] = {}
        self._ring_capacity = ring_capacity
        self._next_seq = 0
        self._lane.on_evict = self._on_evict
        self._count_stats = collect_stats
        self._runtime.count_stats = collect_stats
        self.nodes_scanned = 0
        # Adaptive dispatch: only armed when the index actually dispatches
        # and the automaton has something to learn (a promotable guard
        # position or a shareable predicate group) — otherwise the per-tuple
        # path is exactly the static one.
        self._adaptive = None
        config = resolve_config(adaptive) if self._dispatch.indexed else None
        if config is not None:
            state = self._dispatch.build_adaptive(config)
            if state.tracked():
                self._adaptive = state
                self._runtime.arm_adapt(self._adapt_flush, config.interval)

    # -------------------------------------------------------------- main loop
    def process(self, tup: Tuple) -> List[Valuation]:
        final_nodes = self.update(tup)
        return list(self.enumerate_outputs(final_nodes))

    def run(self, stream: Iterable[Tuple], collect: bool = True) -> Dict[int, List[Valuation]]:
        results: Dict[int, List[Valuation]] = {}
        for tup in stream:
            outputs = self.process(tup)
            if collect:
                results[self.position] = outputs
        return results

    def process_many(self, tuples: Sequence[Tuple]) -> List[List[Valuation]]:
        """Batched ingestion: one shared-runtime sweep per batch.

        Semantically identical to ``[self.process(t) for t in tuples]`` (the
        scan re-checks expiry per stored run, so deferring the sweep only
        delays reclamation); the one-sweep-per-batch policy is the runtime's
        :meth:`~repro.runtime.StreamRuntime.drive_batch`.
        """
        runtime = self._runtime
        results, enumerated = runtime.drive_enumerating_batch(
            tuples, self.update, self.ds.enumerate
        )
        if self._count_stats and enumerated:
            runtime.stats.outputs_enumerated += enumerated
        return results

    # --------------------------------------------------------------- eviction
    def _on_evict(self, key: Tup[int, int]) -> None:
        """Sweep hook: advance the state's ring head past dead entries.

        Called by the shared sweep for every ``(state, seq)`` entry it
        genuinely evicts.  Expiry is FIFO per state, so the dead entries are
        exactly the leading ones; advancing past *all* leading misses (not
        just ``seq``) keeps the ring correct even across deferred batched
        sweeps that evict several runs of one state at once.
        """
        ring = self._rings.get(key[0])
        if ring is None:
            return
        state_id = key[0]
        hash_table = self._hash
        buf = ring.buf
        mask = ring.mask
        head = ring.head
        tail = ring.tail
        unpackers = _UNPACK_SEQS
        while head < tail:
            # Batched record read: one ``unpack_from`` per contiguous chunk
            # (bounded by the buffer wrap point) instead of one boxed
            # ``array`` element read per dead entry.
            start = head & mask
            run = tail - head
            if run > _SEQ_CHUNK:
                run = _SEQ_CHUNK
            wrap = mask + 1 - start
            if run > wrap:
                run = wrap
            for seq in unpackers[run](buf, start * 8):
                if (state_id, seq) in hash_table:
                    ring.head = head
                    return
                head += 1
        ring.head = head

    # ------------------------------------------------------------ update phase
    def update(self, tup: Tuple, sweep: bool = True) -> List[NodeRef]:
        runtime = self._runtime
        position = runtime.advance()
        if sweep:
            runtime.sweep(position)
        ds = self.ds
        ds_expired = ds.expired
        hash_table = self._hash
        rings = self._rings
        stats = runtime.stats if self._count_stats else None
        if stats is not None:
            stats.tuples_processed += 1
        created: List[Tup[int, bool, NodeRef]] = []
        scanned = 0
        # Plan mode evaluates one unary per predicate group (all members are
        # pred_key-equal, so the group verdict is each member's verdict),
        # then runs the held members' ring scans in canonical transition
        # order.  The scans read only state stored by *previous* tuples, so
        # deciding all verdicts up front cannot change any scan's view —
        # ``created`` (and hence node allocation, storage and snapshots)
        # stays bit-identical to the static candidate walk.
        adaptive = self._adaptive
        plan = adaptive.plan_for(tup) if adaptive is not None else None
        if plan is not None:
            if stats is not None:
                stats.transitions_scanned += plan.total
                stats.predicate_evaluations += plan.total
            held: List = []
            for group in plan.groups:
                if group.unary.holds(tup):
                    group.rep.hits += 1
                    held.extend(group.members)
            if len(held) > 1:
                held.sort(key=_transition_order)
            candidates = held
        else:
            candidates = self._dispatch.candidates_for(tup)
        for compiled in candidates:
            if plan is None:
                if stats is not None:
                    stats.transitions_scanned += 1
                    stats.predicate_evaluations += 1
                if not compiled.unary.holds(tup):
                    continue
            if not compiled.joins:  # initial transition: no sources to join
                node = ds.extend(compiled.labels, position, [])
                if stats is not None:
                    stats.transitions_fired += 1
                    stats.nodes_created += 1
                created.append((compiled.target_id, compiled.is_final, node))
                continue
            per_source: List[List[NodeRef]] = []
            feasible = True
            for _, source_id, predicate in compiled.joins:
                compatible: List[NodeRef] = []
                ring = rings.get(source_id)
                if ring is not None and ring.head < ring.tail:
                    holds = predicate.holds
                    buf = ring.buf
                    mask = ring.mask
                    for index in range(ring.head, ring.tail):
                        pair = hash_table.get((source_id, buf[index & mask]))
                        if pair is None:
                            continue  # evicted between hook runs (deferred sweep)
                        stored_tuple, node = pair[0]
                        scanned += 1
                        if ds_expired(node, position):
                            continue
                        if holds(stored_tuple, tup):
                            compatible.append(node)
                if not compatible:
                    feasible = False
                    break
                per_source.append(compatible)
            if not feasible:
                continue
            # Union the compatible runs of each source into one node, then take
            # the product — the same factorisation as Algorithm 1, built per
            # tuple instead of maintained per key.  Every stored node is a
            # product node (no union links), so ``DS_w.union`` applies.
            children: List[NodeRef] = []
            for compatible in per_source:
                union_node = compatible[0]
                for node in compatible[1:]:
                    union_node = ds.union(union_node, node)
                    if stats is not None:
                        stats.unions += 1
                children.append(union_node)
            node = ds.extend(compiled.labels, position, children)
            if stats is not None:
                stats.transitions_fired += 1
                stats.nodes_created += 1
            created.append((compiled.target_id, compiled.is_final, node))

        self.nodes_scanned += scanned
        if stats is not None:
            stats.hash_lookups += scanned

        # Store the new runs: lane table + per-state ring + one shared
        # expiry-bucket registration each (newest position anchors the
        # expiry, exactly the old deque eviction's timing; the flat-triple
        # protocol is StreamRuntime.register_entry, inlined).
        final_nodes: List[NodeRef] = []
        if created:
            lane = self._lane
            lane_id = lane.lane_id
            buckets = runtime.buckets
            add_ref = lane.add_ref
            ring_capacity = self._ring_capacity
            expiry_position = position + self.window + 1
            expiry = buckets.get(expiry_position)
            if expiry is None:
                expiry = buckets[expiry_position] = []
            for state_id, is_final, node in created:
                seq = self._next_seq
                self._next_seq = seq + 1
                key = (state_id, seq)
                hash_table[key] = ((tup, node), position)
                if stats is not None:
                    stats.hash_updates += 1
                ring = rings.get(state_id)
                if ring is None:
                    ring = rings[state_id] = _SeqRing(ring_capacity)
                ring.append(seq)
                expiry.append(lane_id)
                expiry.append(key)
                expiry.append(node)
                add_ref(node)
                if is_final:
                    final_nodes.append(node)
        return final_nodes

    # ------------------------------------------------------- enumeration phase
    def enumerate_outputs(self, final_nodes: Sequence[NodeRef]) -> Iterator[Valuation]:
        count_stats = self._count_stats
        stats = self._runtime.stats
        position = self.position
        for node in final_nodes:
            for valuation in self.ds.enumerate(node, position):
                if count_stats:
                    stats.outputs_enumerated += 1
                yield valuation

    # ------------------------------------------------------- snapshot protocol
    def snapshot(self) -> Dict[str, object]:
        """The engine's complete evaluation state (see :mod:`repro.runtime.snapshot`).

        Picklable and tagged-JSON serialisable; restorable into a freshly
        constructed engine evaluating the same automaton with the same
        window (verified through the dispatch-index signature).
        """
        lane = self._lane
        return {
            "snapshot_version": SNAPSHOT_VERSION,
            "engine": "general",
            "window": self.window,
            "dispatch_signature": stable_signature(self._dispatch.signature()),
            "runtime": self._runtime.snapshot({lane.lane_id: 0}),
            "lane": lane.snapshot(),
            "rings": {state_id: ring.live() for state_id, ring in self._rings.items()},
            "next_seq": self._next_seq,
            "nodes_scanned": self.nodes_scanned,
        }

    def restore(self, snapshot: Dict[str, object]) -> None:
        """Adopt ``snapshot``'s state; evaluation then continues bit-identically.

        The engine must have been constructed for the same automaton and
        window (and with ``arena=True``); everything else — position, stored
        runs, arena slabs, rings, statistics — is replaced.
        """
        check_snapshot_header(snapshot, "general")
        if snapshot["window"] != self.window:
            raise SnapshotError(
                f"snapshot was taken with window {snapshot['window']}, "
                f"this engine has window {self.window}"
            )
        if stable_signature(self._dispatch.signature()) != snapshot["dispatch_signature"]:
            raise SnapshotError(
                "snapshot was taken from an engine with a different automaton "
                "(dispatch-index signatures differ)"
            )
        # Bind every section before mutating: a truncated snapshot raises
        # before any state is touched, never after a half-restore.
        try:
            lane_snap = snapshot["lane"]
            runtime_snap = snapshot["runtime"]
            ring_snaps = snapshot["rings"]
            next_seq = int(snapshot["next_seq"])
            nodes_scanned = int(snapshot["nodes_scanned"])
        except KeyError as exc:
            raise SnapshotError(f"snapshot is missing the {exc} section") from exc
        self._lane.restore(lane_snap)
        self._runtime.restore(runtime_snap, [self._lane])
        rings: Dict[int, _SeqRing] = {}
        for state_id, live in ring_snaps.items():
            ring = _SeqRing(max(self._ring_capacity, len(live)))
            for seq in live:
                ring.append(seq)
            rings[int(state_id)] = ring
        self._rings = rings
        self._next_seq = next_seq
        self.nodes_scanned = nodes_scanned
        if self._adaptive is not None:
            # Deterministic reset (learning state is never serialized): the
            # restored engine re-learns, identically on every restore.
            self._adaptive.reset()
            self._runtime.arm_adapt(self._adapt_flush, self._adaptive.config.interval)

    # ------------------------------------------------------------ introspection
    def live_run_count(self) -> int:
        """Number of live partial runs currently stored (benchmark instrumentation).

        The same quantity as the inherited ``hash_table_size`` — each stored
        run is one lane-table entry — kept under this engine's historical
        name.
        """
        return len(self._hash)

    def memory_info(self) -> Dict[str, int]:
        """Runtime memory info plus the per-state ring-buffer occupancy."""
        info = self._runtime.memory_info()
        info["ring_capacity"] = self._ring_capacity
        info["ring_states"] = len(self._rings)
        info["ring_slots"] = sum(ring.mask + 1 for ring in self._rings.values())
        info["ring_live"] = sum(len(ring) for ring in self._rings.values())
        return info

    # (hash_table_size / dispatch_info / observe come from
    # RuntimeBackedEngine; this hook points them at the automaton's index.)
    def _dispatch_source(self):
        return self._dispatch

    def _adapt_flush(self, position: int) -> None:
        reorders, promotions, demotions = self._adaptive.flush()
        obs = self._runtime.obs
        if obs is not None and (reorders or promotions or demotions):
            obs.on_dispatch_adapt(reorders, promotions, demotions)

    def reset_statistics(self) -> None:
        self._runtime.reset_statistics()
        self.nodes_scanned = 0
