"""Streaming evaluation of PCEA with arbitrary binary predicates.

Algorithm 1 (Section 5) hashes partial runs on equality keys, which is what
makes its update time independent of the number of live runs.  When a
transition carries a *non-equality* predicate (an inequality, a similarity
join, an arbitrary callable) no such key exists; the paper leaves this case
open (Section 6).

:class:`GeneralStreamingEvaluator` is the pragmatic fallback: it keeps the same
factorised run representation (the ``DS_w`` nodes of Section 5, so the
enumeration phase is still output-linear), but during the update phase it scans
the live nodes of every source state and filters them with the binary
predicate.  Its update time is therefore ``O(|Δ| · live_nodes)`` — matching the
"update time linear in the data" behaviour of the θ-join engines discussed in
the related work — while producing exactly the same outputs as Algorithm 1
whenever both apply.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, Iterable, Iterator, List, Sequence, Tuple as Tup

from repro.core.arena import ArenaDataStructure
from repro.core.datastructure import DataStructure
from repro.core.evaluation import NodeRef
from repro.core.pcea import PCEA
from repro.cq.schema import Tuple
from repro.valuation import Valuation


State = Hashable


class GeneralStreamingEvaluator:
    """Sliding-window evaluation of a PCEA whose predicates may be arbitrary.

    Parameters
    ----------
    pcea:
        The automaton; binary predicates only need the boolean
        ``holds(earlier, later)`` interface.
    window:
        Sliding-window size ``w``; outputs ``ν`` satisfy ``i - min(ν) <= w``.
    arena:
        With ``True`` (default) partial runs live in the arena-backed
        :class:`~repro.core.arena.ArenaDataStructure`; the per-position
        eviction additionally releases expired slabs, so the enumeration
        structure is window-bounded here too.  ``False`` restores the
        object-graph ``DS_w``.

    Notes
    -----
    Live partial runs are stored per state as ``(position, tuple, node)``
    entries and evicted once their *newest* position falls out of the window —
    a run whose newest tuple is older than ``w`` can never contribute an
    in-window output again, because outputs are constrained through
    ``min(ν) >= i - w`` and ``min(ν) <=`` every position of the run.
    The update scan re-checks ``ds.expired`` before touching a stored node, so
    entries whose slab was already released read as expired and are skipped —
    no external-reference counting is needed for the scan lists.
    """

    def __init__(self, pcea: PCEA, window: int, arena: bool = True) -> None:
        self.pcea = pcea
        self.window = window
        self.ds = ArenaDataStructure(window) if arena else DataStructure(window)
        self.position = -1
        self._live: Dict[State, Deque[Tup[int, Tuple, NodeRef]]] = {
            state: deque() for state in pcea.states
        }
        self.nodes_scanned = 0

    # -------------------------------------------------------------- main loop
    def process(self, tup: Tuple) -> List[Valuation]:
        final_nodes = self.update(tup)
        return list(self.enumerate_outputs(final_nodes))

    def run(self, stream: Iterable[Tuple], collect: bool = True) -> Dict[int, List[Valuation]]:
        results: Dict[int, List[Valuation]] = {}
        for tup in stream:
            outputs = self.process(tup)
            if collect:
                results[self.position] = outputs
        return results

    # ------------------------------------------------------------ update phase
    def update(self, tup: Tuple) -> List[NodeRef]:
        self.position += 1
        position = self.position
        self._evict(position)
        created: List[Tup[State, NodeRef]] = []
        for transition in self.pcea.transitions:
            if not transition.unary.holds(tup):
                continue
            if transition.is_initial:
                node = self.ds.extend(transition.labels, position, [])
                created.append((transition.target, node))
                continue
            per_source: List[List[NodeRef]] = []
            feasible = True
            for source in sorted(transition.sources, key=str):
                predicate = transition.binaries[source]
                compatible: List[NodeRef] = []
                for stored_position, stored_tuple, node in self._live[source]:
                    self.nodes_scanned += 1
                    if self.ds.expired(node, position):
                        continue
                    if predicate.holds(stored_tuple, tup):
                        compatible.append(node)
                if not compatible:
                    feasible = False
                    break
                per_source.append(compatible)
            if not feasible:
                continue
            # Union the compatible runs of each source into one node, then take
            # the product — the same factorisation as Algorithm 1, built per
            # tuple instead of maintained per key.  Every stored node is a
            # product node (no union links), so ``DataStructure.union`` applies.
            children: List[NodeRef] = []
            for compatible in per_source:
                union_node = compatible[0]
                for node in compatible[1:]:
                    union_node = self.ds.union(union_node, node)
                children.append(union_node)
            node = self.ds.extend(transition.labels, position, children)
            created.append((transition.target, node))

        final_nodes: List[NodeRef] = []
        for state, node in created:
            self._live[state].append((position, tup, node))
            if state in self.pcea.final:
                final_nodes.append(node)
        return final_nodes

    # ------------------------------------------------------- enumeration phase
    def enumerate_outputs(self, final_nodes: Sequence[NodeRef]) -> Iterator[Valuation]:
        for node in final_nodes:
            yield from self.ds.enumerate(node, self.position)

    # ----------------------------------------------------------------- eviction
    def _evict(self, position: int) -> None:
        low = position - self.window
        for entries in self._live.values():
            while entries and entries[0][0] < low:
                entries.popleft()
        # Arena reclamation rides on the same per-position eviction; a no-op
        # for the object structure.
        self.ds.release_expired(position)

    def live_run_count(self) -> int:
        """Number of live partial runs currently stored (benchmark instrumentation)."""
        return sum(len(entries) for entries in self._live.values())
