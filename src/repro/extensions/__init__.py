"""Extensions beyond the paper's core results.

Section 6 of the paper lists open directions; this subpackage implements the
pragmatic versions of two of them:

* :mod:`repro.extensions.general_evaluation` — a streaming evaluator for PCEA
  with *arbitrary* binary predicates (e.g. inequalities).  It keeps the
  factorised output representation of Section 5 but, lacking equality keys to
  hash on, scans the live partial runs per transition, so its update time is
  linear in the number of stored runs (the behaviour of the θ-join engines in
  the related-work section) instead of logarithmic.  It shares the
  :mod:`repro.runtime` core with the hashed engines — dispatch-index
  candidate pruning, the window-bounded eviction sweep, batched
  ``process_many`` ingestion, and the unified statistics / memory surface.
* :mod:`repro.extensions.disambiguation` — bounded checks for the unambiguity
  hypothesis of Theorem 5.1: a syntactic sufficient condition and an
  exhaustive small-stream search for counterexamples.
"""

from repro.extensions.general_evaluation import GeneralStreamingEvaluator
from repro.extensions.disambiguation import (
    ambiguity_witness,
    is_syntactically_unambiguous,
)

__all__ = [
    "GeneralStreamingEvaluator",
    "ambiguity_witness",
    "is_syntactically_unambiguous",
]
