"""A small CER pattern language (syntax only; compilation in :mod:`repro.engine.compiler`).

Patterns are built from four combinators:

* :func:`atom` — a single event of a relation, binding variables and applying
  local filters (e.g. ``atom("Buy", "s", "p", filters=[("p", ">", 100)])``);
* :func:`conjunction` — all sub-events must occur (in any order), correlated
  through shared variables; the variable structure must be hierarchical;
* :func:`sequence` — the components must occur in stream order; correlation
  with the previous component happens through the variables shared with it
  (the model's inherent "compare with the last tuple" restriction);
* :func:`disjunction` — either alternative matches.

Every atom occurring in a pattern receives an integer label (its position in a
left-to-right traversal); the output valuations map these labels to stream
positions, exactly like the atom identifiers of a CQ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence as Seq, Tuple as Tup, Union

from repro.cq.query import Atom, Variable
from repro.cq.schema import DataValue


FilterSpec = Tup[str, str, DataValue]


class Pattern:
    """Base class of CER patterns."""

    def atoms(self) -> Iterator["AtomPattern"]:
        """All atom patterns, in left-to-right order."""
        raise NotImplementedError

    def then(self, other: "Pattern") -> "Sequence":
        """``self`` followed (later in the stream) by ``other``."""
        return sequence(self, other)

    def and_(self, other: "Pattern") -> "Conjunction":
        """``self`` and ``other`` in any order."""
        return conjunction(self, other)

    def or_(self, other: "Pattern") -> "Disjunction":
        """``self`` or ``other``."""
        return disjunction(self, other)


@dataclass(frozen=True)
class AtomPattern(Pattern):
    """A single-event pattern: relation name, variable names, optional filters.

    ``variables`` may repeat a name (forcing equal attribute values) and
    filters are ``(variable, operator, constant)`` triples applied locally.
    """

    relation: str
    variables: Tup[str, ...]
    filters: Tup[FilterSpec, ...] = ()

    def atoms(self) -> Iterator["AtomPattern"]:
        yield self

    def as_atom(self) -> Atom:
        """The CQ atom corresponding to this pattern (filters excluded)."""
        return Atom(self.relation, tuple(Variable(name) for name in self.variables))

    def variable_positions(self, name: str) -> Tup[int, ...]:
        return tuple(i for i, v in enumerate(self.variables) if v == name)

    def __str__(self) -> str:
        inner = ", ".join(self.variables)
        suffix = "".join(f"[{v} {op} {c!r}]" for v, op, c in self.filters)
        return f"{self.relation}({inner}){suffix}"


@dataclass(frozen=True)
class Conjunction(Pattern):
    """Unordered conjunction of atom patterns (and nested conjunctions)."""

    parts: Tup[Pattern, ...]

    def atoms(self) -> Iterator[AtomPattern]:
        for part in self.parts:
            yield from part.atoms()

    def __str__(self) -> str:
        return " AND ".join(f"({part})" for part in self.parts)


@dataclass(frozen=True)
class Sequence(Pattern):
    """Ordered sequence of components (atoms or conjunctions)."""

    parts: Tup[Pattern, ...]

    def atoms(self) -> Iterator[AtomPattern]:
        for part in self.parts:
            yield from part.atoms()

    def __str__(self) -> str:
        return " ; ".join(f"({part})" for part in self.parts)


@dataclass(frozen=True)
class Disjunction(Pattern):
    """Disjunction of alternatives."""

    parts: Tup[Pattern, ...]

    def atoms(self) -> Iterator[AtomPattern]:
        for part in self.parts:
            yield from part.atoms()

    def __str__(self) -> str:
        return " OR ".join(f"({part})" for part in self.parts)


def atom(relation: str, *variables: str, filters: Seq[FilterSpec] = ()) -> AtomPattern:
    """Build an :class:`AtomPattern`.

    >>> str(atom("Buy", "s", "p", filters=[("p", ">", 100)]))
    "Buy(s, p)[p > 100]"
    """
    return AtomPattern(relation, tuple(variables), tuple(filters))


def _flatten(parts: Seq[Pattern], kind: type) -> Tup[Pattern, ...]:
    flattened: List[Pattern] = []
    for part in parts:
        if isinstance(part, kind):
            flattened.extend(part.parts)  # type: ignore[attr-defined]
        else:
            flattened.append(part)
    return tuple(flattened)


def conjunction(*parts: Pattern) -> Conjunction:
    """Unordered conjunction; nested conjunctions are flattened."""
    if not parts:
        raise ValueError("conjunction needs at least one part")
    return Conjunction(_flatten(parts, Conjunction))


def sequence(*parts: Pattern) -> Sequence:
    """Ordered sequence; nested sequences are flattened."""
    if not parts:
        raise ValueError("sequence needs at least one part")
    return Sequence(_flatten(parts, Sequence))


def disjunction(*parts: Pattern) -> Disjunction:
    """Disjunction; nested disjunctions are flattened."""
    if not parts:
        raise ValueError("disjunction needs at least one part")
    return Disjunction(_flatten(parts, Disjunction))
