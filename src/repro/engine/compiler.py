"""Compilation of CER patterns (:mod:`repro.engine.dsl`) into PCEA.

The compiler maps the pattern combinators onto the automaton constructions of
the paper:

* an unordered :class:`~repro.engine.dsl.Conjunction` is translated through the
  Theorem 4.1 construction (its variable structure must therefore be
  hierarchical);
* a :class:`~repro.engine.dsl.Sequence` appends, for each later component, a
  fresh state reachable from the final states of the prefix automaton — the
  correlation with the previous component uses the variables shared with *all*
  of its atoms, reflecting the model's "compare with the last tuple"
  discipline;
* a :class:`~repro.engine.dsl.Disjunction` is a disjoint union of the
  alternatives' automata.

Labels of the resulting PCEA are the integer positions of the atom patterns in
a left-to-right traversal of the pattern; output valuations map these labels to
stream positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Sequence as Seq, Set, Tuple as Tup

from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.core.pcea import PCEA, PCEATransition
from repro.core.predicates import (
    AttributeFilter,
    AtomUnaryPredicate,
    BinaryPredicate,
    EqualityPredicate,
    ProjectionEquality,
    TrueEquality,
    UnaryPredicate,
)
from repro.cq.query import ConjunctiveQuery, Variable
from repro.cq.schema import Tuple
from repro.engine.dsl import AtomPattern, Conjunction, Disjunction, Pattern, Sequence


class PatternCompilationError(ValueError):
    """Raised when a pattern cannot be compiled to a PCEA."""


@dataclass(frozen=True)
class _FilteredUnary(UnaryPredicate):
    """A unary predicate conjoined with local attribute filters (still in ``U_lin``)."""

    base: UnaryPredicate
    filters: Tup[AttributeFilter, ...]

    def holds(self, tup: Tuple) -> bool:
        if not self.base.holds(tup):
            return False
        return all(flt.holds(tup) for flt in self.filters)

    def dispatch_relations(self):
        # The conjunction only accepts tuples accepted by every conjunct, so
        # the dispatch key is the intersection of the known relation sets.
        result = self.base.dispatch_relations()
        for flt in self.filters:
            relations = flt.dispatch_relations()
            if relations is None:
                continue
            result = relations if result is None else result & relations
        return result

    def canonical_key(self):
        return (
            "filtered",
            self.base.canonical_key(),
            tuple(flt.canonical_key() for flt in self.filters),
        )

    def constant_guard(self):
        # Any conjunct's guard is a guard of the conjunction.
        guard = self.base.constant_guard()
        if guard is not None:
            return guard
        for flt in self.filters:
            guard = flt.constant_guard()
            if guard is not None:
                return guard
        return None

    def __str__(self) -> str:
        if not self.filters:
            return str(self.base)
        return f"{self.base} ∧ " + " ∧ ".join(str(f) for f in self.filters)


@dataclass
class _Fragment:
    """An automaton fragment produced while compiling a sub-pattern."""

    states: Set[Hashable]
    transitions: List[PCEATransition]
    final: Set[Hashable]
    labels: Set[int]
    # Atom patterns whose tuple can be the *last* one read by an accepting run
    # of the fragment (needed to correlate the next sequence step).
    closing_atoms: List[AtomPattern]


def _attribute_filters(pattern: AtomPattern) -> Tup[AttributeFilter, ...]:
    filters: List[AttributeFilter] = []
    for variable, operator, constant in pattern.filters:
        positions = pattern.variable_positions(variable)
        if not positions:
            raise PatternCompilationError(
                f"filter on unknown variable {variable!r} in pattern {pattern}"
            )
        filters.append(AttributeFilter(pattern.relation, positions[0], operator, constant))
    return tuple(filters)


def _unary_for(pattern: AtomPattern) -> UnaryPredicate:
    base = AtomUnaryPredicate(pattern.as_atom())
    filters = _attribute_filters(pattern)
    if not filters:
        return base
    return _FilteredUnary(base, filters)


def _prefix_state(prefix: Tup[Hashable, ...], state: Hashable) -> Hashable:
    return prefix + (state,)


def _compile_atom(pattern: AtomPattern, label: int, prefix: Tup[Hashable, ...]) -> _Fragment:
    state = _prefix_state(prefix, ("atom", label))
    transition = PCEATransition(frozenset(), _unary_for(pattern), {}, {label}, state)
    return _Fragment({state}, [transition], {state}, {label}, [pattern])


def _compile_conjunction(
    pattern: Conjunction, labels: List[int], prefix: Tup[Hashable, ...]
) -> _Fragment:
    atom_patterns = list(pattern.atoms())
    if len(atom_patterns) != len(labels):
        raise AssertionError("label/atom count mismatch")
    if len(atom_patterns) == 1:
        return _compile_atom(atom_patterns[0], labels[0], prefix)
    query = ConjunctiveQuery(
        sorted({v for p in atom_patterns for v in p.as_atom().variables()}, key=lambda v: v.name),
        [p.as_atom() for p in atom_patterns],
        name="Pattern",
    )
    try:
        pcea = hcq_to_pcea(query)
    except Exception as exc:  # noqa: BLE001 - surface a domain-specific error
        raise PatternCompilationError(
            f"conjunction {pattern} is not a hierarchical pattern: {exc}"
        ) from exc

    filters_by_local = {i: _attribute_filters(p) for i, p in enumerate(atom_patterns)}
    label_of_local = {i: labels[i] for i in range(len(atom_patterns))}

    states = {_prefix_state(prefix, state) for state in pcea.states}
    transitions: List[PCEATransition] = []
    for transition in pcea.transitions:
        local_labels = sorted(transition.labels)  # local atom identifiers
        new_labels = {label_of_local[l] for l in local_labels}
        filters: List[AttributeFilter] = []
        for local in local_labels:
            filters.extend(filters_by_local[local])
        unary = transition.unary if not filters else _FilteredUnary(transition.unary, tuple(filters))
        binaries = {
            _prefix_state(prefix, source): predicate
            for source, predicate in transition.binaries.items()
        }
        transitions.append(
            PCEATransition(
                {_prefix_state(prefix, s) for s in transition.sources},
                unary,
                binaries,
                new_labels,
                _prefix_state(prefix, transition.target),
            )
        )
    final = {_prefix_state(prefix, state) for state in pcea.final}
    return _Fragment(states, transitions, final, set(labels), atom_patterns)


def _sequence_equality(
    previous_closers: Seq[AtomPattern], next_pattern: AtomPattern
) -> EqualityPredicate:
    """Equality predicate correlating the next atom with the previous component.

    The correlated variables are those shared by the next atom and *every*
    atom of the previous component — only those are guaranteed to be carried by
    whichever tuple happens to close the previous component.
    """
    next_vars = set(next_pattern.variables)
    shared = set.intersection(*(set(p.variables) for p in previous_closers)) & next_vars
    if not shared:
        return TrueEquality()
    ordered = sorted(shared)
    left_spec: Dict[str, Tup[int, ...]] = {}
    for closer in previous_closers:
        if closer.relation in left_spec:
            continue
        left_spec[closer.relation] = tuple(closer.variable_positions(v)[0] for v in ordered)
    right_spec = {next_pattern.relation: tuple(next_pattern.variable_positions(v)[0] for v in ordered)}
    return ProjectionEquality(left_spec, right_spec)


def _compile(pattern: Pattern, labels: List[int], prefix: Tup[Hashable, ...]) -> _Fragment:
    if isinstance(pattern, AtomPattern):
        return _compile_atom(pattern, labels[0], prefix)
    if isinstance(pattern, Conjunction):
        return _compile_conjunction(pattern, labels, prefix)
    if isinstance(pattern, Disjunction):
        states: Set[Hashable] = set()
        transitions: List[PCEATransition] = []
        final: Set[Hashable] = set()
        closing: List[AtomPattern] = []
        offset = 0
        for index, part in enumerate(pattern.parts):
            count = sum(1 for _ in part.atoms())
            fragment = _compile(part, labels[offset : offset + count], prefix + (("or", index),))
            offset += count
            states |= fragment.states
            transitions.extend(fragment.transitions)
            final |= fragment.final
            closing.extend(fragment.closing_atoms)
        return _Fragment(states, transitions, final, set(labels), closing)
    if isinstance(pattern, Sequence):
        parts = pattern.parts
        counts = [sum(1 for _ in part.atoms()) for part in parts]
        offset = counts[0]
        fragment = _compile(parts[0], labels[:offset], prefix + (("seq", 0),))
        states = set(fragment.states)
        transitions = list(fragment.transitions)
        current_final = set(fragment.final)
        current_closers = list(fragment.closing_atoms)
        for index, part in enumerate(parts[1:], start=1):
            if not isinstance(part, AtomPattern):
                raise PatternCompilationError(
                    "sequence components after the first must be single atoms "
                    f"(got {part}); wrap unordered groups in the first component"
                )
            label = labels[offset]
            offset += counts[index]
            new_state = _prefix_state(prefix, ("seq", index, label))
            states.add(new_state)
            unary = _unary_for(part)
            equality = _sequence_equality(current_closers, part)
            for final_state in current_final:
                transitions.append(
                    PCEATransition({final_state}, unary, {final_state: equality}, {label}, new_state)
                )
            current_final = {new_state}
            current_closers = [part]
        return _Fragment(states, transitions, current_final, set(labels), current_closers)
    raise PatternCompilationError(f"unsupported pattern type {type(pattern).__name__}")


def compile_pattern(pattern: Pattern) -> PCEA:
    """Compile a CER pattern into a PCEA with equality predicates.

    The automaton's labels are the integer positions of the atom patterns in a
    left-to-right traversal of ``pattern``; every binary predicate is an
    equality predicate, so the result can be fed directly to
    :class:`repro.core.evaluation.StreamingEvaluator`.

    Raises
    ------
    PatternCompilationError
        If a conjunction is not hierarchical or a sequence uses an unsupported
        component shape.
    """
    atom_patterns = list(pattern.atoms())
    if not atom_patterns:
        raise PatternCompilationError("pattern has no atoms")
    labels = list(range(len(atom_patterns)))
    fragment = _compile(pattern, labels, ())
    pcea = PCEA(fragment.states, fragment.transitions, fragment.final, labels=labels)
    pcea.dispatch_index()  # build the transition dispatch index at compile time
    return pcea
