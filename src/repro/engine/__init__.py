"""CER pattern DSL compiled to PCEA.

The paper leaves "a query language that characterizes the expressive power of
PCEA" as future work (Section 6).  This subpackage provides a pragmatic subset:
atom patterns with filters, unordered conjunction (via the Theorem 4.1
translation), sequencing and disjunction, all compiled to PCEA so the
streaming evaluator of Section 5 can run them.
"""

from repro.engine.dsl import (
    AtomPattern,
    Conjunction,
    Disjunction,
    Pattern,
    Sequence,
    atom,
    conjunction,
    disjunction,
    sequence,
)
from repro.engine.compiler import compile_pattern

__all__ = [
    "AtomPattern",
    "Conjunction",
    "Disjunction",
    "Pattern",
    "Sequence",
    "atom",
    "conjunction",
    "disjunction",
    "sequence",
    "compile_pattern",
]
