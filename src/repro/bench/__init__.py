"""Measurement harness shared by the benchmark suite (``benchmarks/``)."""

from repro.bench.harness import (
    MeasurementSeries,
    measure_engine_run,
    measure_update_times,
    measure_enumeration_delays,
    geometric_sweep,
    format_table,
)

__all__ = [
    "MeasurementSeries",
    "measure_engine_run",
    "measure_update_times",
    "measure_enumeration_delays",
    "geometric_sweep",
    "format_table",
]
