"""Measurement utilities behind the benchmark suite.

The paper's claims are asymptotic (update time, enumeration delay).  Because a
pure-Python reproduction cannot meaningfully compare absolute constants with a
RAM-model statement, every experiment reports *both*:

* wall-clock timings (per-tuple update time, per-output delay), and
* machine-independent operation counts (data-structure nodes created, hash
  operations, unions) taken from the evaluator's instrumentation.

The helpers here run an engine over a stream while recording those quantities,
and format small result tables so the benchmarks print the series that
EXPERIMENTS.md records.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Sequence, Tuple as Tup

from repro.cq.schema import Tuple
from repro.valuation import Valuation


@dataclass
class MeasurementSeries:
    """A labelled series of (parameter, value) measurements."""

    name: str
    parameters: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def add(self, parameter: float, value: float) -> None:
        self.parameters.append(parameter)
        self.values.append(value)

    def ratios(self) -> List[float]:
        """Consecutive value ratios — a quick eyeball test for growth rate."""
        return [
            later / earlier if earlier else float("inf")
            for earlier, later in zip(self.values, self.values[1:])
        ]

    def as_rows(self) -> List[Tup[float, float]]:
        return list(zip(self.parameters, self.values))


def measure_engine_run(engine, stream: Iterable[Tuple]) -> Dict[str, float]:
    """Run ``engine`` over ``stream`` measuring totals.

    Works with every engine exposing ``process(tuple) -> iterable`` (the
    streaming evaluator and all baselines).
    """
    tuples = list(stream)
    outputs = 0
    start = time.perf_counter()
    for tup in tuples:
        for _ in engine.process(tup):
            outputs += 1
    elapsed = time.perf_counter() - start
    return {
        "tuples": float(len(tuples)),
        "outputs": float(outputs),
        "total_seconds": elapsed,
        "seconds_per_tuple": elapsed / len(tuples) if tuples else 0.0,
    }


def measure_update_times(
    engine, stream: Iterable[Tuple], warmup: int = 0
) -> List[float]:
    """Per-tuple *update-phase* times (enumeration excluded when supported).

    For the streaming evaluator the update phase is measured in isolation via
    ``engine.update``; for baselines (which interleave matching and output
    production) the whole ``process`` call is measured instead.
    """
    times: List[float] = []
    update = getattr(engine, "update", None)
    for index, tup in enumerate(stream):
        start = time.perf_counter()
        if update is not None:
            final_nodes = update(tup)
            elapsed = time.perf_counter() - start
            # Drain the outputs outside the timed section so the measurement is
            # genuinely about the update phase.
            for _ in engine.enumerate_outputs(final_nodes):
                pass
        else:
            for _ in engine.process(tup):
                pass
            elapsed = time.perf_counter() - start
        if index >= warmup:
            times.append(elapsed)
    return times


def measure_enumeration_delays(engine, stream: Iterable[Tuple]) -> List[Tup[int, float]]:
    """Per-position ``(number of outputs, enumeration time)`` pairs.

    Only meaningful for the streaming evaluator, whose enumeration phase is
    separate from the update phase.
    """
    measurements: List[Tup[int, float]] = []
    for tup in stream:
        final_nodes = engine.update(tup)
        start = time.perf_counter()
        count = 0
        size = 0
        for valuation in engine.enumerate_outputs(final_nodes):
            count += 1
            size += valuation.size()
        elapsed = time.perf_counter() - start
        if count:
            measurements.append((size, elapsed))
    return measurements


def summarize(times: Sequence[float]) -> Dict[str, float]:
    """Mean / median / p99 / max of a timing series (seconds)."""
    if not times:
        return {"mean": 0.0, "median": 0.0, "p99": 0.0, "max": 0.0}
    ordered = sorted(times)
    p99_index = min(len(ordered) - 1, int(0.99 * len(ordered)))
    return {
        "mean": statistics.fmean(ordered),
        "median": ordered[len(ordered) // 2],
        "p99": ordered[p99_index],
        "max": ordered[-1],
    }


def geometric_sweep(start: int, stop: int, factor: int = 2) -> List[int]:
    """``[start, start*factor, ...]`` up to and including ``stop``."""
    values = []
    current = start
    while current <= stop:
        values.append(current)
        current *= factor
    return values


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Format a small aligned text table (used by benchmark printouts)."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(str(h).ljust(width) for h, width in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)
