"""Measurement utilities behind the benchmark suite.

The paper's claims are asymptotic (update time, enumeration delay).  Because a
pure-Python reproduction cannot meaningfully compare absolute constants with a
RAM-model statement, every experiment reports *both*:

* wall-clock timings (per-tuple update time, per-output delay), and
* machine-independent operation counts (data-structure nodes created, hash
  operations, unions) taken from the evaluator's instrumentation.

The helpers here run an engine over a stream while recording those quantities,
and format small result tables so the benchmarks print the series that
EXPERIMENTS.md records.
"""

from __future__ import annotations

import dataclasses
import gc
import json
import statistics
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Sequence, Tuple as Tup

from repro.cq.schema import Tuple
from repro.valuation import Valuation


@dataclass
class MeasurementSeries:
    """A labelled series of (parameter, value) measurements."""

    name: str
    parameters: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def add(self, parameter: float, value: float) -> None:
        self.parameters.append(parameter)
        self.values.append(value)

    def ratios(self) -> List[float]:
        """Consecutive value ratios — a quick eyeball test for growth rate."""
        return [
            later / earlier if earlier else float("inf")
            for earlier, later in zip(self.values, self.values[1:])
        ]

    def as_rows(self) -> List[Tup[float, float]]:
        return list(zip(self.parameters, self.values))


@contextmanager
def gc_controlled(collect_before: bool = True, disable: bool = True) -> Iterator[bool]:
    """Control the cyclic garbage collector around a timed section.

    Arena-vs-object comparisons are exactly the kind of measurement collector
    noise distorts: the object structure creates millions of GC-tracked nodes
    (so collections fire *during* its timed sections), the arena creates
    almost none.  ``gc.collect()`` before the section starts both variants
    from an empty collector, and ``disable=True`` keeps generational
    collections from firing mid-measurement (reference counting still frees
    acyclic garbage).  Yields the ``gc_enabled`` flag that benchmark payloads
    record, and restores the collector's previous state on exit.
    """
    was_enabled = gc.isenabled()
    if collect_before:
        gc.collect()
    if disable:
        gc.disable()
    try:
        yield gc.isenabled()
    finally:
        if was_enabled:
            gc.enable()
        else:
            gc.disable()


def measure_engine_run(engine, stream: Iterable[Tuple]) -> Dict[str, float]:
    """Run ``engine`` over ``stream`` measuring totals.

    Works with every engine exposing ``process(tuple) -> iterable`` (the
    streaming evaluator and all baselines).
    """
    tuples = list(stream)
    outputs = 0
    start = time.perf_counter()
    for tup in tuples:
        for _ in engine.process(tup):
            outputs += 1
    elapsed = time.perf_counter() - start
    return {
        "tuples": float(len(tuples)),
        "outputs": float(outputs),
        "total_seconds": elapsed,
        "seconds_per_tuple": elapsed / len(tuples) if tuples else 0.0,
    }


def measure_update_times(
    engine, stream: Iterable[Tuple], warmup: int = 0, gc_control: bool = False
) -> List[float]:
    """Per-tuple *update-phase* times (enumeration excluded when supported).

    For the streaming evaluator the update phase is measured in isolation via
    ``engine.update``; for baselines (which interleave matching and output
    production) the whole ``process`` call is measured instead.  With
    ``gc_control=True`` the whole measurement runs under
    :func:`gc_controlled` (collect first, generational collector off), so
    per-tuple times are not punctuated by collections triggered by earlier
    allocations.
    """
    if gc_control:
        with gc_controlled():
            return measure_update_times(engine, stream, warmup=warmup, gc_control=False)
    times: List[float] = []
    update = getattr(engine, "update", None)
    for index, tup in enumerate(stream):
        start = time.perf_counter()
        if update is not None:
            final_nodes = update(tup)
            elapsed = time.perf_counter() - start
            # Drain the outputs outside the timed section so the measurement is
            # genuinely about the update phase.
            for _ in engine.enumerate_outputs(final_nodes):
                pass
        else:
            for _ in engine.process(tup):
                pass
            elapsed = time.perf_counter() - start
        if index >= warmup:
            times.append(elapsed)
    return times


def measure_enumeration_delays(engine, stream: Iterable[Tuple]) -> List[Tup[int, float]]:
    """Per-position ``(number of outputs, enumeration time)`` pairs.

    Only meaningful for the streaming evaluator, whose enumeration phase is
    separate from the update phase.
    """
    measurements: List[Tup[int, float]] = []
    for tup in stream:
        final_nodes = engine.update(tup)
        start = time.perf_counter()
        count = 0
        size = 0
        for valuation in engine.enumerate_outputs(final_nodes):
            count += 1
            size += valuation.size()
        elapsed = time.perf_counter() - start
        if count:
            measurements.append((size, elapsed))
    return measurements


def measure_memory_profile(
    engine, stream: Iterable[Tuple], sample_every: int = 100
) -> MeasurementSeries:
    """Hash-table size sampled along the stream (memory-boundedness evidence).

    Processes the whole stream (outputs drained, not stored) and records
    ``engine.hash_table_size()`` every ``sample_every`` tuples; the eviction
    experiments plot these series for the evicting and non-evicting engines.
    """
    series = MeasurementSeries("hash_table_size")
    for index, tup in enumerate(stream):
        for _ in engine.process(tup):
            pass
        if index % sample_every == 0:
            series.add(index, float(engine.hash_table_size()))
    return series


def collect_engine_counters(engine) -> Dict[str, float]:
    """All machine-independent counters an engine exposes, as one flat dict.

    Runtime-backed engines are read through their unified ``observe()``
    snapshot (statistics fields, hash-table size, eviction counter,
    data-structure allocation counters, memory and kernel info — one call,
    one shape); baseline engines without that surface fall back to per-
    attribute collection.  Key names are identical either way, so benchmark
    JSON reports stay uniform across engine variants.
    """
    counters: Dict[str, float] = {}
    observe = getattr(engine, "observe", None)
    if callable(observe):
        snapshot = observe()
        for name, value in snapshot["stats"].items():
            counters[name] = float(value)
        counters["hash_table_size"] = float(snapshot["hash_entries"])
        counters["evicted"] = float(snapshot["evicted"])
        ds = snapshot.get("ds")
        if ds is not None:
            counters["ds_nodes_created"] = float(ds["nodes_created"])
            counters["ds_union_calls"] = float(ds["union_calls"])
            counters["ds_union_copies"] = float(ds["union_copies"])
        for key, value in snapshot["memory"].items():
            counters[f"arena_{key}" if not key.startswith("arena") else key] = float(value)
        kernel = snapshot["kernel"]
        counters["kernel_native_available"] = 1.0 if kernel.get("native_available") else 0.0
        counters["kernel_native_active"] = 1.0 if kernel.get("active") == "native" else 0.0
        shard = snapshot.get("shard")
        if shard is not None:
            # The sharded coordinator's own counters, flattened under a
            # ``shard_`` prefix (per-shard breakdowns stay in observe()).
            for key, value in shard.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    counters[f"shard_{key}"] = float(value)
        return counters
    stats = getattr(engine, "stats", None)
    if stats is not None and dataclasses.is_dataclass(stats):
        for field_info in dataclasses.fields(stats):
            counters[field_info.name] = float(getattr(stats, field_info.name))
    size = getattr(engine, "hash_table_size", None)
    if callable(size):
        counters["hash_table_size"] = float(size())
    evicted = getattr(engine, "evicted", None)
    if evicted is not None:
        counters["evicted"] = float(evicted)
    ds = getattr(engine, "ds", None)
    if ds is not None:
        counters["ds_nodes_created"] = float(getattr(ds, "nodes_created", 0))
        counters["ds_union_calls"] = float(getattr(ds, "union_calls", 0))
        counters["ds_union_copies"] = float(getattr(ds, "union_copies", 0))
    memory_info = getattr(engine, "memory_info", None)
    if callable(memory_info):
        for key, value in memory_info().items():
            counters[f"arena_{key}" if not key.startswith("arena") else key] = float(value)
    kernel_info = getattr(engine, "kernel_info", None)
    if callable(kernel_info):
        info = kernel_info()
        counters["kernel_native_available"] = 1.0 if info.get("native_available") else 0.0
        counters["kernel_native_active"] = 1.0 if info.get("active") == "native" else 0.0
    return counters


def peak_rss_bytes() -> int:
    """Peak resident-set size of this process, in bytes (0 where unsupported).

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalised here so the
    ``peak_rss_bytes`` payload field means one thing.  Note the metric is a
    high-water mark for the *whole process* — benchmark payloads record it as
    coarse corroboration next to the structure-level byte counts
    (``ArenaDataStructure.resident_bytes``), not as the primary comparison.
    """
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss if sys.platform == "darwin" else rss * 1024


def validate_benchmark_payload(payload: Dict) -> None:
    """Validate the shared schema every checked-in ``BENCH_*.json`` follows.

    The contract keeping benchmark files comparable across PRs: the payload is
    a JSON-serialisable mapping with string keys, a non-empty string
    ``benchmark`` name, and a ``summary`` mapping holding the headline numbers
    a reviewer (or a regression check) reads first.  Raises ``ValueError``
    with a precise message on violation.
    """
    if not isinstance(payload, dict):
        raise ValueError(
            f"benchmark payload must be a mapping, got {type(payload).__name__}"
        )
    for key in payload:
        if not isinstance(key, str):
            raise ValueError(f"benchmark payload keys must be strings, got {key!r}")
    name = payload.get("benchmark")
    if not isinstance(name, str) or not name:
        raise ValueError(
            "benchmark payload must carry a non-empty string 'benchmark' name"
        )
    summary = payload.get("summary")
    if not isinstance(summary, dict):
        raise ValueError(
            "benchmark payload must carry a 'summary' mapping with the headline numbers"
        )
    if "gc_enabled" in payload and not isinstance(payload["gc_enabled"], bool):
        raise ValueError(
            "benchmark payload 'gc_enabled' must be a bool (whether the cyclic "
            "collector ran during timed sections)"
        )
    if "peak_rss_bytes" in payload:
        peak = payload["peak_rss_bytes"]
        if not isinstance(peak, int) or isinstance(peak, bool) or peak < 0:
            raise ValueError(
                "benchmark payload 'peak_rss_bytes' must be a non-negative int "
                "(the process peak RSS, see peak_rss_bytes())"
            )
    if "workers" in payload:
        workers = payload["workers"]
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise ValueError(
                "benchmark payload 'workers' must be a positive int "
                "(the shard/worker count the run used)"
            )
    if "adaptive" in payload:
        adaptive = payload["adaptive"]
        if not isinstance(adaptive, dict):
            raise ValueError(
                "benchmark payload 'adaptive' must be a mapping "
                "(the adaptive-dispatch counters the run observed)"
            )
    if "speedup_vs_static" in payload:
        speedup = payload["speedup_vs_static"]
        if isinstance(speedup, bool) or not isinstance(speedup, (int, float)) or speedup <= 0:
            raise ValueError(
                "benchmark payload 'speedup_vs_static' must be a positive "
                "number (static wall-clock / adaptive wall-clock)"
            )
    if "scaling" in payload:
        scaling = payload["scaling"]
        if not isinstance(scaling, list) or not scaling:
            raise ValueError(
                "benchmark payload 'scaling' must be a non-empty list of "
                "per-worker-count result mappings"
            )
        for entry in scaling:
            if not isinstance(entry, dict):
                raise ValueError(
                    f"benchmark payload 'scaling' entries must be mappings, "
                    f"got {type(entry).__name__}"
                )
            workers = entry.get("workers")
            if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
                raise ValueError(
                    "every 'scaling' entry must carry a positive int 'workers' key"
                )
    try:
        json.dumps(payload, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"benchmark payload is not JSON-serialisable: {exc}") from exc


def write_benchmark_json(path: str, payload: Dict) -> None:
    """Validate and write one benchmark's results as pretty, stable-order JSON."""
    validate_benchmark_payload(payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def summarize(times: Sequence[float]) -> Dict[str, float]:
    """Mean / median / p99 / max of a timing series (seconds)."""
    if not times:
        return {"mean": 0.0, "median": 0.0, "p99": 0.0, "max": 0.0}
    ordered = sorted(times)
    p99_index = min(len(ordered) - 1, int(0.99 * len(ordered)))
    return {
        "mean": statistics.fmean(ordered),
        "median": ordered[len(ordered) // 2],
        "p99": ordered[p99_index],
        "max": ordered[-1],
    }


def geometric_sweep(start: int, stop: int, factor: int = 2) -> List[int]:
    """``[start, start*factor, ...]`` up to and including ``stop``."""
    values = []
    current = start
    while current <= stop:
        values.append(current)
        current *= factor
    return values


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Format a small aligned text table (used by benchmark printouts)."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(str(h).ljust(width) for h, width in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)
