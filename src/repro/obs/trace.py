"""Ring-buffered structured spans with JSON-lines and Chrome trace export.

:class:`TraceRecorder` captures *spans* — ``(kind, ts, dur, args)`` records
for the runtime's units of work: sampled per-tuple updates (``tuple``),
eviction sweeps (``sweep``), batched ingestion (``batch``), enumeration of a
sampled tuple's outputs (``enumeration``), union work on a sampled tuple
(``union``, an instant event carrying a count), merged-index patches
(``index_patch``) and checkpoint/restore (``checkpoint`` / ``restore``).

The recorder is a fixed-capacity ring: recording never allocates beyond the
ring (spans are plain tuples, the slot list is preallocated), never grows,
and overwrites the oldest spans when full — ``dropped`` reports how many
were overwritten.  Per-kind counts (:meth:`counts`) are maintained for
*every* recorded span, so span-count invariants (e.g. "a checkpoint→restore
run emits exactly the spans of an uninterrupted run") hold regardless of
ring wrap.

Timestamps are ``time.perf_counter()`` values; exports rebase them onto the
recorder's construction instant so files start near zero.  Two export
formats:

* :meth:`export_jsonl` — one JSON object per line (``kind`` / ``ts`` /
  ``dur`` seconds / flattened args), grep- and pandas-friendly;
* :meth:`export_chrome` — the Chrome ``trace_event`` JSON format
  (``{"traceEvents": [...]}``, complete ``X`` duration events and ``i``
  instant events, microsecond timestamps), loadable directly in Perfetto or
  ``chrome://tracing``.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import _count_allocation

#: Default ring capacity (spans).  At the default 1-in-64 tuple sampling this
#: covers ~4M stream positions of tuple spans before the ring wraps.
DEFAULT_CAPACITY = 65536

#: Default per-tuple sampling period: every Nth stream position is timed.
#: The period clock costs two ``perf_counter`` calls per sample (see
#: ``Observer._wrap_entry``), so 1-in-64 keeps the attached overhead well
#: under a percent on the kernel-backends workloads while still yielding
#: dense traces; ``--trace-sample``/``sample_every`` tunes it.
DEFAULT_SAMPLE_EVERY = 64


class TraceRecorder:
    """A fixed-capacity span ring (see the module docstring).

    Parameters
    ----------
    capacity:
        Ring size in spans; recording past it overwrites the oldest.
    sample_every:
        The 1-in-N per-tuple sampling period the attaching observer applies
        (the recorder itself records whatever it is handed; the period lives
        here so trace configuration is one object).
    """

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, sample_every: int = DEFAULT_SAMPLE_EVERY
    ) -> None:
        if capacity < 1:
            raise ValueError("trace ring capacity must be at least 1 span")
        if sample_every < 1:
            raise ValueError("sample_every must be at least 1 (1 = every tuple)")
        _count_allocation()
        self.capacity = capacity
        self.sample_every = sample_every
        self.epoch = time.perf_counter()
        self._ring: List[Optional[Tuple]] = [None] * capacity
        self._total = 0
        self._kind_counts: Dict[str, int] = {}

    # -------------------------------------------------------------- recording
    def record(self, kind: str, ts: float, dur: float, args: Optional[Dict] = None) -> None:
        """Record one span (``ts`` a ``perf_counter`` value, ``dur`` seconds)."""
        total = self._total
        self._ring[total % self.capacity] = (kind, ts, dur, args)
        self._total = total + 1
        counts = self._kind_counts
        counts[kind] = counts.get(kind, 0) + 1

    # ---------------------------------------------------------- introspection
    @property
    def total(self) -> int:
        """Spans ever recorded (including those overwritten by ring wrap)."""
        return self._total

    @property
    def dropped(self) -> int:
        """Spans overwritten by ring wrap (oldest-first)."""
        return max(0, self._total - self.capacity)

    def counts(self) -> Dict[str, int]:
        """Per-kind span counts over *all* recorded spans (wrap-proof)."""
        return dict(self._kind_counts)

    def spans(self) -> List[Tuple[str, float, float, Optional[Dict]]]:
        """The retained spans, oldest first."""
        total = self._total
        capacity = self.capacity
        if total <= capacity:
            return [span for span in self._ring[:total]]
        start = total % capacity
        return self._ring[start:] + self._ring[:start]

    def __len__(self) -> int:
        return min(self._total, self.capacity)

    # --------------------------------------------------------------- export
    def export_jsonl(self, path: str) -> int:
        """Write the retained spans as JSON-lines; returns the span count."""
        epoch = self.epoch
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as handle:
            for kind, ts, dur, args in spans:
                record = {"kind": kind, "ts": ts - epoch, "dur": dur}
                if args:
                    record.update(args)
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
        return len(spans)

    def chrome_trace(self) -> Dict[str, object]:
        """The spans as a Chrome ``trace_event`` object (Perfetto-loadable)."""
        epoch = self.epoch
        events: List[Dict[str, object]] = []
        for kind, ts, dur, args in self.spans():
            event: Dict[str, object] = {
                "name": kind,
                "cat": "repro",
                "ts": (ts - epoch) * 1e6,
                "pid": 1,
                "tid": 1,
            }
            if dur > 0.0:
                event["ph"] = "X"
                event["dur"] = dur * 1e6
            else:
                event["ph"] = "i"
                event["s"] = "t"
            if args:
                event["args"] = args
            events.append(event)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "recorder": "repro.obs.TraceRecorder",
                "dropped_spans": self.dropped,
                "sample_every": self.sample_every,
            },
        }

    def export_chrome(self, path: str) -> int:
        """Write the Chrome ``trace_event`` JSON; returns the span count."""
        payload = self.chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")
        return len(payload["traceEvents"])

    def __repr__(self) -> str:
        return (
            f"TraceRecorder(spans={len(self)}, total={self._total}, "
            f"dropped={self.dropped}, 1/{self.sample_every} sampling)"
        )
