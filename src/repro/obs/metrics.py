"""Counters, gauges and log-bucket histograms for the streaming runtime.

The repo's engines already count everything *cumulatively*
(:class:`~repro.runtime.EngineStatistics`, ``memory_info``); what a
long-lived service additionally needs is **distributions** (per-batch and
per-tuple latency percentiles) and an **export surface** a scraper can read.
This module supplies both with the smallest possible hot-path cost:

* :class:`Counter` / :class:`Gauge` — one attribute add / store per update.
* :class:`Histogram` — fixed log-spaced buckets (4 sub-buckets per octave,
  so bucket boundaries are ~19% apart) addressed with one
  :func:`math.frexp` call per recorded value.  p50/p99/p999 are derivable
  from the bucket counts alone (:meth:`Histogram.quantile`); no samples are
  ever stored, so a histogram's memory is a fixed ~``NUM_BUCKETS`` ints no
  matter how long the engine runs.
* :class:`MetricsRegistry` — the named instrument table, with ``collect()``
  (a plain-dict snapshot for JSON) and ``to_prometheus()`` (text exposition
  in the Prometheus format: ``# TYPE`` headers, cumulative ``le`` histogram
  buckets, label rendering).

Instruments support optional labels (``registry.counter("repro_sweeps_total",
labels={"engine": "multi"})``): each distinct label set is its own time
series, which is how the per-``(relation, guard)`` dispatch fan-out gauges
are keyed.

Allocation accounting
---------------------
Every instrument construction increments a module counter readable through
:func:`instrument_allocations`.  The observability layer's no-op contract —
an engine without an attached observer allocates **zero** metrics objects —
is tested against exactly this counter (``tests/test_obs.py``).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: Lowest bucket exponent: values below ``2**MIN_EXP`` land in the first
#: bucket.  2**-34 s ≈ 58 ps — far below anything a Python engine can time.
MIN_EXP = -34

#: Highest bucket exponent: values at or above ``2**MAX_EXP`` (64 s) land in
#: the overflow bucket.
MAX_EXP = 6

#: Sub-buckets per octave (power of two).  4 gives ~19% boundary spacing.
SUBBUCKETS = 4

#: Total histogram buckets (one extra octave for the overflow range).
NUM_BUCKETS = (MAX_EXP - MIN_EXP + 1) * SUBBUCKETS

_allocations = 0


def instrument_allocations() -> int:
    """Total metrics/trace instruments ever constructed in this process.

    The no-op-path tests snapshot this before and after an uninstrumented
    run and assert the delta is zero.
    """
    return _allocations


def _count_allocation() -> None:
    global _allocations
    _allocations += 1


def _bucket_index(value: float) -> int:
    """The fixed log-bucket index of ``value`` (clamped, monotonic)."""
    if value <= 0.0:
        return 0
    mantissa, exponent = math.frexp(value)  # value = mantissa * 2**exponent, 0.5 <= m < 1
    if exponent <= MIN_EXP:
        return 0
    if exponent > MAX_EXP:
        return NUM_BUCKETS - 1
    # mantissa in [0.5, 1) -> sub-bucket 0..SUBBUCKETS-1
    sub = int((mantissa - 0.5) * 2 * SUBBUCKETS)
    if sub >= SUBBUCKETS:  # mantissa == 1.0 - epsilon edge
        sub = SUBBUCKETS - 1
    return (exponent - MIN_EXP) * SUBBUCKETS + sub


def bucket_upper_bound(index: int) -> float:
    """The inclusive upper boundary of bucket ``index`` (for exposition)."""
    if index >= NUM_BUCKETS - 1:
        return math.inf
    octave, sub = divmod(index, SUBBUCKETS)
    exponent = octave + MIN_EXP
    return math.ldexp(0.5 + (sub + 1) / (2 * SUBBUCKETS), exponent)


class Counter:
    """A monotonically increasing count (events, evictions, spans dropped)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Optional[Mapping[str, str]] = None) -> None:
        _count_allocation()
        self.name = name
        self.labels = dict(labels) if labels else None
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (live nodes, hash entries, ring occupancy)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Optional[Mapping[str, str]] = None) -> None:
        _count_allocation()
        self.name = name
        self.labels = dict(labels) if labels else None
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed log-bucket latency histogram; percentiles without samples.

    ``record`` costs one ``frexp`` plus three attribute updates.  Quantile
    estimates return the *upper bound* of the bucket the target rank falls
    in, so they are conservative (never under-report) with ~19% resolution.
    """

    __slots__ = ("name", "labels", "buckets", "count", "sum")

    def __init__(self, name: str, labels: Optional[Mapping[str, str]] = None) -> None:
        _count_allocation()
        self.name = name
        self.labels = dict(labels) if labels else None
        self.buckets = [0] * NUM_BUCKETS
        self.count = 0
        self.sum = 0.0

    def record(self, value: float) -> None:
        self.buckets[_bucket_index(value)] += 1
        self.count += 1
        self.sum += value

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` (0..1), as a bucket upper bound."""
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket in enumerate(self.buckets):
            cumulative += bucket
            if cumulative >= target and bucket:
                return bucket_upper_bound(index)
        return bucket_upper_bound(NUM_BUCKETS - 1)

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def nonzero_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, count)`` for the populated buckets, ascending."""
        return [
            (bucket_upper_bound(index), bucket)
            for index, bucket in enumerate(self.buckets)
            if bucket
        ]

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}: n={self.count}, mean={self.mean():.3g}, "
            f"p99={self.quantile(0.99):.3g})"
        )


def _series_key(name: str, labels: Optional[Mapping[str, str]]) -> Tuple:
    return (name, tuple(sorted(labels.items())) if labels else ())


def _render_labels(labels: Optional[Mapping[str, str]]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape_label(value: object) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


class MetricsRegistry:
    """The named instrument table: get-or-create, snapshot, exposition.

    One registry per :class:`~repro.obs.Observer`.  ``counter`` / ``gauge``
    / ``histogram`` intern by ``(name, labels)`` so hook sites can pre-bind
    their instruments once and pay zero lookups per update.
    """

    def __init__(self) -> None:
        _count_allocation()
        self._instruments: Dict[Tuple, object] = {}

    def _get(self, cls, name: str, labels: Optional[Mapping[str, str]]):
        key = _series_key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = cls(name, labels)
        elif type(instrument) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {type(instrument).__name__}"
            )
        return instrument

    def counter(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Histogram:
        return self._get(Histogram, name, labels)

    def instruments(self) -> Iterable[object]:
        return self._instruments.values()

    def __len__(self) -> int:
        return len(self._instruments)

    # ---------------------------------------------------------------- export
    def collect(self) -> Dict[str, object]:
        """A plain-dict snapshot of every series (JSON-serialisable).

        Counters/gauges map ``name{labels}`` to their value; histograms map
        to ``{count, sum, p50, p99, buckets: [[le, n], ...]}``.
        """
        snapshot: Dict[str, object] = {}
        for instrument in self._instruments.values():
            key = instrument.name + _render_labels(instrument.labels)
            if isinstance(instrument, Histogram):
                snapshot[key] = {
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "p50": instrument.quantile(0.50),
                    "p99": instrument.quantile(0.99),
                    "buckets": [
                        [upper if upper != math.inf else "+Inf", count]
                        for upper, count in instrument.nonzero_buckets()
                    ],
                }
            else:
                snapshot[key] = instrument.value
        return snapshot

    def to_prometheus(self) -> str:
        """Text exposition in the Prometheus format.

        ``# TYPE`` headers per metric name, label rendering, and cumulative
        ``le``-labelled histogram buckets ending in ``+Inf`` (only populated
        boundaries are emitted, plus the mandatory ``+Inf``).
        """
        lines: List[str] = []
        typed: set = set()
        for instrument in sorted(
            self._instruments.values(), key=lambda i: (i.name, _render_labels(i.labels))
        ):
            name = instrument.name
            if isinstance(instrument, Histogram):
                if name not in typed:
                    typed.add(name)
                    lines.append(f"# TYPE {name} histogram")
                base = dict(instrument.labels) if instrument.labels else {}
                cumulative = 0
                for upper, count in instrument.nonzero_buckets():
                    cumulative += count
                    le = "+Inf" if upper == math.inf else repr(upper)
                    lines.append(
                        f"{name}_bucket{_render_labels({**base, 'le': le})} {cumulative}"
                    )
                if math.inf not in [u for u, _ in instrument.nonzero_buckets()]:
                    lines.append(
                        f"{name}_bucket{_render_labels({**base, 'le': '+Inf'})} "
                        f"{instrument.count}"
                    )
                lines.append(f"{name}_sum{_render_labels(base or None)} {instrument.sum!r}")
                lines.append(f"{name}_count{_render_labels(base or None)} {instrument.count}")
            else:
                kind = "counter" if isinstance(instrument, Counter) else "gauge"
                if name not in typed:
                    typed.add(name)
                    lines.append(f"# TYPE {name} {kind}")
                value = instrument.value
                rendered = repr(value) if isinstance(value, float) else str(value)
                lines.append(f"{name}{_render_labels(instrument.labels)} {rendered}")
        return "\n".join(lines) + "\n" if lines else ""

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._instruments)} series)"
