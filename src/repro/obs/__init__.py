"""`repro.obs`: low-overhead observability for the streaming runtime.

Three pieces (see each module's docstring for the details):

* :mod:`repro.obs.metrics` — counters, gauges and fixed log-bucket latency
  histograms (p50/p99 without storing samples) behind a
  :class:`MetricsRegistry` with JSON snapshots and Prometheus text
  exposition;
* :mod:`repro.obs.trace` — the ring-buffered :class:`TraceRecorder` of
  structured spans (batch / sweep / tuple / union / enumeration /
  index-patch / checkpoint / restore), exportable as JSON-lines or the
  Chrome ``trace_event`` format (Perfetto-loadable);
* :mod:`repro.obs.observer` — the :class:`Observer` that threads both
  through an engine's hook points with 1-in-N per-tuple sampling.

Usage::

    from repro.obs import Observer, TraceRecorder

    observer = Observer(trace=TraceRecorder(sample_every=64))
    engine.attach_observer(observer)
    ...  # run the stream
    observer.export_metrics("metrics.prom")
    observer.export_trace("trace.json")      # open in Perfetto
    engine.detach_observer()

The overhead contract (measured by ``benchmarks/bench_observability.py``,
checked in as ``BENCH_observability.json``): an engine **without** an
attached observer runs the pre-observability hot path — within 1.02× on the
kernel-backends workloads — and allocates zero metrics objects; sampled
tracing stays within 1.05×.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    instrument_allocations,
)
from repro.obs.observer import Observer
from repro.obs.trace import DEFAULT_SAMPLE_EVERY, TraceRecorder

__all__ = [
    "Counter",
    "DEFAULT_SAMPLE_EVERY",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observer",
    "TraceRecorder",
    "instrument_allocations",
]
