"""The :class:`Observer`: one object that instruments a streaming engine.

An observer bundles a :class:`~repro.obs.metrics.MetricsRegistry` and an
optional :class:`~repro.obs.trace.TraceRecorder` and knows how to thread
them through an engine's hook points:

* ``observer.attach(engine)`` (or the engine's ``attach_observer``) sets the
  shared runtime's ``obs`` slot — which activates the sweep / batch / slab
  hooks that live inside :mod:`repro.runtime.core` — binds the arena
  slab-seal hook on every lane, *wraps* ``enumerate_outputs`` and
  ``snapshot``/``restore`` with timing shims (instance-attribute
  shadowing, so the class methods are untouched and ``detach`` restores
  the original behaviour exactly), and starts the per-tuple sampling
  *period clock*: the runtime itself times every ``sample_every``-th
  update between two consecutive ``advance`` calls (see ``_wrap_entry``
  for the design and the graveyard of method-interception schemes it
  replaced).

The **no-op path** is the design constraint: an engine without an attached
observer runs the same bytecode it ran before this module existed — the
only residue is ``obs is None`` checks at batch/sweep granularity, never in
the per-candidate loops — and allocates zero metrics objects
(:func:`~repro.obs.metrics.instrument_allocations` is the test hook).
With an observer attached, per-tuple work is still only paid on sampled
positions (``position % sample_every == 0``); unsampled tuples pay one
integer compare in ``StreamRuntime.advance`` and nothing else — the
engine's class, instance dict, and method bindings are never touched.

Metric names are listed in the README's observability section; they are
pre-bound as attributes here so hook sites never pay a registry lookup.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import DEFAULT_SAMPLE_EVERY, TraceRecorder

_perf = time.perf_counter


class Observer:
    """Metrics + optional tracing, attachable to any runtime-backed engine.

    Parameters
    ----------
    metrics:
        The registry to feed; a fresh one by default.
    trace:
        Optional :class:`~repro.obs.trace.TraceRecorder`; without it the
        observer maintains metrics only (spans are skipped, sampled timing
        still feeds the latency histograms).
    sample_every:
        Per-tuple sampling period (every Nth stream position is timed).
        Defaults to the trace recorder's period, or
        :data:`~repro.obs.trace.DEFAULT_SAMPLE_EVERY` without one.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        sample_every: Optional[int] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace = trace
        if sample_every is None:
            sample_every = trace.sample_every if trace is not None else DEFAULT_SAMPLE_EVERY
        if sample_every < 1:
            raise ValueError("sample_every must be at least 1 (1 = every tuple)")
        self.sample_every = sample_every
        self._engines: List[object] = []
        # id(engine) -> rearm closure from _wrap_entry (reseats the period
        # clock after a restore moves the stream position).
        self._entry_hooks: Dict[int, object] = {}
        m = self.metrics
        # Pre-bound instruments: hook sites pay zero registry lookups.
        self._tuples_sampled = m.counter("repro_tuples_sampled_total")
        self._update_seconds = m.histogram("repro_update_seconds")
        self._enum_seconds = m.histogram("repro_enumeration_seconds")
        self._outputs = m.counter("repro_outputs_enumerated_total")
        self._batches = m.counter("repro_batches_total")
        self._batch_tuples = m.counter("repro_batch_tuples_total")
        self._batch_seconds = m.histogram("repro_batch_seconds")
        self._sweep_seconds = m.histogram("repro_sweep_seconds")
        self._sweep_evicted_sampled = m.counter("repro_sweep_evicted_sampled_total")
        self._slab_seals = m.counter("repro_slab_seals_total")
        self._slab_fill = m.histogram("repro_slab_seal_fill")
        self._slabs_released = m.counter("repro_slabs_released_sampled_total")
        self._patch_seconds = m.histogram("repro_index_patch_seconds")
        self._patch_adds = m.counter("repro_index_patches_total", {"op": "add"})
        self._patch_removes = m.counter("repro_index_patches_total", {"op": "remove"})
        self._checkpoints = m.counter("repro_checkpoints_total")
        self._checkpoint_seconds = m.histogram("repro_checkpoint_seconds")
        self._restores = m.counter("repro_restores_total")
        self._restore_seconds = m.histogram("repro_restore_seconds")
        self._shard_batches = m.counter("repro_shard_batches_total")
        self._shard_batch_seconds = m.histogram("repro_shard_batch_seconds")
        self._shard_rebalances = m.counter("repro_shard_rebalances_total")
        self._shard_rebalance_seconds = m.histogram("repro_shard_rebalance_seconds")
        self._dispatch_reorders = m.counter("repro_dispatch_reorders_total")
        self._guard_promotions = m.counter("repro_guard_promotions_total")
        self._guard_demotions = m.counter("repro_guard_demotions_total")

    # ------------------------------------------------------------ attachment
    def attach(self, engine) -> None:
        """Instrument ``engine`` (see the module docstring for what attaches).

        One observer may watch several engines; one engine holds at most one
        observer (``ValueError`` otherwise — detach first).
        """
        if getattr(engine, "_observer", None) is not None:
            raise ValueError(
                f"{type(engine).__name__} already has an observer attached "
                "(call detach_observer() first)"
            )
        runtime = engine._runtime
        engine._observer = self
        runtime.obs = self
        runtime.obs_sample_every = self.sample_every
        self._engines.append(engine)
        self._wrap_enumeration(engine, runtime)
        self._wrap_checkpointing(engine)
        self._wrap_entry(engine, runtime)
        for lane in runtime.lanes():
            self.observe_lane(lane)

    def detach(self, engine) -> None:
        """Remove this observer from ``engine``, restoring the class methods."""
        if getattr(engine, "_observer", None) is not self:
            raise ValueError("this observer is not attached to that engine")
        runtime = engine._runtime
        self._entry_hooks.pop(id(engine), None)
        for name in ("enumerate_outputs", "snapshot", "restore"):
            engine.__dict__.pop(name, None)
        for lane in runtime.lanes():
            ds = lane.ds
            if ds is not None and hasattr(ds, "on_seal"):
                ds.on_seal = None
        runtime.obs = None
        runtime.obs_sample_every = 1
        runtime.obs_arm = None
        runtime.obs_next = -1
        runtime.obs_sweep_sampled = False
        engine._observer = None
        self._engines.remove(engine)

    def watch(self, engine) -> None:
        """Register ``engine`` for pull-model collection only.

        Unlike :meth:`attach`, no hot-path hooks are installed — ``collect``
        and the exporters just call ``engine.observe()`` into gauges.  This
        is how the sharded coordinator participates (its workers live in
        other processes, so there is nothing in *this* process to shim).
        """
        if engine in self._engines:
            raise ValueError("that engine is already being watched")
        self._engines.append(engine)

    def unwatch(self, engine) -> None:
        """Stop collecting a :meth:`watch`-registered engine."""
        self._engines.remove(engine)

    def observe_lane(self, lane) -> None:
        """Bind the arena slab-seal hook on ``lane`` (object-graph: no-op).

        Called for every lane at attach time and by the multi-query engine
        for lanes registered while the observer is attached.
        """
        ds = lane.ds
        if ds is not None and hasattr(ds, "on_seal"):
            ds.on_seal = self.on_slab_seal

    # ------------------------------------------------------- entry-point shims
    def _wrap_entry(self, engine, runtime) -> None:
        """Period sampling: the sampled per-tuple latency is measured from
        *inside the runtime*, between two consecutive ``advance`` calls.

        ``StreamRuntime.advance`` fires ``obs_arm()`` when the new position
        equals ``obs_next`` (one slot load and one integer compare per
        tuple; ``-1`` = never).  The observer uses that single hook as a
        two-phase period clock:

        * **begin** — at sampled position ``M`` (a multiple of
          ``sample_every``): stamp ``perf_counter``, snapshot the union
          counter, set ``obs_sweep_sampled`` (so update ``M``'s eviction
          sweep takes the timed path), and re-aim ``obs_next`` at ``M+1``;
        * **finish** — at ``M+1``: the elapsed interval is update ``M``'s
          full post-``advance`` body (sweep, transition firing, index
          maintenance) plus the driver's loop overhead.  Record it into the
          latency histogram and the ``tuple``/``union`` spans, clear the
          sweep flag, and re-aim at the next grid position.

        Everything lives in closures bound to ``StreamRuntime`` slots; the
        engine's class and instance are untouched.  That is deliberate, and
        the fourth design to survive measurement on CPython 3.11 — every
        scheme that intercepts the entry *method* de-specialises the
        engine's inline caches:

        * shadowing the bound method in the instance dict and ``del``-ing
          it afterwards converts the dict from the split-keys layout to a
          combined table, permanently de-specialising every ``self.x``
          load in the hot path (~3 % per tuple, forever);
        * ``engine.__class__ = ArmedSubclass`` (and back) materialises the
          managed instance dict on the first assignment — the same
          permanent de-specialisation (~3.5 % measured, even when
          assigning the *same* class);
        * a one-shot *class-attribute* swap (install a timing shim just
          before the sampled position, restore right after) leaves the
          unsampled path untouched but bumps the type's version tag twice
          per sample, and every specialised ``LOAD_ATTR``/``LOAD_METHOD``
          on instances of that type then re-specialises — tens of
          microseconds per sample, ~4-6 % at 1-in-64 on the kernel-backends
          workloads.

        The period clock costs two ``perf_counter`` calls per *sample* and
        nothing per tuple beyond ``advance``'s compare.  The trade-offs:
        the measured interval includes the driver's loop overhead (~0.1 µs)
        and the next update's prologue, and the ``tuple`` span carries the
        position but not the tuple's relation or fired-output count (the
        runtime never sees the tuple).  A sample whose period spans a pause
        in the stream reports the wall-clock gap; the final grid position
        of a stream has no successor and is simply not reported.
        """
        sample_every = self.sample_every
        trace = self.trace
        update_hist = self._update_seconds
        sampled = self._tuples_sampled
        ds = getattr(engine, "ds", None)
        if ds is not None and not hasattr(ds, "union_calls"):
            ds = None

        start = 0.0
        unions_before = 0
        sampled_pos = -1

        def begin():
            nonlocal start, unions_before, sampled_pos
            sampled_pos = runtime.position
            runtime.obs_sweep_sampled = True
            runtime.obs_arm = finish
            runtime.obs_next = sampled_pos + 1
            unions_before = ds.union_calls if ds is not None else 0
            start = _perf()

        def finish():
            nonlocal start, unions_before, sampled_pos
            elapsed = _perf() - start
            update_hist.record(elapsed)
            sampled.inc()
            if trace is not None:
                trace.record("tuple", start, elapsed, {"position": sampled_pos})
                if ds is not None:
                    unions = ds.union_calls - unions_before
                    if unions:
                        trace.record(
                            "union", start, 0.0, {"position": sampled_pos, "count": unions}
                        )
            position = runtime.position
            next_grid = sampled_pos + sample_every
            if next_grid <= position:
                # Dense sampling (sample_every == 1): this advance both
                # finishes the previous period and begins the next.
                sampled_pos = position
                runtime.obs_next = position + 1
                unions_before = ds.union_calls if ds is not None else 0
                start = _perf()
            else:
                runtime.obs_sweep_sampled = False
                runtime.obs_arm = begin
                runtime.obs_next = next_grid

        def rearm():
            # Reseat the clock for the *current* runtime position — called
            # at attach and after a restore moves the position (abandoning
            # any half-open period).  Sampled positions are the multiples
            # of ``sample_every`` strictly ahead of the current position.
            runtime.obs_sweep_sampled = False
            runtime.obs_arm = begin
            runtime.obs_next = (runtime.position // sample_every + 1) * sample_every

        self._entry_hooks[id(engine)] = rearm
        rearm()

    def _wrap_enumeration(self, engine, runtime) -> None:
        inner = getattr(type(engine), "enumerate_outputs", None)
        if inner is None:
            return  # the multi-query engine enumerates inside its entry point
        sample_every = self.sample_every
        trace = self.trace
        enum_hist = self._enum_seconds
        outputs_counter = self._outputs

        def instrumented(final_nodes):
            if runtime.position % sample_every or not final_nodes:
                return inner(engine, final_nodes)
            start = _perf()
            outputs = list(inner(engine, final_nodes))
            elapsed = _perf() - start
            enum_hist.record(elapsed)
            outputs_counter.inc(len(outputs))
            if trace is not None:
                trace.record(
                    "enumeration",
                    start,
                    elapsed,
                    {"position": runtime.position, "outputs": len(outputs)},
                )
            return iter(outputs)

        engine.enumerate_outputs = instrumented

    def _wrap_checkpointing(self, engine) -> None:
        snapshot_inner = getattr(type(engine), "snapshot", None)
        restore_inner = getattr(type(engine), "restore", None)
        if snapshot_inner is None or restore_inner is None:
            return
        trace = self.trace
        name = type(engine).__name__

        def snapshot():
            start = _perf()
            snap = snapshot_inner(engine)
            elapsed = _perf() - start
            self._checkpoints.inc()
            self._checkpoint_seconds.record(elapsed)
            if trace is not None:
                trace.record("checkpoint", start, elapsed, {"engine": name})
            return snap

        def restore(snap):
            start = _perf()
            restore_inner(engine, snap)
            elapsed = _perf() - start
            self._restores.inc()
            self._restore_seconds.record(elapsed)
            # Restore may rebuild lanes (multi) — re-bind the slab-seal hooks
            # — and moves the position, so reseat the sampling clock.
            for lane in engine._runtime.lanes():
                self.observe_lane(lane)
            rearm = self._entry_hooks.get(id(engine))
            if rearm is not None:
                rearm()
            if trace is not None:
                trace.record("restore", start, elapsed, {"engine": name})

        engine.snapshot = snapshot
        engine.restore = restore

    # ---------------------------------------------------------- runtime hooks
    # Called from repro.runtime.core at batch/sweep/slab granularity; every
    # call site is behind an ``obs is not None`` check, so the disabled path
    # never reaches them.
    def on_sweep(self, position: int, evicted: int, seconds: float) -> None:
        """A *sampled* eviction sweep finished (cumulative sweep counts live
        in ``EngineStatistics``; this feeds the cost distribution)."""
        self._sweep_seconds.record(seconds)
        self._sweep_evicted_sampled.inc(evicted)
        if self.trace is not None:
            self.trace.record(
                "sweep",
                _perf() - seconds,
                seconds,
                {"position": position, "evicted": evicted},
            )

    def on_batch(self, count: int, seconds: float, position: int) -> None:
        """One ``drive_batch`` call finished."""
        self._batches.inc()
        self._batch_tuples.inc(count)
        self._batch_seconds.record(seconds)
        if self.trace is not None:
            self.trace.record(
                "batch", _perf() - seconds, seconds, {"position": position, "tuples": count}
            )

    def on_slab_seal(self, fill: int) -> None:
        """An arena slab sealed with ``fill`` records."""
        self._slab_seals.inc()
        self._slab_fill.record(float(fill))

    def on_slab_release(self, slabs: int, position: int) -> None:
        """A *sampled* eviction sweep released ``slabs`` expired arena slabs
        (unsampled per-event sweeps skip the accounting to stay cheap;
        batched sweeps always report)."""
        self._slabs_released.inc(slabs)

    def on_index_patch(self, op: str, seconds: float, transitions: int) -> None:
        """A merged-index ``add_query``/``remove_query`` patch was applied."""
        (self._patch_adds if op == "add" else self._patch_removes).inc()
        self._patch_seconds.record(seconds)
        if self.trace is not None:
            self.trace.record(
                "index_patch", _perf() - seconds, seconds,
                {"op": op, "transitions": transitions},
            )

    def on_dispatch_adapt(self, reorders: int, promotions: int, demotions: int) -> None:
        """An adaptive-dispatch flush changed plans (reorders/promotions).

        Fired from the engines' flush hooks only when something actually
        changed — quiescent flushes cost nothing beyond the counter reads.
        """
        if reorders:
            self._dispatch_reorders.inc(reorders)
        if promotions:
            self._guard_promotions.inc(promotions)
        if demotions:
            self._guard_demotions.inc(demotions)
        if self.trace is not None:
            self.trace.record(
                "dispatch_adapt", _perf(), 0.0,
                {"reorders": reorders, "promotions": promotions, "demotions": demotions},
            )

    def on_shard_batch(
        self, count: int, seconds: float, position: int, workers: int
    ) -> None:
        """The sharded coordinator finished fanning one batch in."""
        self._shard_batches.inc()
        self._shard_batch_seconds.record(seconds)
        if self.trace is not None:
            self.trace.record(
                "shard_batch",
                _perf() - seconds,
                seconds,
                {"position": position, "tuples": count, "workers": workers},
            )

    def on_rebalance(
        self, queries: int, seconds: float, source: int, target: int
    ) -> None:
        """A live rebalance moved ``queries`` queries between shards."""
        self._shard_rebalances.inc()
        self._shard_rebalance_seconds.record(seconds)
        if self.trace is not None:
            self.trace.record(
                "rebalance",
                _perf() - seconds,
                seconds,
                {"queries": queries, "source": source, "target": target},
            )

    # -------------------------------------------------------------- sampling
    def sampled(self, position: int) -> bool:
        """Whether ``position`` falls on the 1-in-N sampling grid."""
        return position % self.sample_every == 0

    # ------------------------------------------------------------- collection
    def observe_engine(self, engine) -> None:
        """Refresh the point-in-time gauges from ``engine.observe()``.

        Pull-model collection: counter-like engine state (the unified
        ``EngineStatistics``, eviction totals, arena occupancy, kernel-op
        counts) is mirrored into gauges at collection time instead of being
        pushed per tuple, so it costs nothing on the hot path.  Called
        automatically by the exporters for attached engines; call it
        periodically (e.g. the CLI ``--stats-interval`` loop) to turn the
        per-``(relation, guard)`` fan-out and hit-rate gauges into a time
        series.
        """
        snapshot = engine.observe()
        gauge = self.metrics.gauge
        gauge("repro_stream_position").set(snapshot["position"])
        gauge("repro_hash_entries").set(snapshot["hash_entries"])
        gauge("repro_evicted_total").set(snapshot["evicted"])
        for field, value in snapshot["stats"].items():
            gauge(f"repro_engine_{field}").set(value)
        for field, value in snapshot["memory"].items():
            gauge(f"repro_memory_{field}").set(value)
        for field, value in snapshot["dispatch"].items():
            gauge(f"repro_dispatch_{field}").set(value)
        for relation, candidates in snapshot["fanout"].items():
            gauge("repro_relation_candidates", {"relation": relation}).set(candidates)
        adaptive = snapshot.get("adaptive")
        if adaptive is not None:
            for field in ("flushes", "reorders", "promotions", "demotions",
                          "promoted", "tracked_relations", "dormant_relations"):
                gauge(f"repro_adaptive_{field}").set(adaptive[field])
            for relation, info in adaptive.get("relations", {}).items():
                gauge(
                    "repro_relation_observed_selectivity", {"relation": relation}
                ).set(info["selectivity"])
        kernel = snapshot["kernel"]
        gauge("repro_kernel_native_active").set(1.0 if kernel.get("active") == "native" else 0.0)
        ds = snapshot.get("ds")
        if ds is not None:
            for field, value in ds.items():
                gauge(f"repro_ds_{field}").set(value)
        shard = snapshot.get("shard")
        if shard is not None:
            for field, value in shard.items():
                if isinstance(value, (int, float)):
                    gauge(f"repro_shard_{field}").set(value)
            for entry in shard.get("per_shard", ()):
                labels = {"shard": str(entry["shard"])}
                gauge("repro_shard_queries", labels).set(entry["queries"])
                gauge("repro_shard_log_depth", labels).set(entry["log_depth"])
                gauge("repro_shard_busy_seconds", labels).set(entry["busy_seconds"])
                gauge("repro_shard_hash_entries", labels).set(entry["hash_entries"])
        if self.trace is not None:
            gauge("repro_trace_spans_total").set(self.trace.total)
            gauge("repro_trace_spans_dropped").set(self.trace.dropped)

    def collect(self) -> Dict[str, object]:
        """Refresh attached-engine gauges and snapshot every metric series."""
        for engine in self._engines:
            self.observe_engine(engine)
        return self.metrics.collect()

    # ---------------------------------------------------------------- export
    def export_metrics(self, path: str) -> None:
        """Write the Prometheus text exposition (gauges refreshed first)."""
        for engine in self._engines:
            self.observe_engine(engine)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.metrics.to_prometheus())

    def export_trace(self, path: str) -> int:
        """Write the trace (`*.jsonl` → JSON-lines, else Chrome trace JSON).

        Returns the number of spans written; raises ``ValueError`` when the
        observer has no trace recorder.
        """
        if self.trace is None:
            raise ValueError("this observer has no trace recorder attached")
        if path.endswith(".jsonl"):
            return self.trace.export_jsonl(path)
        return self.trace.export_chrome(path)

    def __repr__(self) -> str:
        trace = f"trace(1/{self.trace.sample_every})" if self.trace is not None else "no trace"
        return (
            f"Observer({len(self.metrics)} series, {trace}, "
            f"{len(self._engines)} engine(s))"
        )
