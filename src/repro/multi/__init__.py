"""Multi-query streaming: shared dispatch, memoised predicates, one pass.

The paper's Theorem 5.1 bounds the per-tuple update cost of *one* unambiguous
PCEA ``P`` at ``O(|P|·|t| + |P|·log|P| + |P|·log w)``.  Running ``N``
registered queries as ``N`` independent
:class:`~repro.core.evaluation.StreamingEvaluator` instances multiplies the
whole bound — including its constant-factor Python overhead — by ``N``: every
tuple is re-dispatched ``N`` times and structurally identical unary predicates
are re-evaluated once per query that uses them.

This package evaluates all registered queries in **one pass per tuple** while
keeping each query's algorithmic state (run-index hash table, enumeration
structure ``DS_w``, sliding window) fully isolated, so per-query outputs are
exactly those of an independent evaluator:

* :class:`~repro.multi.registry.QueryRegistry` — the front end: dynamic
  ``register(query, window) -> QueryHandle`` / ``unregister(handle)`` for
  PCEA, DSL patterns, conjunctive queries, or query strings;
* :class:`~repro.multi.merged_index.MergedDispatchIndex` — the union of the
  per-PCEA transition dispatch indexes, keyed by relation name and constant
  guard, with every candidate tagged by its owning query;
* :class:`~repro.multi.engine.MultiQueryEngine` — the shared per-tuple loop:
  one merged dispatch lookup, one unary-predicate evaluation per canonical
  key (:meth:`~repro.core.predicates.UnaryPredicate.canonical_key`), one
  shared eviction sweep across every query's hash table (each query is an
  :class:`~repro.runtime.EvictionLane` of the same
  :class:`~repro.runtime.StreamRuntime` the single-query evaluator runs as
  its K=1 lane), and a batched
  :meth:`~repro.multi.engine.MultiQueryEngine.process_many` front end.

Cost model relative to Theorem 5.1: the per-tuple cost of the shared engine
is ``O(C(t) + Σ_q fired_q)`` where ``C(t)`` is the number of *distinct*
candidate predicate groups for the tuple — not ``Σ_q |P_q|``.  When queries
overlap (the production scenario: millions of users registering variations of
common patterns), ``C(t)`` grows with the number of distinct predicates, so
the per-query marginal cost falls toward the cost of the work that is truly
private to the query: its hash-table joins, node allocations, and output
enumeration — each still within the per-query Theorem 5.1 bound.  When
queries share nothing, the merged engine degrades gracefully to the
independent bound plus one dict lookup.

Registration is dynamic: a query registered at stream position ``p`` observes
tuples from ``p`` on (its valuations carry global positions), and
unregistration drops the query's state immediately.  Registration changes
patch the merged index **incrementally** — only the affected
``(relation, guard)`` buckets and interned-key tables are touched, with
tombstone-free compaction on unregister — so register/unregister latency is
O(|P_q|)-ish and independent of the registry size (measured in
``BENCH_registry_churn.json``: ≥500× faster than the full rebuild at 1024
registered queries); ``incremental=False`` keeps the full-rebuild path as the
ablation baseline.
"""

from repro.multi.engine import MultiQueryEngine, MultiQueryStatistics
from repro.multi.merged_index import MergedDispatchIndex, MergedEntry
from repro.multi.registry import (
    QueryHandle,
    QueryRegistry,
    QuerySpec,
    RegisteredQuery,
    compile_query,
)

__all__ = [
    "MultiQueryEngine",
    "MultiQueryStatistics",
    "MergedDispatchIndex",
    "MergedEntry",
    "QueryHandle",
    "QueryRegistry",
    "QuerySpec",
    "RegisteredQuery",
    "compile_query",
]
