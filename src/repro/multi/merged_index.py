"""The merged transition dispatch index shared by all registered queries.

One :class:`~repro.core.dispatch.TransitionDispatchIndex` serves one automaton;
with a million registered patterns the engine would perform a million
candidate lookups per tuple, one per automaton, even though most lookups
return nothing.  :class:`MergedDispatchIndex` unions the per-PCEA candidate
indexes into a single structure keyed by relation name (and, like the
per-automaton index, optionally by constant-guard value), tagging every
compiled transition with its owning query, so the multi-query engine performs
**one** lookup per tuple and receives the candidate transitions of *all*
registered queries at once.

Each merged entry also carries the canonical key of its unary predicate
(:meth:`~repro.core.predicates.UnaryPredicate.canonical_key`).  Entries with
equal keys accept exactly the same tuples, so the engine evaluates one
representative per key per tuple and shares the verdict — the *shared
unary-predicate memoisation* that makes per-tuple cost scale with the number
of distinct predicates instead of the number of registered queries.

The index is rebuilt on registration changes (rebuild cost is linear in the
total transition count — compare the per-tuple savings it buys); incremental
patching is a ROADMAP follow-on.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple as Tup

from repro.core.dispatch import (
    CompiledTransition,
    TransitionDispatchIndex,
    build_guard_buckets,
    probe_guard_buckets,
)


class MergedEntry:
    """One candidate transition of the merged index, tagged with its owner.

    ``owner`` is whatever the engine registered the member index under (the
    per-query lane); ``pred_key`` is the *interned* canonical key of the
    transition's unary predicate — a dense integer id shared across queries
    with structurally identical predicates, so the per-tuple memoisation cache
    hashes a plain int instead of a nested canonical-key tuple; ``order``
    fixes the global iteration order (registration order, then transition
    order within a query).
    """

    __slots__ = ("owner", "compiled", "unary", "pred_key", "guard", "order")

    def __init__(
        self, owner: object, compiled: CompiledTransition, pred_key: int, order: int
    ) -> None:
        self.owner = owner
        self.compiled = compiled
        self.unary = compiled.unary
        self.pred_key = pred_key
        self.guard: Optional[Tup[int, object]] = compiled.guard
        self.order = order

    def __repr__(self) -> str:
        return f"MergedEntry(owner={self.owner!r}, {self.compiled!r})"


def _entry_order(entry: MergedEntry) -> int:
    return entry.order


class MergedDispatchIndex:
    """The union of several per-automaton dispatch indexes.

    Parameters
    ----------
    members:
        ``(owner, dispatch index)`` pairs in registration order.  The owner
        object is attached to every entry produced from that index so the
        engine can route fired transitions to the right query lane.
    guards:
        As for :class:`~repro.core.dispatch.TransitionDispatchIndex`: with
        ``True``, guarded candidates are additionally bucketed by their
        constant-guard value and pruned by value before ``unary.holds`` runs.
    """

    def __init__(
        self,
        members: Sequence[Tup[object, TransitionDispatchIndex]],
        guards: bool = True,
    ) -> None:
        self.guards = guards
        self._members = tuple(members)
        # Intern canonical predicate keys to dense ids: structurally identical
        # predicates across queries share one id, and the engine's per-tuple
        # verdict cache hashes ints instead of composite canonical keys.
        self._pred_key_ids: Dict[Hashable, int] = {}
        entries: List[MergedEntry] = []
        for owner, index in self._members:
            for compiled in index.all_transitions():
                canonical = compiled.pred_key
                pred_id = self._pred_key_ids.get(canonical)
                if pred_id is None:
                    pred_id = self._pred_key_ids[canonical] = len(self._pred_key_ids)
                entries.append(MergedEntry(owner, compiled, pred_id, len(entries)))
        self._all: Tup[MergedEntry, ...] = tuple(entries)
        self._wildcard: Tup[MergedEntry, ...] = tuple(
            e for e in entries if e.compiled.relations is None
        )
        # One pass over the entries (the rebuild cost claimed by the module
        # docstring): each entry is appended to its own relations' lists, then
        # wildcards are merged in by global order.
        specific: Dict[str, List[MergedEntry]] = {}
        for e in entries:
            if e.compiled.relations is not None:
                for relation in e.compiled.relations:
                    specific.setdefault(relation, []).append(e)
        self._by_relation: Dict[str, Tup[MergedEntry, ...]] = {
            relation: tuple(
                sorted(members + list(self._wildcard), key=_entry_order)
                if self._wildcard
                else members
            )
            for relation, members in specific.items()
        }
        # Constant-guard buckets, shared with TransitionDispatchIndex.
        self._guarded: Dict[
            str,
            Tup[
                Tup[MergedEntry, ...],
                Tup[Tup[int, Dict[Hashable, Tup[MergedEntry, ...]]], ...],
            ],
        ] = {}
        if guards:
            for relation, members_of in self._by_relation.items():
                buckets = build_guard_buckets(members_of)
                if buckets is not None:
                    self._guarded[relation] = buckets

    # ----------------------------------------------------------------- lookups
    def candidates_for(self, tup) -> Sequence[MergedEntry]:
        """All registered queries' candidate transitions for one tuple."""
        entry = self._guarded.get(tup.relation)
        if entry is None:
            return self._by_relation.get(tup.relation, self._wildcard)
        return probe_guard_buckets(entry, tup, _entry_order)

    def all_entries(self) -> Tup[MergedEntry, ...]:
        return self._all

    # ------------------------------------------------------------ introspection
    def __len__(self) -> int:
        return len(self._all)

    def describe(self) -> Dict[str, float]:
        """Merged-index statistics for CLI ``--stats`` / benchmark reporting.

        ``predicate_groups`` counts distinct canonical predicate keys across
        all registered transitions; ``shared_predicate_groups`` counts the
        keys used by two or more transitions (the groups where memoisation
        actually saves evaluations).  ``mean_candidates`` / ``max_candidates``
        report the per-relation candidate fan-out a tuple lookup returns.
        """
        sizes = [len(members) for members in self._by_relation.values()]
        key_counts: Dict[Hashable, int] = {}
        for e in self._all:
            key_counts[e.pred_key] = key_counts.get(e.pred_key, 0) + 1
        guarded = sum(1 for e in self._all if e.guard is not None)
        return {
            "queries": float(len(self._members)),
            "transitions": float(len(self._all)),
            "relations": float(len(self._by_relation)),
            "wildcard_transitions": float(len(self._wildcard)),
            "max_candidates": float(max(sizes, default=len(self._wildcard))),
            "mean_candidates": (
                float(sum(sizes) / len(sizes)) if sizes else float(len(self._wildcard))
            ),
            "predicate_groups": float(len(key_counts)),
            "shared_predicate_groups": float(
                sum(1 for count in key_counts.values() if count > 1)
            ),
            "guarded_transitions": float(guarded if self.guards else 0),
        }

    def __repr__(self) -> str:
        info = self.describe()
        return (
            f"MergedDispatchIndex(queries={int(info['queries'])}, "
            f"|Δ|={int(info['transitions'])}, relations={int(info['relations'])}, "
            f"shared_groups={int(info['shared_predicate_groups'])})"
        )
