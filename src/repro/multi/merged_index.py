"""The merged transition dispatch index shared by all registered queries.

One :class:`~repro.core.dispatch.TransitionDispatchIndex` serves one automaton;
with a million registered patterns the engine would perform a million
candidate lookups per tuple, one per automaton, even though most lookups
return nothing.  :class:`MergedDispatchIndex` unions the per-PCEA candidate
indexes into a single structure keyed by relation name (and, like the
per-automaton index, optionally by constant-guard value), tagging every
compiled transition with its owning query, so the multi-query engine performs
**one** lookup per tuple and receives the candidate transitions of *all*
registered queries at once.

Each merged entry also carries the canonical key of its unary predicate
(:meth:`~repro.core.predicates.UnaryPredicate.canonical_key`).  Entries with
equal keys accept exactly the same tuples, so the engine evaluates one
representative per key per tuple and shares the verdict — the *shared
unary-predicate memoisation* that makes per-tuple cost scale with the number
of distinct predicates instead of the number of registered queries.

Incremental patching
--------------------
The index is **incrementally patchable**: :meth:`add_query` and
:meth:`remove_query` mutate only the ``(relation, guard)`` buckets the
query's transitions actually touch, plus the interned-key tables, so a
registration change costs ``O(|P_q| + Σ affected-bucket sizes)`` instead of a
full rebuild over every registered transition — the difference between O(1)
and O(total) registration latency at millions of registered queries.
Specifically:

* per-relation candidate lists are compacted in place on removal (no
  tombstones — a removed query leaves no residue a per-tuple lookup could
  ever scan);
* canonical predicate keys are interned with reference counts; the dense
  integer ids of keys whose last user unregistered are recycled through a
  free list, so the interned-key tables shrink back and the per-tuple
  memoisation cache keeps hashing small ints;
* wildcard transitions (rare) are the one global case: adding or removing a
  wildcard-carrying query refreshes every relation bucket, because wildcards
  are merged into each per-relation candidate list.

Entry iteration order is preserved across patching: ``order`` values are
assigned from a monotonic counter, so candidates always iterate in
registration order then transition order — exactly the order a from-scratch
rebuild over the surviving queries produces.  :meth:`signature` exposes a
canonical structural summary (independent of raw order values and interned-id
assignment) that the tests compare against a from-scratch rebuild after every
mutation.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple as Tup

from repro.core.dispatch import (
    CompiledTransition,
    TransitionDispatchIndex,
    build_guard_buckets,
    join_signature,
    probe_guard_buckets,
)


class MergedEntry:
    """One candidate transition of the merged index, tagged with its owner.

    ``owner`` is whatever the engine registered the member index under (the
    per-query lane); ``pred_key`` is the *interned* canonical key of the
    transition's unary predicate — a dense integer id shared across queries
    with structurally identical predicates, so the per-tuple memoisation cache
    hashes a plain int instead of a nested canonical-key tuple; ``order``
    fixes the global iteration order (registration order, then transition
    order within a query).
    """

    __slots__ = ("owner", "compiled", "unary", "pred_key", "guard", "order", "hits")

    def __init__(
        self, owner: object, compiled: CompiledTransition, pred_key: int, order: int
    ) -> None:
        self.owner = owner
        self.compiled = compiled
        self.unary = compiled.unary
        self.pred_key = pred_key
        self.guard: Optional[Tup[int, object]] = compiled.guard
        self.order = order
        # Adaptive-dispatch hit counter (repro.core.adaptive): bumped when
        # this entry leads a predicate group whose unary held, halved at
        # every flush.  Feedback only — excluded from signature().
        self.hits = 0

    def __repr__(self) -> str:
        return f"MergedEntry(owner={self.owner!r}, {self.compiled!r})"


def _entry_order(entry: MergedEntry) -> int:
    return entry.order


class MergedDispatchIndex:
    """The union of several per-automaton dispatch indexes.

    Parameters
    ----------
    members:
        ``(owner, dispatch index)`` pairs in registration order.  The owner
        object is attached to every entry produced from that index so the
        engine can route fired transitions to the right query lane; it is
        also the handle :meth:`remove_query` identifies the member by.
    guards:
        As for :class:`~repro.core.dispatch.TransitionDispatchIndex`: with
        ``True``, guarded candidates are additionally bucketed by their
        constant-guard value and pruned by value before ``unary.holds`` runs.
    """

    def __init__(
        self,
        members: Sequence[Tup[object, TransitionDispatchIndex]] = (),
        guards: bool = True,
    ) -> None:
        self.guards = guards
        # Owner bookkeeping: id(owner) -> owner / its entries, in registration
        # order (dict insertion order is the canonical query order).
        self._owners: Dict[int, object] = {}
        self._by_owner: Dict[int, Tup[MergedEntry, ...]] = {}
        # Interned canonical predicate keys with reference counts: dense ids
        # are recycled through a free list so the tables shrink back after
        # unregistration and the memo cache keeps hashing small ints.
        self._pred_key_ids: Dict[Hashable, int] = {}
        self._pred_key_counts: Dict[Hashable, int] = {}
        self._free_pred_ids: List[int] = []
        self._next_pred_id = 0
        self._next_order = 0
        self._size = 0
        # Lifetime patch counters (``describe()`` surfaces them; the
        # observability layer additionally times each patch at the engine).
        self.patched_adds = 0
        self.patched_removes = 0
        # Per-relation candidate state: ``_specific`` holds only the entries
        # that name the relation (mutable, order-sorted); ``_by_relation`` is
        # the read-optimised tuple the per-tuple lookup hits (specific merged
        # with wildcards); ``_guarded`` the constant-guard refinement.
        self._specific: Dict[str, List[MergedEntry]] = {}
        self._wildcard_entries: List[MergedEntry] = []
        self._wildcard: Tup[MergedEntry, ...] = ()
        self._by_relation: Dict[str, Tup[MergedEntry, ...]] = {}
        self._guarded: Dict[
            str,
            Tup[
                Tup[MergedEntry, ...],
                Tup[Tup[int, Dict[Hashable, Tup[MergedEntry, ...]]], ...],
            ],
        ] = {}
        # The engine's adaptive state, when it opted in: every per-relation
        # refresh notifies it so learned plans are re-derived for exactly the
        # relations a patch touched (the PR 4 localized-rewrite contract).
        self.adaptive_listener = None
        for owner, index in members:
            self.add_query(owner, index)

    # ------------------------------------------------------------ intern table
    def _intern_pred(self, canonical: Hashable) -> int:
        pred_id = self._pred_key_ids.get(canonical)
        if pred_id is None:
            if self._free_pred_ids:
                pred_id = self._free_pred_ids.pop()
            else:
                pred_id = self._next_pred_id
                self._next_pred_id += 1
            self._pred_key_ids[canonical] = pred_id
            self._pred_key_counts[canonical] = 1
        else:
            self._pred_key_counts[canonical] += 1
        return pred_id

    def _release_pred(self, canonical: Hashable) -> None:
        count = self._pred_key_counts[canonical] - 1
        if count:
            self._pred_key_counts[canonical] = count
        else:
            del self._pred_key_counts[canonical]
            self._free_pred_ids.append(self._pred_key_ids.pop(canonical))

    # ------------------------------------------------------------ registration
    def add_query(self, owner: object, index: TransitionDispatchIndex) -> None:
        """Merge one automaton's transitions in, patching only its buckets.

        Cost: O(|P_q|) for the entry construction and interning, plus a
        refresh of each relation bucket the query touches (O(bucket size) —
        the read-optimised tuples are rebuilt, never the whole index).
        """
        key = id(owner)
        if key in self._by_owner:
            raise ValueError(f"owner {owner!r} is already registered in the merged index")
        entries: List[MergedEntry] = []
        touched: set = set()
        added_wildcard = False
        specific = self._specific
        for compiled in index.all_transitions():
            entry = MergedEntry(
                owner, compiled, self._intern_pred(compiled.pred_key), self._next_order
            )
            self._next_order += 1
            entries.append(entry)
            relations = compiled.relations
            if relations is None:
                self._wildcard_entries.append(entry)
                added_wildcard = True
            else:
                for relation in relations:
                    bucket = specific.get(relation)
                    if bucket is None:
                        specific[relation] = [entry]
                    else:
                        bucket.append(entry)
                    touched.add(relation)
        self._owners[key] = owner
        self._by_owner[key] = tuple(entries)
        self._size += len(entries)
        if added_wildcard:
            # Wildcards appear in every relation's candidate list, so a
            # wildcard-carrying query is the one global refresh.
            self._wildcard = tuple(self._wildcard_entries)
            touched = set(specific)
        for relation in touched:
            self._refresh_relation(relation)
        self.patched_adds += 1

    def remove_query(self, owner: object) -> None:
        """Remove one query's transitions, compacting only its buckets.

        The affected per-relation lists are rebuilt without the removed
        entries (tombstone-free: no per-tuple lookup ever scans residue of an
        unregistered query) and the interned-key reference counts are
        released so unused canonical keys disappear from the tables.
        """
        key = id(owner)
        entries = self._by_owner.pop(key, None)
        if entries is None:
            raise KeyError(f"owner {owner!r} is not registered in the merged index")
        del self._owners[key]
        self._size -= len(entries)
        touched: set = set()
        removed_wildcard = False
        for entry in entries:
            self._release_pred(entry.compiled.pred_key)
            relations = entry.compiled.relations
            if relations is None:
                removed_wildcard = True
            else:
                touched.update(relations)
        if removed_wildcard:
            self._wildcard_entries = [
                e for e in self._wildcard_entries if e.owner is not owner
            ]
            self._wildcard = tuple(self._wildcard_entries)
            touched = set(self._specific)
        for relation in touched:
            bucket = self._specific.get(relation)
            if bucket is not None:
                kept = [e for e in bucket if e.owner is not owner]
                if kept:
                    self._specific[relation] = kept
                else:
                    del self._specific[relation]
            self._refresh_relation(relation)
        self.patched_removes += 1

    def _refresh_relation(self, relation: str) -> None:
        """Rebuild one relation's read-optimised candidate tuple + guard buckets."""
        bucket = self._specific.get(relation)
        if bucket is None:
            # No specific candidates left: unknown-relation fallback (the
            # wildcard list) already covers it.
            self._by_relation.pop(relation, None)
            self._guarded.pop(relation, None)
        else:
            if self._wildcard_entries:
                members: Tup[MergedEntry, ...] = tuple(
                    sorted(bucket + self._wildcard_entries, key=_entry_order)
                )
            else:
                members = tuple(bucket)
            self._by_relation[relation] = members
            if self.guards:
                guard_buckets = build_guard_buckets(members)
                if guard_buckets is None:
                    self._guarded.pop(relation, None)
                else:
                    self._guarded[relation] = guard_buckets
        listener = self.adaptive_listener
        if listener is not None:
            listener.rebuild_relation(relation)

    # ----------------------------------------------------------------- lookups
    def candidates_for(self, tup) -> Sequence[MergedEntry]:
        """All registered queries' candidate transitions for one tuple."""
        entry = self._guarded.get(tup.relation)
        if entry is None:
            return self._by_relation.get(tup.relation, self._wildcard)
        return probe_guard_buckets(entry, tup, _entry_order)

    def all_entries(self) -> Tup[MergedEntry, ...]:
        """Every entry, in candidate iteration order (introspection/tests)."""
        entries = [e for per_owner in self._by_owner.values() for e in per_owner]
        entries.sort(key=_entry_order)
        return tuple(entries)

    def build_adaptive(self, config=None):
        """An engine-owned :class:`~repro.core.adaptive.AdaptiveState` over
        this index.

        The caller is responsible for wiring the returned state into
        ``adaptive_listener`` so structural patches keep its plans fresh.
        """
        from repro.core.adaptive import AdaptiveState

        return AdaptiveState(self, _entry_order, config)

    # ------------------------------------------------------------ introspection
    def __len__(self) -> int:
        return self._size

    def interned_key_count(self) -> int:
        """Distinct canonical predicate keys currently interned (leak check)."""
        return len(self._pred_key_ids)

    def signature(self) -> Dict[str, object]:
        """A canonical structural summary for the patch-vs-rebuild invariant.

        Two indexes over the same owner sequence are *behaviourally
        identical* — same candidates in the same order for every possible
        tuple, same memoisation sharing — iff their signatures are equal.
        The summary tokenises entries as ``(owner rank, transition index)``
        (independent of raw ``order`` values, which a patched index assigns
        with gaps) and maps each token to its canonical predicate key
        (independent of interned-id assignment, which a patched index
        recycles).  Tests assert ``patched.signature() ==
        rebuilt.signature()`` after every mutation.
        """
        ranks = {key: rank for rank, key in enumerate(self._owners)}

        def token(entry: MergedEntry) -> Tup[int, int]:
            return (ranks[id(entry.owner)], entry.compiled.index)

        relations = {
            relation: tuple(token(e) for e in members)
            for relation, members in self._by_relation.items()
        }
        guards = {}
        for relation, (unguarded, groups) in self._guarded.items():
            group_sig = []
            for position, by_value in groups:
                buckets = sorted(
                    ((value, tuple(token(e) for e in bucket)) for value, bucket in by_value.items()),
                    key=lambda item: repr(item[0]),
                )
                group_sig.append((position, tuple(buckets)))
            guards[relation] = (tuple(token(e) for e in unguarded), tuple(group_sig))
        predicates = {
            token(e): e.compiled.pred_key
            for per_owner in self._by_owner.values()
            for e in per_owner
        }
        # Binary join predicates, so two query sets differing only in a join
        # (same relations, same unary keys) cannot verify as equal — the
        # snapshot protocol relies on this.
        joins = {
            token(e): join_signature(e.compiled)
            for per_owner in self._by_owner.values()
            for e in per_owner
        }
        # Interning consistency: equal canonical keys must share one dense id
        # (the memoisation soundness invariant), checked here so the tests'
        # signature comparison also certifies the intern tables.
        for per_owner in self._by_owner.values():
            for e in per_owner:
                if self._pred_key_ids[e.compiled.pred_key] != e.pred_key:
                    raise AssertionError(
                        "interned predicate id drifted from the canonical-key table"
                    )
        return {
            "relations": relations,
            "wildcard": tuple(token(e) for e in self._wildcard),
            "guards": guards,
            "predicates": predicates,
            "joins": joins,
            "size": self._size,
        }

    def describe(self) -> Dict[str, float]:
        """Merged-index statistics for CLI ``--stats`` / benchmark reporting.

        ``predicate_groups`` counts distinct canonical predicate keys across
        all registered transitions; ``shared_predicate_groups`` counts the
        keys used by two or more transitions (the groups where memoisation
        actually saves evaluations).  ``mean_candidates`` / ``max_candidates``
        report the per-relation candidate fan-out a tuple lookup returns.
        """
        sizes = [len(members) for members in self._by_relation.values()]
        guarded = sum(
            1
            for per_owner in self._by_owner.values()
            for e in per_owner
            if e.guard is not None
        )
        guard_values = sum(
            len(by_value)
            for _, groups in self._guarded.values()
            for _, by_value in groups
        )
        return {
            "queries": float(len(self._owners)),
            "transitions": float(self._size),
            "relations": float(len(self._by_relation)),
            "wildcard_transitions": float(len(self._wildcard)),
            "max_candidates": float(max(sizes, default=len(self._wildcard))),
            "mean_candidates": (
                float(sum(sizes) / len(sizes)) if sizes else float(len(self._wildcard))
            ),
            "predicate_groups": float(len(self._pred_key_counts)),
            "shared_predicate_groups": float(
                sum(1 for count in self._pred_key_counts.values() if count > 1)
            ),
            "guarded_transitions": float(guarded if self.guards else 0),
            "guard_values": float(guard_values),
            "patched_adds": float(self.patched_adds),
            "patched_removes": float(self.patched_removes),
        }

    def relation_fanout(self) -> Dict[str, int]:
        """Per-relation candidate-list sizes (``"*"`` = wildcard fallback).

        Key-compatible with ``TransitionDispatchIndex.relation_fanout`` so
        the per-relation observability gauges mean the same thing in every
        engine mode.
        """
        fanout = {
            relation: len(members) for relation, members in self._by_relation.items()
        }
        fanout["*"] = len(self._wildcard)
        return fanout

    def __repr__(self) -> str:
        info = self.describe()
        return (
            f"MergedDispatchIndex(queries={int(info['queries'])}, "
            f"|Δ|={int(info['transitions'])}, relations={int(info['relations'])}, "
            f"shared_groups={int(info['shared_predicate_groups'])})"
        )
