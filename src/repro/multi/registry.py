"""Query registry: the front end of the multi-query subsystem.

A :class:`QueryRegistry` normalises the many ways a client can express a
pattern — a compiled :class:`~repro.core.pcea.PCEA`, a CER pattern from the
DSL, a :class:`~repro.cq.query.ConjunctiveQuery`, or a query string — into a
registered entry with its own sliding window, and issues an opaque
:class:`QueryHandle` for later unregistration and output routing.  The
registry is pure bookkeeping; the runtime state (hash tables, enumeration
structures, merged dispatch index) lives in
:class:`~repro.multi.engine.MultiQueryEngine`, which owns a registry and
rebuilds its merged index on every registration change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.core.evaluation import NotEqualityPredicateError
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.core.pcea import PCEA
from repro.cq.hierarchical import NotHierarchicalError, is_hierarchical
from repro.cq.query import ConjunctiveQuery, parse_query
from repro.engine.compiler import compile_pattern
from repro.engine.dsl import Pattern


QuerySpec = Union[PCEA, Pattern, ConjunctiveQuery, str]


@dataclass(frozen=True)
class QueryHandle:
    """An opaque handle naming one registered query.

    ``id`` is unique for the lifetime of the registry (ids are never reused,
    so a stale handle can be detected); ``name`` is a client-facing label used
    in CLI output and diagnostics; ``window`` is the query's sliding-window
    size.
    """

    id: int
    name: str
    window: int

    def __str__(self) -> str:
        return f"{self.name}#{self.id}"


@dataclass
class RegisteredQuery:
    """One registry entry: the handle and its compiled automaton."""

    handle: QueryHandle
    pcea: PCEA


def compile_query(query: QuerySpec) -> PCEA:
    """Normalise any supported query specification into a PCEA.

    Strings are parsed as conjunctive queries; conjunctive queries must be
    hierarchical (Theorem 4.1's hypothesis); DSL patterns go through the
    pattern compiler.  Raises ``ValueError`` subclasses on malformed input and
    :class:`~repro.core.evaluation.NotEqualityPredicateError` when the result
    cannot be evaluated by Algorithm 1.
    """
    if isinstance(query, str):
        query = parse_query(query)
    if isinstance(query, ConjunctiveQuery):
        if not is_hierarchical(query):
            raise NotHierarchicalError(
                f"query {query.name} is not hierarchical; only hierarchical CQs admit "
                "the streaming evaluation of the paper"
            )
        pcea = hcq_to_pcea(query)
    elif isinstance(query, Pattern):
        pcea = compile_pattern(query)
    elif isinstance(query, PCEA):
        pcea = query
    else:
        raise TypeError(
            f"cannot register a {type(query).__name__}; expected a PCEA, a CER "
            "pattern, a ConjunctiveQuery, or a query string"
        )
    if not pcea.uses_only_equality_predicates():
        raise NotEqualityPredicateError(
            "registered queries must compile to equality-predicate PCEA "
            "(Algorithm 1's hypothesis)"
        )
    return pcea


class QueryRegistry:
    """Dynamic registration of queries, each with its own sliding window."""

    def __init__(self) -> None:
        self._entries: Dict[int, RegisteredQuery] = {}
        self._next_id = 0
        self._version = 0

    @property
    def version(self) -> int:
        """Bumped on every registration change (consumers cache against it)."""
        return self._version

    def register(
        self, query: QuerySpec, window: int, name: Optional[str] = None
    ) -> QueryHandle:
        """Compile and register ``query`` under a ``window``-sized sliding window."""
        if window < 0:
            raise ValueError("window size must be non-negative")
        pcea = compile_query(query)
        handle = QueryHandle(self._next_id, name or f"q{self._next_id}", window)
        self._next_id += 1
        self._entries[handle.id] = RegisteredQuery(handle, pcea)
        self._version += 1
        return handle

    def unregister(self, handle: QueryHandle) -> None:
        """Drop a registered query; raises ``KeyError`` for unknown/stale handles."""
        if handle.id not in self._entries:
            raise KeyError(f"no registered query with handle {handle}")
        del self._entries[handle.id]
        self._version += 1

    def entries(self) -> List[RegisteredQuery]:
        """Registered queries in registration order."""
        return [self._entries[qid] for qid in sorted(self._entries)]

    # ------------------------------------------------------- snapshot protocol
    def snapshot(self) -> dict:
        """The registry's bookkeeping as a plain serialisable mapping.

        Queries themselves (compiled PCEA) are *not* serialised — the
        restoring side re-registers the same query specifications and the
        engine verifies equivalence through the merged-index signature; what
        the snapshot preserves is the handle table (ids, names, windows, in
        registration order) and the id counter, so restored handles and all
        future registrations carry the same ids as the snapshotted run.
        """
        return {
            "next_id": self._next_id,
            "version": self._version,
            "entries": [
                {
                    "id": entry.handle.id,
                    "name": entry.handle.name,
                    "window": entry.handle.window,
                }
                for entry in self.entries()
            ],
        }

    def restore_handles(self, snapshot: dict) -> List[QueryHandle]:
        """Remap this registry's handles onto a snapshot's handle table.

        The registry must hold the same queries in the same registration
        order as the snapshotted one (the caller re-registered them; windows
        are verified here, structural equivalence by the engine's signature
        check).  Handles are rewritten in place — ids and names adopt the
        snapshot's, which is what keeps output routing and future handle
        allocation identical to the snapshotted run even when queries were
        unregistered before the checkpoint (id gaps).  Returns the new
        handles in registration order.
        """
        entries = self.entries()
        recorded = snapshot["entries"]
        if len(entries) != len(recorded):
            raise ValueError(
                f"snapshot holds {len(recorded)} registered queries, "
                f"this registry holds {len(entries)}"
            )
        # Validate everything first: a rejected restore must leave the
        # registry exactly as it was (no partially remapped handles).
        for entry, entry_snap in zip(entries, recorded):
            if entry.handle.window != entry_snap["window"]:
                raise ValueError(
                    f"query {entry.handle} has window {entry.handle.window}, "
                    f"snapshot recorded {entry_snap['window']}"
                )
        handles: List[QueryHandle] = []
        remapped: Dict[int, RegisteredQuery] = {}
        for entry, entry_snap in zip(entries, recorded):
            handle = QueryHandle(
                int(entry_snap["id"]), entry_snap["name"], int(entry_snap["window"])
            )
            entry.handle = handle
            remapped[handle.id] = entry
            handles.append(handle)
        self._entries = remapped
        self._next_id = int(snapshot["next_id"])
        self._version = int(snapshot["version"])
        return handles

    def get(self, handle: QueryHandle) -> RegisteredQuery:
        return self._entries[handle.id]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, handle: QueryHandle) -> bool:
        return isinstance(handle, QueryHandle) and handle.id in self._entries

    def __repr__(self) -> str:
        return f"QueryRegistry({len(self._entries)} queries, version={self._version})"
