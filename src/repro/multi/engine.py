"""The multi-query streaming engine: many patterns, one pass per tuple.

:class:`MultiQueryEngine` evaluates every registered query with Algorithm 1
semantics — each query keeps its *own* run-index hash table, enumeration
structure (``DS_w``) and sliding window, so outputs are bit-for-bit identical
to running one :class:`~repro.core.evaluation.StreamingEvaluator` per query —
but the per-tuple work is shared three ways:

* **one dispatch lookup** through the
  :class:`~repro.multi.merged_index.MergedDispatchIndex` returns the candidate
  transitions of all queries at once;
* **one unary-predicate evaluation per canonical key** — structurally
  identical predicates across queries are evaluated once per tuple and the
  verdict is memoised (sound because equal canonical keys imply equal
  extensions);
* **one eviction sweep** through the shared
  :class:`~repro.runtime.StreamRuntime` — every query is an
  :class:`~repro.runtime.EvictionLane` of the same runtime the single-query
  evaluator runs as its K=1 lane, so the expiry-bucket map (keyed by the
  global position at which an entry expires, ``max_start + window_q + 1``),
  the bucket-pop sweep, the batched catch-up sweep and the periodic arena
  release pass exist in exactly one place and cover every lane at once.

Registration changes patch the merged index incrementally
(:meth:`MergedDispatchIndex.add_query` / ``remove_query``): registering a
query touches only its own ``(relation, guard)`` buckets, O(|P_q|)-ish
instead of a rebuild over every registered transition, which is what keeps
register/unregister latency flat as the registry grows toward the
million-query target.  ``incremental=False`` restores the full rebuild for
ablation and the churn benchmark's baseline.

Positions are global to the engine's stream: a query registered at position
``p`` behaves exactly like an independent evaluator that started observing
the stream at ``p`` (its valuations carry global stream positions).
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple as Tup

from repro.core.adaptive import resolve_config
from repro.core.arena import ArenaDataStructure
from repro.core.kernel import resolve_kernel
from repro.core.datastructure import DataStructure
from repro.core.evaluation import NodeRef
from repro.cq.schema import Tuple
from repro.multi.merged_index import MergedDispatchIndex
from repro.multi.registry import QueryHandle, QueryRegistry, QuerySpec
from repro.runtime import (
    RELEASE_PASS_INTERVAL,
    EngineStatistics,
    EvictionLane,
    RuntimeBackedEngine,
    StreamRuntime,
)
from repro.runtime.snapshot import (
    PARTIAL_SNAPSHOT_KIND,
    SNAPSHOT_VERSION,
    SnapshotError,
    check_partial_snapshot,
    check_snapshot_header,
    stable_signature,
)
from repro.valuation import Valuation


_MISS = object()  # memo-cache sentinel (verdicts are booleans, None won't do)


def _fired_entry_order(item) -> int:
    # Canonical candidate order for plan-mode effect application.
    return item[0].order

#: Backwards-compatible name: the per-engine statistics dataclasses were
#: unified into :class:`repro.runtime.EngineStatistics` (the old
#: ``candidates_scanned`` field survives as a property alias).
MultiQueryStatistics = EngineStatistics


class _QueryLane(EvictionLane):
    """Per-query runtime state: isolated tables, shared per-tuple loop."""

    __slots__ = ("handle", "pcea", "dispatch")

    def __init__(
        self,
        handle: QueryHandle,
        pcea,
        arena: bool = True,
        columnar: bool = True,
        kernel: Optional[str] = None,
    ) -> None:
        ds = (
            ArenaDataStructure(handle.window, columnar=columnar, kernel=kernel)
            if arena
            else DataStructure(handle.window)
        )
        super().__init__(handle.window, ds)
        self.handle = handle
        self.pcea = pcea
        self.dispatch = pcea.dispatch_index()

    def deactivate(self) -> None:
        super().deactivate()
        self.pcea = None
        self.dispatch = None

    def __repr__(self) -> str:
        return f"_QueryLane({self.handle}, |H|={len(self.hash)})"


class MultiQueryEngine(RuntimeBackedEngine):
    """Evaluate many registered patterns over one stream in a single pass.

    Parameters
    ----------
    registry:
        Optional externally owned :class:`QueryRegistry`; by default the
        engine creates its own.  Queries already present in a supplied
        registry are picked up at construction time.
    memoise:
        With ``True`` (default), unary predicates are evaluated once per
        canonical key per tuple and shared across queries; ``False`` restores
        one evaluation per candidate (ablation / differential testing).
    guards:
        Passed to the merged index: prune constant-guarded candidates by
        value before their predicate runs.
    collect_stats:
        With ``True``, the shared loop maintains
        :class:`~repro.runtime.EngineStatistics`; off by default (production
        mode).
    arena:
        With ``True`` (default) each lane's enumeration structure is the
        arena-backed :class:`~repro.core.arena.ArenaDataStructure`, whose
        expired slabs the shared eviction sweep releases wholesale; ``False``
        restores the object-graph ``DS_w`` per lane (ablation / differential
        testing).
    incremental:
        With ``True`` (default) registration changes patch the merged
        dispatch index in place (O(|P_q|)-ish per change); ``False`` rebuilds
        it from scratch on every change (the pre-patching behaviour, kept as
        the ablation baseline the churn benchmark measures against).
    columnar:
        Arena column layout per lane (``array('q')`` packing by default;
        ``False`` keeps the list-backed slabs — ablation).  Ignored with
        ``arena=False``.
    kernel:
        Record-operation backend for every lane's arena hot path
        (``"python"`` / ``"native"`` / ``"auto"``; ``None`` defers to
        ``REPRO_KERNEL`` then auto-detection — :mod:`repro.core.kernel`).
        Resolved once at construction so every lane — including lanes
        registered mid-stream — runs the same backend; ignored with
        ``arena=False``.
    release_interval:
        Positions between the runtime's periodic full arena-release passes
        over every lane (default :data:`~repro.runtime.RELEASE_PASS_INTERVAL`)
        — the pass that reclaims expired slabs of lanes whose queries stopped
        matching.  Lower it for tighter idle-lane memory at higher amortised
        sweep cost; ``memory_info()['release_interval']`` reports it.
    adaptive:
        Adaptive selectivity-driven dispatch (:mod:`repro.core.adaptive`)
        over the merged index: runtime feedback reorders candidate groups
        and promotes hot constant-guard values to standing plans, with
        per-query outputs and counters bit-identical to the static path
        (``False``, the ablation oracle).  Plan mode shares one verdict per
        predicate group, so it requires ``memoise=True`` (silently inert
        otherwise).  An :class:`~repro.core.adaptive.AdaptiveConfig`
        overrides the flush/promotion knobs.
    """

    def __init__(
        self,
        registry: Optional[QueryRegistry] = None,
        memoise: bool = True,
        guards: bool = True,
        collect_stats: bool = False,
        arena: bool = True,
        incremental: bool = True,
        columnar: bool = True,
        kernel: Optional[str] = None,
        release_interval: int = RELEASE_PASS_INTERVAL,
        adaptive: object = True,
    ) -> None:
        self.registry = registry if registry is not None else QueryRegistry()
        self.memoise = memoise
        self._guards = guards
        self._arena = arena
        self._columnar = columnar
        # Resolve the backend once (surfacing bad explicit choices here, not
        # at some later mid-stream registration) and pass the resolved name
        # to every lane.
        self._kernel = resolve_kernel(kernel, columnar) if arena else None
        self._incremental = incremental
        self._count_stats = collect_stats
        self._runtime = StreamRuntime(release_interval=release_interval)
        self._runtime.count_stats = collect_stats
        self._lanes: Dict[int, _QueryLane] = {}
        self._merged = MergedDispatchIndex((), guards=guards)
        for entry in self.registry.entries():
            lane = _QueryLane(entry.handle, entry.pcea, arena, columnar, self._kernel)
            self._lanes[entry.handle.id] = lane
            self._runtime.add_lane(lane)
            self._merged.add_query(lane, lane.dispatch)
        # Adaptive dispatch over the merged index.  Plan mode shares one
        # verdict per predicate group (and emulates the memoised counters),
        # so it is gated on memoise; the listener hookup keeps plans fresh
        # through incremental registration patches.
        self._adaptive = None
        config = resolve_config(adaptive) if memoise else None
        if config is not None:
            self._adaptive = self._merged.build_adaptive(config)
            self._merged.adaptive_listener = self._adaptive
            self._runtime.arm_adapt(self._adapt_flush, config.interval)

    # ----------------------------------------------------------- registration
    def register(
        self, query: QuerySpec, window: int, name: Optional[str] = None
    ) -> QueryHandle:
        """Register a query mid-stream; it starts observing at the next tuple."""
        handle = self.registry.register(query, window, name)
        lane = _QueryLane(
            handle, self.registry.get(handle).pcea, self._arena, self._columnar, self._kernel
        )
        self._lanes[handle.id] = lane
        self._runtime.add_lane(lane)
        observer = getattr(self, "_observer", None)
        start = perf_counter() if observer is not None else 0.0
        if self._incremental:
            self._merged.add_query(lane, lane.dispatch)
        else:
            self._rebuild()
        if observer is not None:
            observer.on_index_patch(
                "add", perf_counter() - start, len(lane.dispatch.all_transitions())
            )
            observer.observe_lane(lane)
        return handle

    def unregister(self, handle: QueryHandle) -> None:
        """Drop a query; its state is discarded and outputs stop immediately."""
        self.registry.unregister(handle)
        lane = self._lanes.pop(handle.id)
        observer = getattr(self, "_observer", None)
        start = perf_counter() if observer is not None else 0.0
        transitions = (
            len(lane.dispatch.all_transitions()) if observer is not None else 0
        )
        if self._incremental:
            self._merged.remove_query(lane)
        # Stale expiry-bucket entries still reference the lane; the shared
        # sweep skips inactive lanes instead of scrubbing every bucket
        # eagerly.  Deactivation clears the lane's state (hash table,
        # enumeration structure, bound hooks) so the query's memory is
        # released immediately, not up to a window later.
        self._runtime.drop_lane(lane)
        if not self._incremental:
            self._rebuild()
        if observer is not None:
            observer.on_index_patch("remove", perf_counter() - start, transitions)

    def handles(self) -> List[QueryHandle]:
        """Handles of the registered queries, in registration order."""
        return [entry.handle for entry in self.registry.entries()]

    def _rebuild(self) -> None:
        """Reconstruct the merged index from scratch (``incremental=False``)."""
        lanes = [self._lanes[qid] for qid in sorted(self._lanes)]
        self._merged = MergedDispatchIndex(
            [(lane, lane.dispatch) for lane in lanes], guards=self._guards
        )
        if self._adaptive is not None:
            # A rebuilt index means rebuilt entries: re-derive the adaptive
            # state over them (learning restarts, matching the from-scratch
            # semantics of the ablation path).
            self._adaptive = self._merged.build_adaptive(self._adaptive.config)
            self._merged.adaptive_listener = self._adaptive

    # -------------------------------------------------------------- main loop
    def run(
        self, stream: Iterable[Tuple], collect: bool = True
    ) -> Dict[int, Dict[int, List[Valuation]]]:
        """Process a finite stream; with ``collect`` return outputs per position."""
        results: Dict[int, Dict[int, List[Valuation]]] = {}
        for tup in stream:
            outputs = self.process(tup)
            if collect and outputs:
                results[self.position] = outputs
        return results

    def process(self, tup: Tuple) -> Dict[int, List[Valuation]]:
        """Process one tuple for every registered query.

        Returns ``{query id: [valuations]}`` containing only the queries that
        produced output at this position (route with
        :meth:`QueryHandle.id <QueryHandle>` keys).
        """
        return self._process(tup, sweep=True)

    def process_many(
        self, tuples: Sequence[Tuple]
    ) -> List[Dict[int, List[Valuation]]]:
        """Batched ingestion: one eviction sweep for the whole batch.

        Semantically identical to ``[self.process(t) for t in tuples]`` —
        the deferred-sweep correctness argument is the runtime's
        :meth:`~repro.runtime.StreamRuntime.drive_batch` contract.
        """
        process = self._process
        return self._runtime.drive_batch(
            tuples, lambda tup: process(tup, sweep=False)
        )

    def _process(self, tup: Tuple, sweep: bool) -> Dict[int, List[Valuation]]:
        runtime = self._runtime
        position = runtime.advance()
        stats = runtime.stats if self._count_stats else None
        if stats is not None:
            stats.tuples_processed += 1

        if sweep:
            runtime.sweep(position)

        # FireTransitions over the union of all queries' candidates — one
        # merged lookup, one memoised predicate evaluation per canonical key.
        # The bookkeeping dicts are allocated lazily: on most tuples nothing
        # fires, and the whole per-tuple cost is the candidate loop itself.
        memoise = self.memoise
        # new_nodes buckets hold (node, max_start) pairs: max_start is
        # threaded from the children's cached values (min for extend, max for
        # union — exact by construction / the heap condition), so the shared
        # loop never reads it back through a lane's data structure.
        new_nodes: Optional[Dict[_QueryLane, Dict[int, List[Tup[NodeRef, int]]]]] = None
        final_by_lane: Optional[Dict[_QueryLane, List[NodeRef]]] = None
        adaptive = self._adaptive
        plan = adaptive.plan_for(tup) if adaptive is not None else None
        if plan is not None:
            # Plan mode: one predicate evaluation per group (the memoised
            # path would reach the same count — every group member shares the
            # group's canonical key), members probed in selectivity order.
            # The fired set is evaluation-order-invariant because this phase
            # only reads the hash table; sorting it back into entry order
            # before applying effects keeps extends/unions/enumeration — and
            # therefore outputs and node ids — bit-identical to the static
            # candidate scan.
            if stats is not None:
                groups_n = len(plan.groups)
                stats.transitions_scanned += plan.total
                stats.predicate_evaluations += groups_n
                stats.predicate_cache_hits += plan.total - groups_n
            fired: List[Tup] = []
            for group in plan.groups:
                if not group.unary.holds(tup):
                    continue
                group.rep.hits += 1
                for entry in group.members:
                    lane = entry.owner
                    compiled = entry.compiled
                    hash_table = lane.hash
                    window = lane.window
                    children: List[NodeRef] = []
                    node_ms = position
                    feasible = True
                    for _, source_id, predicate in compiled.joins:
                        key = predicate.right_key(tup)
                        if stats is not None:
                            stats.hash_lookups += 1
                        if key is None:
                            feasible = False
                            break
                        pair = hash_table.get((compiled.index, source_id, key))
                        if pair is None or position - pair[1] > window:
                            feasible = False
                            break
                        children.append(pair[0])
                        if pair[1] < node_ms:
                            node_ms = pair[1]
                    if feasible:
                        fired.append((entry, children, node_ms))
            if len(fired) > 1:
                fired.sort(key=_fired_entry_order)
            for entry, children, node_ms in fired:
                lane = entry.owner
                compiled = entry.compiled
                node = lane.ds.extend(compiled.labels, position, children, node_ms)
                if stats is not None:
                    stats.transitions_fired += 1
                    stats.nodes_created += 1
                if new_nodes is None:
                    new_nodes = {}
                lane_nodes = new_nodes.get(lane)
                if lane_nodes is None:
                    lane_nodes = new_nodes[lane] = {}
                bucket = lane_nodes.get(compiled.target_id)
                if bucket is None:
                    lane_nodes[compiled.target_id] = [(node, node_ms)]
                else:
                    bucket.append((node, node_ms))
                if compiled.is_final:
                    if final_by_lane is None:
                        final_by_lane = {}
                    finals = final_by_lane.get(lane)
                    if finals is None:
                        final_by_lane[lane] = [node]
                    else:
                        finals.append(node)
        else:
            verdicts: Dict[Hashable, bool] = {}
            verdicts_get = verdicts.get
            for entry in self._merged.candidates_for(tup):
                if stats is not None:
                    stats.transitions_scanned += 1
                if memoise:
                    held = verdicts_get(entry.pred_key, _MISS)
                    if held is _MISS:
                        held = entry.unary.holds(tup)
                        verdicts[entry.pred_key] = held
                        if stats is not None:
                            stats.predicate_evaluations += 1
                    elif stats is not None:
                        stats.predicate_cache_hits += 1
                else:
                    held = entry.unary.holds(tup)
                    if stats is not None:
                        stats.predicate_evaluations += 1
                if not held:
                    continue
                lane = entry.owner
                compiled = entry.compiled
                hash_table = lane.hash
                window = lane.window
                children = []
                node_ms = position
                feasible = True
                for _, source_id, predicate in compiled.joins:
                    key = predicate.right_key(tup)  # the current tuple is the later one
                    if stats is not None:
                        stats.hash_lookups += 1
                    if key is None:
                        feasible = False
                        break
                    pair = hash_table.get((compiled.index, source_id, key))
                    if pair is None or position - pair[1] > window:
                        feasible = False
                        break
                    children.append(pair[0])
                    if pair[1] < node_ms:
                        node_ms = pair[1]
                if not feasible:
                    continue
                # node_ms is exactly the max_start extend computes; passing it
                # in lets the arena skip re-reading the child records (the
                # in-window check above certifies the children are live).
                node = lane.ds.extend(compiled.labels, position, children, node_ms)
                if stats is not None:
                    stats.transitions_fired += 1
                    stats.nodes_created += 1
                if new_nodes is None:
                    new_nodes = {}
                lane_nodes = new_nodes.get(lane)
                if lane_nodes is None:
                    lane_nodes = new_nodes[lane] = {}
                bucket = lane_nodes.get(compiled.target_id)
                if bucket is None:
                    lane_nodes[compiled.target_id] = [(node, node_ms)]
                else:
                    bucket.append((node, node_ms))
                if compiled.is_final:
                    if final_by_lane is None:
                        final_by_lane = {}
                    finals = final_by_lane.get(lane)
                    if finals is None:
                        final_by_lane[lane] = [node]
                    else:
                        finals.append(node)

        # UpdateIndices per query that received new runs, registering every
        # stored entry in the runtime's shared expiry-bucket map.
        if new_nodes is not None:
            buckets = runtime.buckets
            for lane, lane_nodes in new_nodes.items():
                hash_table = lane.hash
                ds = lane.ds
                window = lane.window
                add_ref = lane.add_ref
                lane_id = lane.lane_id
                consumers_by_id = lane.dispatch.consumers_by_id
                for state_id, nodes in lane_nodes.items():
                    for compiled, source_id, predicate in consumers_by_id(state_id):
                        key = predicate.left_key(tup)  # this tuple will be the earlier one
                        if key is None:
                            continue
                        entry_key = (compiled.index, source_id, key)
                        pair = hash_table.get(entry_key)
                        if pair is None:
                            entry_node = None
                            entry_ms = -1
                        else:
                            entry_node, entry_ms = pair
                        for node, node_ms in nodes:
                            if stats is not None:
                                stats.hash_updates += 1
                            if entry_node is None:
                                entry_node = node
                                entry_ms = node_ms
                            else:
                                if stats is not None:
                                    stats.unions += 1
                                entry_node = ds.union(entry_node, node, position, node_ms)
                                if node_ms > entry_ms:
                                    entry_ms = node_ms
                        hash_table[entry_key] = (entry_node, entry_ms)
                        # Flat-triple registration (see StreamRuntime.register_entry).
                        expiry_position = entry_ms + window + 1
                        expiry = buckets.get(expiry_position)
                        if expiry is None:
                            buckets[expiry_position] = [lane_id, entry_key, entry_node]
                        else:
                            expiry.append(lane_id)
                            expiry.append(entry_key)
                            expiry.append(entry_node)
                        add_ref(entry_node)

        # Enumeration per query, window-restricted by the query's own DS_w.
        if final_by_lane is None:
            return {}
        outputs: Dict[int, List[Valuation]] = {}
        for lane, finals in final_by_lane.items():
            enumerate_node = lane.ds.enumerate
            valuations: List[Valuation] = []
            extend = valuations.extend
            for node in finals:
                extend(enumerate_node(node, position))
            if valuations:
                outputs[lane.handle.id] = valuations
                if stats is not None:
                    stats.outputs_enumerated += len(valuations)
        return outputs

    # --------------------------------------------------- lane-subset migration
    def extract_queries(self, handles: Sequence[QueryHandle]) -> Dict[str, object]:
        """A lane-subset snapshot of ``handles``'s queries, non-destructively.

        The unit of *query migration*: everything another engine standing at
        the same stream position needs to continue evaluating these queries
        bit-identically — each lane's hash table and enumeration structure
        (refcounts included), the lanes' expiry-bucket triples, the stream
        position, and per-lane dispatch signatures for verification on the
        adopting side (:meth:`adopt_queries`).  This engine is untouched;
        callers migrating a query extract, then :meth:`unregister`, and the
        adopting engine registers the same specification, then adopts.
        """
        lanes = []
        for handle in handles:
            lane = self._lanes.get(handle.id)
            if lane is None:
                raise KeyError(f"no registered query with handle {handle}")
            lanes.append(lane)
        lane_index = {lane.lane_id: index for index, lane in enumerate(lanes)}
        return {
            "snapshot_version": SNAPSHOT_VERSION,
            "kind": PARTIAL_SNAPSHOT_KIND,
            "position": self.position,
            "queries": [
                {"name": lane.handle.name, "window": lane.handle.window}
                for lane in lanes
            ],
            "signatures": [
                stable_signature(lane.dispatch.signature()) for lane in lanes
            ],
            "lanes": [lane.snapshot() for lane in lanes],
            "buckets": self._runtime.extract_bucket_entries(lane_index),
        }

    def adopt_queries(
        self, partial: Dict[str, object], handles: Sequence[QueryHandle]
    ) -> None:
        """Adopt a lane subset extracted by :meth:`extract_queries`.

        ``handles`` name this engine's freshly registered copies of the
        extracted queries, in the extraction order (same specifications, same
        windows — verified structurally through the per-lane dispatch
        signatures before any state is touched).  This engine must stand at
        the *same stream position* as the extracting engine: positions are
        what make the migrated hash entries' window checks and expiry-bucket
        keys mean the same thing on both sides, so continuation drops and
        duplicates nothing.
        """
        check_partial_snapshot(partial)
        queries = partial["queries"]
        if len(handles) != len(queries):
            raise SnapshotError(
                f"partial snapshot holds {len(queries)} queries, "
                f"{len(handles)} adopting handles given"
            )
        if int(partial["position"]) != self.position:
            raise SnapshotError(
                f"partial snapshot was taken at stream position "
                f"{partial['position']}, this engine is at {self.position} "
                "(synchronise the feed before migrating)"
            )
        lanes = []
        for handle in handles:
            lane = self._lanes.get(handle.id)
            if lane is None:
                raise KeyError(f"no registered query with handle {handle}")
            lanes.append(lane)
        # Validate everything up front: a rejected adopt leaves the engine
        # exactly as it was.
        for lane, query, signature, lane_snap in zip(
            lanes, queries, partial["signatures"], partial["lanes"]
        ):
            if getattr(lane.ds, "restore", None) is None:
                raise SnapshotError(
                    "adopt_queries requires arena-backed query lanes "
                    "(construct the engine with arena=True)"
                )
            if lane.window != query["window"] or lane_snap["window"] != lane.window:
                raise SnapshotError(
                    f"query {lane.handle} has window {lane.window}, the "
                    f"extracted lane recorded {query['window']}"
                )
            if stable_signature(lane.dispatch.signature()) != signature:
                raise SnapshotError(
                    f"query {lane.handle} does not match the extracted query "
                    "(dispatch signatures differ)"
                )
        # Pre-check bucket absorbability so a rejected adopt never leaves
        # half-restored lanes behind (absorb itself re-checks).
        swept_upto = self._runtime._swept_upto
        for expiry_position in partial["buckets"]:
            if int(expiry_position) <= swept_upto:
                raise SnapshotError(
                    f"extracted expiry bucket {expiry_position} is already in "
                    f"this engine's past (swept up to {swept_upto})"
                )
        for lane, lane_snap in zip(lanes, partial["lanes"]):
            lane.restore(lane_snap)
        self._runtime.absorb_bucket_entries(partial["buckets"], lanes)

    # ------------------------------------------------------- snapshot protocol
    def _ordered_lanes(self) -> List[_QueryLane]:
        """The active lanes in registration order (the snapshot lane index)."""
        return [self._lanes[entry.handle.id] for entry in self.registry.entries()]

    def snapshot(self) -> Dict[str, object]:
        """The engine's complete evaluation state (see :mod:`repro.runtime.snapshot`).

        Carries the registry's handle table and the merged-index
        ``signature()`` (made process-portable by
        :func:`~repro.runtime.snapshot.stable_signature`) for verification,
        the runtime state, and one lane snapshot per registered query in
        registration order.  Restorable into a fresh engine that registered
        the *same query specifications in the same order* — handle ids are
        remapped from the snapshot, so output routing and later
        registrations continue exactly as in the snapshotted run.
        """
        lanes = self._ordered_lanes()
        lane_index = {lane.lane_id: index for index, lane in enumerate(lanes)}
        return {
            "snapshot_version": SNAPSHOT_VERSION,
            "engine": "multi",
            "registry": self.registry.snapshot(),
            "merged_signature": stable_signature(self._merged.signature()),
            "runtime": self._runtime.snapshot(lane_index),
            "lanes": [lane.snapshot() for lane in lanes],
        }

    def restore(self, snapshot: Dict[str, object]) -> None:
        """Adopt ``snapshot``'s state; processing then continues bit-identically.

        The engine must hold the snapshot's queries (same specifications,
        same registration order, same per-query windows, ``arena=True``) —
        verified structurally through the merged-index signature before any
        state is touched.  Registered handles are rewritten to the
        snapshot's ids/names (see :meth:`QueryRegistry.restore_handles
        <repro.multi.registry.QueryRegistry.restore_handles>`).
        """
        check_snapshot_header(snapshot, "multi")
        lane_snaps = snapshot["lanes"]
        lanes = self._ordered_lanes()
        if len(lanes) != len(lane_snaps):
            raise SnapshotError(
                f"snapshot holds {len(lane_snaps)} query lanes, "
                f"this engine holds {len(lanes)}"
            )
        if stable_signature(self._merged.signature()) != snapshot["merged_signature"]:
            raise SnapshotError(
                "snapshot was taken from an engine with different registered "
                "queries (merged-index signatures differ)"
            )
        # Validate restorability up front: a rejected restore must leave the
        # engine untouched (no remapped handles, no half-restored lanes).
        for lane, lane_snap in zip(lanes, lane_snaps):
            if getattr(lane.ds, "restore", None) is None:
                raise SnapshotError(
                    "restore requires arena-backed query lanes "
                    "(construct the engine with arena=True)"
                )
            if lane_snap["window"] != lane.window:
                raise SnapshotError(
                    f"snapshot lane window {lane_snap['window']} does not match "
                    f"query {lane.handle} (window {lane.window})"
                )
        # Bind every section before mutating: a truncated snapshot raises
        # before any state is touched, never after a half-restore.
        try:
            registry_snap = snapshot["registry"]
            runtime_snap = snapshot["runtime"]
        except KeyError as exc:
            raise SnapshotError(f"snapshot is missing the {exc} section") from exc
        try:
            handles = self.registry.restore_handles(registry_snap)
        except ValueError as exc:
            raise SnapshotError(str(exc)) from exc
        self._lanes = {}
        for handle, lane in zip(handles, lanes):
            lane.handle = handle
            self._lanes[handle.id] = lane
        for lane, lane_snap in zip(lanes, lane_snaps):
            lane.restore(lane_snap)
        self._runtime.restore(runtime_snap, lanes)
        if self._adaptive is not None:
            # Deterministic reset: adaptive learning state is never
            # serialized, so a restored engine re-learns from the stream —
            # identical whether the snapshot came from an adaptive or a
            # static engine.
            self._adaptive.reset()
            self._runtime.arm_adapt(self._adapt_flush, self._adaptive.config.interval)

    # ------------------------------------------------------------ introspection
    # (hash_table_size / memory_info / dispatch_info / observe come from
    # RuntimeBackedEngine; this hook points them at the merged index.)
    def _dispatch_source(self):
        return self._merged

    def _adapt_flush(self, position: int) -> None:
        reorders, promotions, demotions = self._adaptive.flush()
        obs = self._runtime.obs
        if obs is not None and (reorders or promotions or demotions):
            obs.on_dispatch_adapt(reorders, promotions, demotions)

    def reset_statistics(self) -> None:
        self._runtime.reset_statistics()

    def __repr__(self) -> str:
        return (
            f"MultiQueryEngine({len(self._lanes)} queries, position={self.position}, "
            f"|H|={self.hash_table_size()})"
        )
