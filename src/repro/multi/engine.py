"""The multi-query streaming engine: many patterns, one pass per tuple.

:class:`MultiQueryEngine` evaluates every registered query with Algorithm 1
semantics — each query keeps its *own* run-index hash table, enumeration
structure (``DS_w``) and sliding window, so outputs are bit-for-bit identical
to running one :class:`~repro.core.evaluation.StreamingEvaluator` per query —
but the per-tuple work is shared three ways:

* **one dispatch lookup** through the
  :class:`~repro.multi.merged_index.MergedDispatchIndex` returns the candidate
  transitions of all queries at once;
* **one unary-predicate evaluation per canonical key** — structurally
  identical predicates across queries are evaluated once per tuple and the
  verdict is memoised (sound because equal canonical keys imply equal
  extensions);
* **one eviction sweep** over a shared expiry-bucket map keyed by the global
  position at which an entry expires (``max_start + window_q + 1``), covering
  every query's hash table in a single bucket pop per tuple (or one batched
  pop per :meth:`MultiQueryEngine.process_many` call).  The same sweep drives
  each lane's arena reclamation: per-query enumeration structures default to
  the arena-backed :class:`~repro.core.arena.ArenaDataStructure`
  (``arena=False`` for the object-graph ablation), and a popped bucket drops
  the per-slab external references that gate wholesale slab release.

Positions are global to the engine's stream: a query registered at position
``p`` behaves exactly like an independent evaluator that started observing
the stream at ``p`` (its valuations carry global stream positions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple as Tup

from repro.core.arena import ArenaDataStructure
from repro.core.datastructure import DataStructure
from repro.core.evaluation import NodeRef
from repro.cq.schema import Tuple
from repro.multi.merged_index import MergedDispatchIndex
from repro.multi.registry import QueryHandle, QueryRegistry, QuerySpec
from repro.valuation import Valuation


_MISS = object()  # memo-cache sentinel (verdicts are booleans, None won't do)

#: Positions between full arena-release passes over every lane (see
#: :meth:`MultiQueryEngine._release_lanes`).
_RELEASE_PASS_INTERVAL = 256


@dataclass
class MultiQueryStatistics:
    """Operation counters for the shared per-tuple loop (instrumentation)."""

    tuples_processed: int = 0
    candidates_scanned: int = 0
    predicate_evaluations: int = 0
    predicate_cache_hits: int = 0
    transitions_fired: int = 0
    hash_lookups: int = 0
    hash_updates: int = 0
    nodes_created: int = 0
    outputs_enumerated: int = 0


class _QueryLane:
    """Per-query runtime state: isolated tables, shared per-tuple loop."""

    __slots__ = (
        "handle",
        "pcea",
        "dispatch",
        "window",
        "ds",
        "hash",
        "active",
        "add_ref",
        "drop_ref",
        "release",
    )

    def __init__(self, handle: QueryHandle, pcea, arena: bool = True) -> None:
        self.handle = handle
        self.pcea = pcea
        self.dispatch = pcea.dispatch_index()
        self.window = handle.window
        self.ds = ArenaDataStructure(handle.window) if arena else DataStructure(handle.window)
        # Representation-agnostic reclamation hooks (see StreamingEvaluator):
        # bound once so the shared per-tuple loop never branches on the node
        # representation (no-ops for the object graph).
        self.add_ref = self.ds.add_ref
        self.drop_ref = self.ds.drop_ref
        self.release = self.ds.release_expired
        # (transition index, source state id, join key) -> (node, max_start),
        # exactly the single-query evaluator's H (max_start cached in the
        # pair) — isolation keeps Theorem 5.1's unambiguity reasoning per
        # query untouched.
        self.hash: Dict[Tup[int, int, Hashable], Tup[NodeRef, int]] = {}
        self.active = True

    def __repr__(self) -> str:
        return f"_QueryLane({self.handle}, |H|={len(self.hash)})"


class MultiQueryEngine:
    """Evaluate many registered patterns over one stream in a single pass.

    Parameters
    ----------
    registry:
        Optional externally owned :class:`QueryRegistry`; by default the
        engine creates its own.  Queries already present in a supplied
        registry are picked up at construction time.
    memoise:
        With ``True`` (default), unary predicates are evaluated once per
        canonical key per tuple and shared across queries; ``False`` restores
        one evaluation per candidate (ablation / differential testing).
    guards:
        Passed to the merged index: prune constant-guarded candidates by
        value before their predicate runs.
    collect_stats:
        With ``True``, the shared loop maintains
        :class:`MultiQueryStatistics`; off by default (production mode).
    arena:
        With ``True`` (default) each lane's enumeration structure is the
        arena-backed :class:`~repro.core.arena.ArenaDataStructure`, whose
        expired slabs the shared eviction sweep releases wholesale; ``False``
        restores the object-graph ``DS_w`` per lane (ablation / differential
        testing).
    """

    def __init__(
        self,
        registry: Optional[QueryRegistry] = None,
        memoise: bool = True,
        guards: bool = True,
        collect_stats: bool = False,
        arena: bool = True,
    ) -> None:
        self.registry = registry if registry is not None else QueryRegistry()
        self.position = -1
        self.memoise = memoise
        self._guards = guards
        self._arena = arena
        self._count_stats = collect_stats
        self.stats = MultiQueryStatistics()
        self.evicted = 0
        self._lanes: Dict[int, _QueryLane] = {}
        # Shared eviction buckets: expiry position -> [(lane, hash key, node)].
        # An entry stored with node n under lane q expires exactly at global
        # position max_start(n) + q.window + 1, so one bucket pop per position
        # sweeps every lane's table; the registered node rides along so the
        # sweep can drop the arena's per-slab external reference exactly once.
        self._expiry_buckets: Dict[
            int, List[Tup[_QueryLane, Tup[int, int, Hashable], NodeRef]]
        ] = {}
        # Highest expiry position already swept (entries always register in
        # strictly future buckets, so the batched sweep can pop the dense
        # range of newly due positions instead of scanning every bucket key).
        self._swept_upto = -1
        # Next position at which the sweep runs a full arena-release pass
        # over every lane (bucket pops only release the lanes they touch).
        self._next_release_pass = 0
        self._merged = MergedDispatchIndex((), guards=guards)
        for entry in self.registry.entries():
            self._lanes[entry.handle.id] = _QueryLane(entry.handle, entry.pcea, arena)
        self._rebuild()

    # ----------------------------------------------------------- registration
    def register(
        self, query: QuerySpec, window: int, name: Optional[str] = None
    ) -> QueryHandle:
        """Register a query mid-stream; it starts observing at the next tuple."""
        handle = self.registry.register(query, window, name)
        self._lanes[handle.id] = _QueryLane(
            handle, self.registry.get(handle).pcea, self._arena
        )
        self._rebuild()
        return handle

    def unregister(self, handle: QueryHandle) -> None:
        """Drop a query; its state is discarded and outputs stop immediately."""
        self.registry.unregister(handle)
        lane = self._lanes.pop(handle.id)
        # Stale expiry-bucket entries still reference the lane; the sweep
        # skips inactive lanes instead of scrubbing every bucket eagerly.
        # Dropping the lane's state here (not at bucket expiry, up to a full
        # window later) releases the query's enumeration structure and
        # automaton immediately.
        lane.active = False
        lane.hash.clear()
        lane.ds = None
        lane.dispatch = None
        lane.pcea = None
        # The hooks are bound methods and would otherwise pin the lane's
        # enumeration structure until its last expiry bucket is popped.
        lane.add_ref = None
        lane.drop_ref = None
        lane.release = None
        self._rebuild()

    def handles(self) -> List[QueryHandle]:
        """Handles of the registered queries, in registration order."""
        return [entry.handle for entry in self.registry.entries()]

    def _rebuild(self) -> None:
        lanes = [self._lanes[qid] for qid in sorted(self._lanes)]
        self._merged = MergedDispatchIndex(
            [(lane, lane.dispatch) for lane in lanes], guards=self._guards
        )

    # -------------------------------------------------------------- main loop
    def run(
        self, stream: Iterable[Tuple], collect: bool = True
    ) -> Dict[int, Dict[int, List[Valuation]]]:
        """Process a finite stream; with ``collect`` return outputs per position."""
        results: Dict[int, Dict[int, List[Valuation]]] = {}
        for tup in stream:
            outputs = self.process(tup)
            if collect and outputs:
                results[self.position] = outputs
        return results

    def process(self, tup: Tuple) -> Dict[int, List[Valuation]]:
        """Process one tuple for every registered query.

        Returns ``{query id: [valuations]}`` containing only the queries that
        produced output at this position (route with
        :meth:`QueryHandle.id <QueryHandle>` keys).
        """
        return self._process(tup, sweep=True)

    def process_many(
        self, tuples: Sequence[Tuple]
    ) -> List[Dict[int, List[Valuation]]]:
        """Batched ingestion: one eviction sweep for the whole batch.

        Semantically identical to ``[self.process(t) for t in tuples]`` —
        expiry is re-checked at every hash lookup, so deferring the sweep to
        the end of the batch only delays memory reclamation, never changes
        outputs.
        """
        process = self._process
        results = [process(tup, sweep=False) for tup in tuples]
        self._sweep_expired_upto(self.position)
        return results

    def _process(self, tup: Tuple, sweep: bool) -> Dict[int, List[Valuation]]:
        self.position += 1
        position = self.position
        stats = self.stats if self._count_stats else None
        if stats is not None:
            stats.tuples_processed += 1

        if sweep:
            if position == self._swept_upto + 1:
                # Steady state: exactly one new bucket became due.
                self._swept_upto = position
                expired = self._expiry_buckets.pop(position, None)
                if expired:
                    evicted = 0
                    touched = set()
                    for lane, key, registered in expired:
                        if not lane.active:
                            continue
                        lane.drop_ref(registered)
                        touched.add(lane)
                        pair = lane.hash.get(key)
                        if pair is not None and position - pair[1] > lane.window:
                            del lane.hash[key]
                            evicted += 1
                    self.evicted += evicted
                    for lane in touched:
                        lane.release(position)
                if position >= self._next_release_pass:
                    self._release_lanes(position)
            elif position > self._swept_upto:
                # A gap (batch processed without its final sweep): cover the
                # whole overdue range so no bucket is skipped for good.
                self._sweep_expired_upto(position)

        # FireTransitions over the union of all queries' candidates — one
        # merged lookup, one memoised predicate evaluation per canonical key.
        # The bookkeeping dicts are allocated lazily: on most tuples nothing
        # fires, and the whole per-tuple cost is the candidate loop itself.
        memoise = self.memoise
        verdicts: Dict[Hashable, bool] = {}
        verdicts_get = verdicts.get
        # new_nodes buckets hold (node, max_start) pairs: max_start is
        # threaded from the children's cached values (min for extend, max for
        # union — exact by construction / the heap condition), so the shared
        # loop never reads it back through a lane's data structure.
        new_nodes: Optional[Dict[_QueryLane, Dict[int, List[Tup[NodeRef, int]]]]] = None
        final_by_lane: Optional[Dict[_QueryLane, List[NodeRef]]] = None
        for entry in self._merged.candidates_for(tup):
            if stats is not None:
                stats.candidates_scanned += 1
            if memoise:
                held = verdicts_get(entry.pred_key, _MISS)
                if held is _MISS:
                    held = entry.unary.holds(tup)
                    verdicts[entry.pred_key] = held
                    if stats is not None:
                        stats.predicate_evaluations += 1
                elif stats is not None:
                    stats.predicate_cache_hits += 1
            else:
                held = entry.unary.holds(tup)
                if stats is not None:
                    stats.predicate_evaluations += 1
            if not held:
                continue
            lane = entry.owner
            compiled = entry.compiled
            hash_table = lane.hash
            window = lane.window
            children: List[NodeRef] = []
            node_ms = position
            feasible = True
            for _, source_id, predicate in compiled.joins:
                key = predicate.right_key(tup)  # the current tuple is the later one
                if stats is not None:
                    stats.hash_lookups += 1
                if key is None:
                    feasible = False
                    break
                pair = hash_table.get((compiled.index, source_id, key))
                if pair is None or position - pair[1] > window:
                    feasible = False
                    break
                children.append(pair[0])
                if pair[1] < node_ms:
                    node_ms = pair[1]
            if not feasible:
                continue
            node = lane.ds.extend(compiled.labels, position, children)
            if stats is not None:
                stats.transitions_fired += 1
                stats.nodes_created += 1
            if new_nodes is None:
                new_nodes = {}
            lane_nodes = new_nodes.get(lane)
            if lane_nodes is None:
                lane_nodes = new_nodes[lane] = {}
            bucket = lane_nodes.get(compiled.target_id)
            if bucket is None:
                lane_nodes[compiled.target_id] = [(node, node_ms)]
            else:
                bucket.append((node, node_ms))
            if compiled.is_final:
                if final_by_lane is None:
                    final_by_lane = {}
                finals = final_by_lane.get(lane)
                if finals is None:
                    final_by_lane[lane] = [node]
                else:
                    finals.append(node)

        # UpdateIndices per query that received new runs, registering every
        # stored entry in the shared expiry-bucket map.
        if new_nodes is not None:
            buckets = self._expiry_buckets
            for lane, lane_nodes in new_nodes.items():
                hash_table = lane.hash
                ds = lane.ds
                window = lane.window
                add_ref = lane.add_ref
                consumers_by_id = lane.dispatch.consumers_by_id
                for state_id, nodes in lane_nodes.items():
                    for compiled, source_id, predicate in consumers_by_id(state_id):
                        key = predicate.left_key(tup)  # this tuple will be the earlier one
                        if key is None:
                            continue
                        entry_key = (compiled.index, source_id, key)
                        pair = hash_table.get(entry_key)
                        if pair is None:
                            entry_node = None
                            entry_ms = -1
                        else:
                            entry_node, entry_ms = pair
                        for node, node_ms in nodes:
                            if stats is not None:
                                stats.hash_updates += 1
                            if entry_node is None:
                                entry_node = node
                                entry_ms = node_ms
                            else:
                                entry_node = ds.union(entry_node, node)
                                if node_ms > entry_ms:
                                    entry_ms = node_ms
                        hash_table[entry_key] = (entry_node, entry_ms)
                        expiry_position = entry_ms + window + 1
                        expiry = buckets.get(expiry_position)
                        if expiry is None:
                            buckets[expiry_position] = [(lane, entry_key, entry_node)]
                        else:
                            expiry.append((lane, entry_key, entry_node))
                        add_ref(entry_node)

        # Enumeration per query, window-restricted by the query's own DS_w.
        if final_by_lane is None:
            return {}
        outputs: Dict[int, List[Valuation]] = {}
        for lane, finals in final_by_lane.items():
            enumerate_node = lane.ds.enumerate
            valuations: List[Valuation] = []
            extend = valuations.extend
            for node in finals:
                extend(enumerate_node(node, position))
            if valuations:
                outputs[lane.handle.id] = valuations
                if stats is not None:
                    stats.outputs_enumerated += len(valuations)
        return outputs

    def _sweep_expired_upto(self, position: int) -> None:
        """Pop every expiry bucket due at or before ``position`` (batch sweep).

        Iterates the dense range of positions not yet swept, so the cost is
        O(positions advanced since the last sweep), not O(live buckets).
        """
        if position <= self._swept_upto:
            return
        buckets = self._expiry_buckets
        evicted = 0
        touched = set()
        for bucket in range(self._swept_upto + 1, position + 1):
            expired = buckets.pop(bucket, None)
            if not expired:
                continue
            for lane, key, registered in expired:
                if not lane.active:
                    continue
                lane.drop_ref(registered)
                touched.add(lane)
                pair = lane.hash.get(key)
                if pair is not None and position - pair[1] > lane.window:
                    del lane.hash[key]
                    evicted += 1
        self._swept_upto = position
        self.evicted += evicted
        for lane in touched:
            lane.release(position)
        if position >= self._next_release_pass:
            self._release_lanes(position)

    def _release_lanes(self, position: int) -> None:
        """Release expired arena slabs in every active lane.

        Bucket pops release the lanes they touch immediately; this periodic
        full pass (every ``_RELEASE_PASS_INTERVAL`` positions, O(lanes)
        amortised O(lanes/interval) per tuple) covers lanes that stopped
        registering hash entries — without it an idle lane would retain its
        last ``O(window)`` of expired slabs indefinitely.
        """
        self._next_release_pass = position + _RELEASE_PASS_INTERVAL
        for lane in self._lanes.values():
            if lane.active:
                lane.release(position)

    # ------------------------------------------------------------ introspection
    def hash_table_size(self) -> int:
        """Total entries across every registered query's hash table."""
        return sum(len(lane.hash) for lane in self._lanes.values())

    def memory_info(self) -> Dict[str, int]:
        """Enumeration-structure occupancy summed across the active lanes."""
        total = {
            "arena": 1 if self._arena else 0,
            "slabs": 0,
            "slab_capacity": 0,
            "live_nodes": 0,
            "released_slabs": 0,
            "released_nodes": 0,
            "nodes_created": 0,
        }
        for lane in self._lanes.values():
            if lane.ds is None:
                continue
            stats = lane.ds.memory_stats()
            for key in ("slabs", "live_nodes", "released_slabs", "released_nodes", "nodes_created"):
                total[key] += stats[key]
            total["slab_capacity"] = max(total["slab_capacity"], stats["slab_capacity"])
        return total

    def dispatch_info(self) -> Dict[str, float]:
        """Merged-index statistics (see ``MergedDispatchIndex.describe``)."""
        return self._merged.describe()

    def reset_statistics(self) -> None:
        self.stats = MultiQueryStatistics()

    def __repr__(self) -> str:
        return (
            f"MultiQueryEngine({len(self._lanes)} queries, position={self.position}, "
            f"|H|={self.hash_table_size()})"
        )
