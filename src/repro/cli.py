"""Command-line interface: evaluate a hierarchical CQ or a chain pattern over a
CSV event stream.

The CLI is a thin veneer over the library, intended for quick experiments::

    repro-cer --query "Q(x, y) <- T(x), S(x, y), R(x, y)" --window 100 events.csv
    python -m repro.cli --query "..." --window 50 --limit 10000 events.csv

Input format: one event per line, ``relation,value,value,...``.  Values are
parsed as integers when possible and kept as strings otherwise.  Matches are
printed one per line as ``position <TAB> atom0=pos,atom1=pos,...``; pass
``--quiet`` to print only the final summary (events, matches, wall-clock).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Iterable, Iterator, List, Optional, Sequence, TextIO

from repro.core.evaluation import StreamingEvaluator
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.cq.hierarchical import NotHierarchicalError, is_hierarchical
from repro.cq.query import parse_query
from repro.cq.schema import Tuple
from repro.valuation import Valuation


def parse_event_line(line: str, separator: str = ",") -> Optional[Tuple]:
    """Parse one ``relation,value,...`` line into a tuple (``None`` for blanks/comments)."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    parts = [part.strip() for part in line.split(separator)]
    relation, raw_values = parts[0], parts[1:]
    values = []
    for raw in raw_values:
        try:
            values.append(int(raw))
        except ValueError:
            values.append(raw)
    if not relation:
        raise ValueError(f"event line without a relation name: {line!r}")
    return Tuple(relation, tuple(values))


def read_events(lines: Iterable[str], separator: str = ",") -> Iterator[Tuple]:
    """Yield events from an iterable of CSV lines, skipping blanks and comments."""
    for line in lines:
        event = parse_event_line(line, separator)
        if event is not None:
            yield event


def format_match(position: int, valuation: Valuation) -> str:
    """Render one match as ``position <TAB> label=pos,...`` (labels sorted)."""
    body = ",".join(
        f"{label}={min(positions)}"
        for label, positions in sorted(valuation.items(), key=lambda kv: str(kv[0]))
    )
    return f"{position}\t{body}"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cer",
        description="Evaluate a hierarchical conjunctive query over a CSV event stream "
        "with the streaming PCEA engine (logarithmic update time, output-linear delay).",
    )
    parser.add_argument(
        "stream",
        nargs="?",
        help="path to the CSV event file (defaults to standard input)",
    )
    parser.add_argument(
        "--query",
        required=True,
        help='the query, e.g. "Q(x, y) <- T(x), S(x, y), R(x, y)"',
    )
    parser.add_argument("--window", type=int, default=1000, help="sliding window size (default 1000)")
    parser.add_argument("--separator", default=",", help="value separator in the event file")
    parser.add_argument("--limit", type=int, default=None, help="stop after this many events")
    parser.add_argument("--quiet", action="store_true", help="print only the final summary")
    parser.add_argument(
        "--no-index",
        action="store_true",
        help="disable the transition dispatch index (scan every transition per event)",
    )
    parser.add_argument(
        "--no-evict",
        action="store_true",
        help="disable hash-table eviction (memory grows with the stream, not the window)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="also print the engine's operation counters after the summary",
    )
    return parser


def run(args: argparse.Namespace, events: Iterable[Tuple], output: TextIO) -> int:
    """Evaluate the query over the events, writing matches to ``output``."""
    try:
        query = parse_query(args.query)
    except ValueError as exc:
        print(f"error: cannot parse query: {exc}", file=sys.stderr)
        return 2
    if not is_hierarchical(query):
        print(
            "error: the query is not hierarchical; only hierarchical conjunctive queries "
            "admit the constant-delay streaming evaluation of the paper",
            file=sys.stderr,
        )
        return 2
    try:
        pcea = hcq_to_pcea(query)
    except NotHierarchicalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    engine = StreamingEvaluator(
        pcea,
        window=args.window,
        indexed=not args.no_index,
        evict=not args.no_evict,
        collect_stats=args.stats,
    )
    matches = 0
    events_seen = 0
    start = time.perf_counter()
    for event in events:
        if args.limit is not None and events_seen >= args.limit:
            break
        events_seen += 1
        for valuation in engine.process(event):
            matches += 1
            if not args.quiet:
                print(format_match(engine.position, valuation), file=output)
    elapsed = time.perf_counter() - start
    rate = events_seen / elapsed if elapsed > 0 else float("inf")
    print(
        f"# events={events_seen} matches={matches} seconds={elapsed:.3f} events/s={rate:.0f} "
        f"hash_entries={engine.hash_table_size()} evicted={engine.evicted}",
        file=output,
    )
    if args.stats:
        stats = engine.stats
        info = engine.dispatch_info()
        print(
            f"# scanned={stats.transitions_scanned} fired={stats.transitions_fired} "
            f"lookups={stats.hash_lookups} updates={stats.hash_updates} "
            f"unions={stats.unions} nodes={stats.nodes_created} "
            f"outputs={stats.outputs_enumerated}",
            file=output,
        )
        print(
            f"# dispatch: transitions={info['transitions']:.0f} relations={info['relations']:.0f} "
            f"wildcards={info['wildcard_transitions']:.0f} "
            f"mean_candidates={info['mean_candidates']:.2f}",
            file=output,
        )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.stream:
        with open(args.stream, "r", encoding="utf-8") as handle:
            events = list(read_events(handle, args.separator))
    else:
        events = read_events(sys.stdin, args.separator)
    return run(args, events, sys.stdout)


if __name__ == "__main__":
    sys.exit(main())
