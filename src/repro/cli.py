"""Command-line interface: evaluate hierarchical CQs over a CSV event stream.

The CLI is a thin veneer over the library, intended for quick experiments::

    repro-cer --query "Q(x, y) <- T(x), S(x, y), R(x, y)" --window 100 events.csv
    python -m repro.cli --query "..." --window 50 --limit 10000 events.csv
    python -m repro.cli multi --query "Q1(x) <- A(x), B(x)" \\
        --query "Q2(x, y) <- A(x), C(x, y)" --window 100 events.csv

The ``multi`` subcommand registers every ``--query`` with the shared
:class:`~repro.multi.engine.MultiQueryEngine` (one dispatch lookup and one
predicate evaluation per structurally distinct predicate per event, instead of
one engine per query); matches are prefixed with the query name.  The
``--general`` flag on the single-query mode evaluates through the
:class:`~repro.extensions.general_evaluation.GeneralStreamingEvaluator` (live
runs scanned per transition — the engine that also accepts non-equality
predicates), producing identical matches on equality queries.  All modes
accept ``--batch-size`` to feed events through the batched ``process_many``
ingestion path, ``--no-arena`` to swap the arena-backed enumeration structure
for the object-graph ablation, and ``--stats`` to print an identical
three-line report — unified operation counters, dispatch-index summary, and a
memory section (``arena_slabs`` / ``arena_live_nodes`` / ``arena_released``)
mirroring ``hash_entries``/``evicted`` — regardless of the engine mode.

Checkpointing: ``--checkpoint PATH`` writes the engine's complete evaluation
state (the cross-layer snapshot of :mod:`repro.runtime.snapshot`, tagged-JSON
text) after the run's events are consumed; ``--restore PATH`` loads such a
checkpoint before processing, so a stream can be split across invocations —
or processes — with outputs, positions, and ``--stats`` counters
bit-identical to one uninterrupted run.  The restoring invocation must pass
the same ``--query`` (same queries in the same order for ``multi``) and
window; mismatches are rejected through the snapshot's dispatch signature.

Observability: every mode accepts ``--metrics-file PATH`` (Prometheus text
exposition of the run's counters, gauges and latency histograms),
``--trace PATH`` (ring-buffered structured spans — Chrome ``trace_event``
JSON loadable in Perfetto, or JSON-lines with a ``.jsonl`` path; sampling
period via ``--trace-sample N``) and ``--stats-interval N`` (a ``# interval``
stats line every N events, mid-stream).  All of them attach a
:class:`repro.obs.Observer`; without them the engine runs the plain
uninstrumented hot path.

Input format: one event per line, ``relation,value,value,...``.  Values are
parsed as integers when possible and kept as strings otherwise.  Matches are
printed one per line as ``position <TAB> atom0=pos,atom1=pos,...``; pass
``--quiet`` to print only the final summary (events, matches, wall-clock).
"""

from __future__ import annotations

import argparse
import sys
import time
from itertools import islice
from typing import Iterable, Iterator, List, Optional, Sequence, TextIO

from repro.core.evaluation import NotEqualityPredicateError, StreamingEvaluator
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.extensions.general_evaluation import GeneralStreamingEvaluator
from repro.cq.hierarchical import NotHierarchicalError, is_hierarchical
from repro.cq.query import parse_query
from repro.cq.schema import Tuple
from repro.runtime import snapshot as checkpointing
from repro.valuation import Valuation


def _restore_engine(engine, path: str) -> bool:
    """Load the checkpoint at ``path`` into ``engine`` (False on failure).

    ``KeyError``/``TypeError`` cover hand-edited or truncated checkpoint
    files whose tree parses but is not a valid snapshot.
    """
    try:
        engine.restore(checkpointing.load(path))
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"error: cannot restore checkpoint {path}: {exc!r}", file=sys.stderr)
        return False
    return True


def _write_checkpoint(engine, path: str) -> bool:
    """Write ``engine``'s snapshot to ``path`` (False on failure)."""
    try:
        checkpointing.save(path, engine.snapshot())
    except (OSError, ValueError) as exc:
        print(f"error: cannot write checkpoint {path}: {exc}", file=sys.stderr)
        return False
    return True


def parse_event_line(line: str, separator: str = ",") -> Optional[Tuple]:
    """Parse one ``relation,value,...`` line into a tuple (``None`` for blanks/comments)."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    parts = [part.strip() for part in line.split(separator)]
    relation, raw_values = parts[0], parts[1:]
    values = []
    for raw in raw_values:
        try:
            values.append(int(raw))
        except ValueError:
            values.append(raw)
    if not relation:
        raise ValueError(f"event line without a relation name: {line!r}")
    return Tuple(relation, tuple(values))


def read_events(lines: Iterable[str], separator: str = ",") -> Iterator[Tuple]:
    """Yield events from an iterable of CSV lines, skipping blanks and comments."""
    for line in lines:
        event = parse_event_line(line, separator)
        if event is not None:
            yield event


def format_match(position: int, valuation: Valuation) -> str:
    """Render one match as ``position <TAB> label=pos,...`` (labels sorted)."""
    body = ",".join(
        f"{label}={min(positions)}"
        for label, positions in sorted(valuation.items(), key=lambda kv: str(kv[0]))
    )
    return f"{position}\t{body}"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cer",
        description="Evaluate a hierarchical conjunctive query over a CSV event stream "
        "with the streaming PCEA engine (logarithmic update time, output-linear delay). "
        "The literal first argument 'multi' selects the multi-query subcommand "
        "(several --query patterns, one shared engine); for an event file actually "
        "named 'multi', pass it as './multi'.",
    )
    parser.add_argument(
        "stream",
        nargs="?",
        help="path to the CSV event file (defaults to standard input)",
    )
    parser.add_argument(
        "--query",
        required=True,
        help='the query, e.g. "Q(x, y) <- T(x), S(x, y), R(x, y)"',
    )
    parser.add_argument("--window", type=int, default=1000, help="sliding window size (default 1000)")
    parser.add_argument("--separator", default=",", help="value separator in the event file")
    parser.add_argument("--limit", type=int, default=None, help="stop after this many events")
    parser.add_argument("--quiet", action="store_true", help="print only the final summary")
    parser.add_argument(
        "--no-index",
        action="store_true",
        help="disable the transition dispatch index (scan every transition per event)",
    )
    parser.add_argument(
        "--no-evict",
        action="store_true",
        help="disable hash-table eviction (memory grows with the stream, not the window)",
    )
    parser.add_argument(
        "--no-arena",
        action="store_true",
        help="use the object-graph enumeration structure instead of the arena "
        "(ablation; no slab reclamation)",
    )
    parser.add_argument(
        "--no-columnar",
        action="store_true",
        help="use list-backed arena slabs instead of the packed columnar records "
        "(trades ~2x resident state for slightly faster per-event updates)",
    )
    parser.add_argument(
        "--kernel",
        choices=("auto", "python", "native"),
        default=None,
        help="record-operation backend for the arena hot path (default: the "
        "REPRO_KERNEL environment variable, then auto-detection of the "
        "optional native C kernel; --stats reports which backend ran)",
    )
    parser.add_argument(
        "--general",
        action="store_true",
        help="evaluate with the general (non-hashed) engine that scans live "
        "runs per transition; identical matches, linear-in-data update cost",
    )
    _add_adaptive_arguments(parser)
    parser.add_argument(
        "--stats",
        action="store_true",
        help="also print the engine's operation counters after the summary",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=0,
        metavar="N",
        help="feed events through the batched process_many path, N events per batch "
        "(0 = per-event processing)",
    )
    _add_checkpoint_arguments(parser)
    return parser


def _add_adaptive_arguments(parser: argparse.ArgumentParser) -> None:
    """The adaptive-dispatch toggle, identical on every engine mode."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--adaptive",
        dest="adaptive",
        action="store_true",
        help="adaptive selectivity-driven dispatch (the default): runtime hit "
        "counters reorder candidate evaluation and promote hot constant "
        "guards; matches are bit-identical to the static path",
    )
    group.add_argument(
        "--no-adaptive",
        dest="adaptive",
        action="store_false",
        help="freeze the compile-time dispatch order (the static ablation "
        "oracle --adaptive is differentially tested against)",
    )
    parser.set_defaults(adaptive=True)


def _add_checkpoint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="after processing, write the engine's complete state to PATH "
        "(restore it with --restore to continue the stream bit-identically)",
    )
    parser.add_argument(
        "--restore",
        metavar="PATH",
        help="before processing, restore the engine state checkpointed at PATH "
        "(requires the same query/queries and window as the checkpointing run)",
    )
    _add_observability_arguments(parser)


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``repro.obs`` surfaces, identical on every engine mode."""
    parser.add_argument(
        "--metrics-file",
        metavar="PATH",
        help="after processing, write the run's metrics (counters, gauges, "
        "latency histograms) to PATH in the Prometheus text format",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="record structured spans (sampled tuples, sweeps, batches, "
        "checkpoint/restore) and write them to PATH — Chrome trace_event "
        "JSON loadable in Perfetto, or JSON-lines when PATH ends in .jsonl",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=None,
        metavar="N",
        help="time every Nth event (1 = every event; default 64); applies to "
        "the per-event latency histogram and the per-event trace spans",
    )
    parser.add_argument(
        "--stats-interval",
        type=int,
        default=0,
        metavar="N",
        help="print a '# interval ...' stats line every N events (mid-stream, "
        "not just at exit; includes sampled update percentiles when "
        "--metrics-file/--trace is active)",
    )


def _setup_observability(args: argparse.Namespace, engine):
    """Attach an Observer when any ``repro.obs`` flag asks for one.

    Returns the observer (or ``None`` when no flag was given); raises
    ``ValueError`` on a bad ``--trace-sample``.  Attaching before ``--restore``
    and query registration means restore and index-patch spans land in the
    trace.
    """
    metrics_file = getattr(args, "metrics_file", None)
    trace_path = getattr(args, "trace", None)
    interval = getattr(args, "stats_interval", 0) or 0
    sample = getattr(args, "trace_sample", None)
    if not metrics_file and not trace_path and not interval and sample is None:
        return None
    from repro.obs import DEFAULT_SAMPLE_EVERY, Observer, TraceRecorder

    recorder = (
        TraceRecorder(sample_every=sample if sample is not None else DEFAULT_SAMPLE_EVERY)
        if trace_path
        else None
    )
    observer = Observer(trace=recorder, sample_every=sample)
    engine.attach_observer(observer)
    return observer


def _finish_observability(
    args: argparse.Namespace, observer, output: TextIO
) -> bool:
    """Write the ``--metrics-file`` / ``--trace`` exports (False on failure).

    Runs after ``--checkpoint`` so a checkpointing run's trace contains its
    checkpoint span.
    """
    if observer is None:
        return True
    ok = True
    metrics_file = getattr(args, "metrics_file", None)
    if metrics_file:
        try:
            observer.export_metrics(metrics_file)
        except OSError as exc:
            print(f"error: cannot write metrics file {metrics_file}: {exc}", file=sys.stderr)
            ok = False
        else:
            print(
                f"# metrics: wrote {metrics_file} ({len(observer.metrics)} series)",
                file=output,
            )
    trace_path = getattr(args, "trace", None)
    if trace_path:
        try:
            spans = observer.export_trace(trace_path)
        except OSError as exc:
            print(f"error: cannot write trace file {trace_path}: {exc}", file=sys.stderr)
            ok = False
        else:
            print(
                f"# trace: wrote {trace_path} ({spans} spans, "
                f"{observer.trace.dropped} dropped)",
                file=output,
            )
    return ok


def _emit_interval_stats(engine, observer, events_seen: int, start: float, output: TextIO) -> None:
    """One ``--stats-interval`` report line (and a gauge refresh, so the
    exported metrics carry a mid-stream time series, not just the exit state)."""
    elapsed = time.perf_counter() - start
    rate = events_seen / elapsed if elapsed > 0 else float("inf")
    line = (
        f"# interval events={events_seen} position={engine.position} "
        f"hash_entries={engine.hash_table_size()} evicted={engine.evicted} "
        f"events/s={rate:.0f}"
    )
    if observer is not None:
        observer.observe_engine(engine)
        hist = observer.metrics.histogram("repro_update_seconds")
        if hist.count:
            line += (
                f" update_p50={hist.quantile(0.5):.3g}"
                f" update_p99={hist.quantile(0.99):.3g}"
            )
    print(line, file=output)


def build_multi_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cer multi",
        description="Evaluate several hierarchical conjunctive queries over one CSV "
        "event stream with the shared multi-query engine (merged dispatch index, "
        "memoised predicates, per-query windows).",
    )
    parser.add_argument(
        "stream",
        nargs="?",
        help="path to the CSV event file (defaults to standard input)",
    )
    parser.add_argument(
        "--query",
        action="append",
        required=True,
        dest="queries",
        metavar="QUERY",
        help="a query to register (repeatable), e.g. \"Q(x, y) <- T(x), S(x, y)\"",
    )
    parser.add_argument(
        "--window",
        type=int,
        action="append",
        dest="windows",
        metavar="W",
        help="sliding window size; give once for all queries or once per query "
        "(default 1000)",
    )
    parser.add_argument("--separator", default=",", help="value separator in the event file")
    parser.add_argument("--limit", type=int, default=None, help="stop after this many events")
    parser.add_argument("--quiet", action="store_true", help="print only the final summary")
    parser.add_argument(
        "--batch-size",
        type=int,
        default=0,
        metavar="N",
        help="feed events through the batched process_many path, N events per batch "
        "(0 = per-event processing)",
    )
    parser.add_argument(
        "--no-memoise",
        action="store_true",
        help="disable shared unary-predicate memoisation (evaluate once per query)",
    )
    parser.add_argument(
        "--no-arena",
        action="store_true",
        help="use object-graph enumeration structures instead of per-query arenas "
        "(ablation; no slab reclamation)",
    )
    parser.add_argument(
        "--no-columnar",
        action="store_true",
        help="use list-backed arena slabs instead of the packed columnar records "
        "(trades ~2x resident state for slightly faster per-event updates)",
    )
    parser.add_argument(
        "--kernel",
        choices=("auto", "python", "native"),
        default=None,
        help="record-operation backend for every lane's arena hot path "
        "(default: the REPRO_KERNEL environment variable, then auto-detection "
        "of the optional native C kernel)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="also print the shared engine's counters and merged-index statistics",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="shard the queries across N worker processes (repro.shard); matches "
        "are identical to the shared single-process engine, per-event work is "
        "divided across the workers (0 = in-process engine; implies "
        "--batch-size 256 unless given)",
    )
    parser.add_argument(
        "--start-method",
        choices=("spawn", "fork", "forkserver", "inline"),
        default="spawn",
        help="how --workers processes start (default spawn; 'inline' runs the "
        "shards in-process behind the same frame protocol, for debugging)",
    )
    _add_adaptive_arguments(parser)
    _add_checkpoint_arguments(parser)
    return parser


def run(args: argparse.Namespace, events: Iterable[Tuple], output: TextIO) -> int:
    """Evaluate the query over the events, writing matches to ``output``."""
    try:
        query = parse_query(args.query)
    except ValueError as exc:
        print(f"error: cannot parse query: {exc}", file=sys.stderr)
        return 2
    if not is_hierarchical(query):
        print(
            "error: the query is not hierarchical; only hierarchical conjunctive queries "
            "admit the constant-delay streaming evaluation of the paper",
            file=sys.stderr,
        )
        return 2
    try:
        pcea = hcq_to_pcea(query)
    except NotHierarchicalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    conflict = _kernel_conflict(args)
    if conflict:
        print(f"error: {conflict}", file=sys.stderr)
        return 2
    try:
        if getattr(args, "general", False):
            if args.no_evict:
                print(
                    "warning: --no-evict has no effect in --general mode (the general "
                    "engine always evicts expired runs)",
                    file=sys.stderr,
                )
            engine = GeneralStreamingEvaluator(
                pcea,
                window=args.window,
                indexed=not args.no_index,
                arena=not args.no_arena,
                columnar=not args.no_columnar,
                collect_stats=args.stats,
                kernel=args.kernel,
                adaptive=args.adaptive,
            )
        else:
            engine = StreamingEvaluator(
                pcea,
                window=args.window,
                indexed=not args.no_index,
                evict=not args.no_evict,
                collect_stats=args.stats,
                arena=not args.no_arena,
                columnar=not args.no_columnar,
                kernel=args.kernel,
                adaptive=args.adaptive,
            )
    except ValueError as exc:
        # e.g. --kernel native on an installation without the built extension
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if getattr(args, "checkpoint", None) and args.no_arena:
        # Fail fast: checkpointing needs the arena-backed structure, and
        # finding that out only after the whole stream ran would waste it.
        print(
            "error: --checkpoint requires the arena-backed enumeration "
            "structure (drop --no-arena)",
            file=sys.stderr,
        )
        return 2
    try:
        observer = _setup_observability(args, engine)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if getattr(args, "restore", None) and not _restore_engine(engine, args.restore):
        return 2
    batch_size = getattr(args, "batch_size", 0) or 0
    interval = getattr(args, "stats_interval", 0) or 0
    next_report = interval if interval else None
    matches = 0
    events_seen = 0
    start = time.perf_counter()
    if batch_size > 0:
        for batch in _batched(islice(events, args.limit), batch_size):
            events_seen += len(batch)
            base_position = engine.position + 1
            for offset, valuations in enumerate(engine.process_many(batch)):
                for valuation in valuations:
                    matches += 1
                    if not args.quiet:
                        print(format_match(base_position + offset, valuation), file=output)
            if next_report is not None and events_seen >= next_report:
                _emit_interval_stats(engine, observer, events_seen, start, output)
                while next_report <= events_seen:
                    next_report += interval
    else:
        for event in islice(events, args.limit):
            events_seen += 1
            for valuation in engine.process(event):
                matches += 1
                if not args.quiet:
                    print(format_match(engine.position, valuation), file=output)
            if next_report is not None and events_seen >= next_report:
                _emit_interval_stats(engine, observer, events_seen, start, output)
                next_report += interval
    elapsed = time.perf_counter() - start
    rate = events_seen / elapsed if elapsed > 0 else float("inf")
    batched = f" batch_size={batch_size}" if batch_size > 0 else ""
    print(
        f"# events={events_seen} matches={matches} seconds={elapsed:.3f} events/s={rate:.0f} "
        f"hash_entries={engine.hash_table_size()} evicted={engine.evicted}{batched}",
        file=output,
    )
    if args.stats:
        _print_stats(engine, output)
    if getattr(args, "checkpoint", None) and not _write_checkpoint(engine, args.checkpoint):
        return 2
    if not _finish_observability(args, observer, output):
        return 2
    return 0


def _kernel_conflict(args: argparse.Namespace) -> Optional[str]:
    """Fail-fast message for --kernel native with an incompatible layout."""
    if getattr(args, "kernel", None) != "native":
        return None
    if args.no_arena:
        return "--kernel native requires the arena-backed structure (drop --no-arena)"
    if args.no_columnar:
        return "--kernel native requires the packed columnar layout (drop --no-columnar)"
    return None


def _print_stats(engine, output: TextIO) -> None:
    """The ``--stats`` report, identical in shape across all three engine
    modes (single / general / multi): one unified-counter line, one
    dispatch-index line, one memory line, one kernel-backend line."""
    stats = engine.stats
    info = engine.dispatch_info()
    print(
        f"# scanned={stats.transitions_scanned} "
        f"pred_evals={stats.predicate_evaluations} "
        f"pred_cache_hits={stats.predicate_cache_hits} "
        f"fired={stats.transitions_fired} "
        f"lookups={stats.hash_lookups} updates={stats.hash_updates} "
        f"unions={stats.unions} nodes={stats.nodes_created} "
        f"outputs={stats.outputs_enumerated} "
        f"sweeps={stats.sweeps} sweep_evicted={stats.sweep_evicted}",
        file=output,
    )
    print(
        f"# dispatch: queries={info['queries']:.0f} "
        f"transitions={info['transitions']:.0f} "
        f"relations={info['relations']:.0f} "
        f"wildcards={info['wildcard_transitions']:.0f} "
        f"predicate_groups={info['predicate_groups']:.0f} "
        f"shared_predicate_groups={info['shared_predicate_groups']:.0f} "
        f"mean_candidates={info['mean_candidates']:.2f} "
        f"guarded={info['guarded_transitions']:.0f}",
        file=output,
    )
    print(_format_memory_line(engine.memory_info()), file=output)
    kernel = engine.kernel_info()
    print(
        f"# kernel: active={kernel['active']} "
        f"native_available={'yes' if kernel['native_available'] else 'no'} "
        f"backends={','.join(kernel['backends'])}",
        file=output,
    )
    adaptive = engine.adaptive_info()
    if adaptive is None:
        print("# adaptive: enabled=no", file=output)
    else:
        print(
            f"# adaptive: enabled=yes interval={adaptive['interval']} "
            f"flushes={adaptive['flushes']} reorders={adaptive['reorders']} "
            f"promotions={adaptive['promotions']} "
            f"demotions={adaptive['demotions']} "
            f"promoted={adaptive['promoted']} "
            f"tracked_relations={adaptive['tracked_relations']}",
            file=output,
        )


def _format_memory_line(memory: dict) -> str:
    """The ``--stats`` memory section (mirrors ``hash_entries``/``evicted``)."""
    return (
        f"# memory: arena_slabs={memory['slabs']} "
        f"arena_live_nodes={memory['live_nodes']} "
        f"arena_released={memory['released_nodes']} "
        f"nodes_created={memory['nodes_created']}"
    )


def _batched(events: Iterable[Tuple], size: int) -> Iterator[List[Tuple]]:
    batch: List[Tuple] = []
    for event in events:
        batch.append(event)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


def run_multi(args: argparse.Namespace, events: Iterable[Tuple], output: TextIO) -> int:
    """Register every ``--query`` with a shared engine and evaluate the stream."""
    from repro.multi import MultiQueryEngine

    windows = args.windows or [1000]
    if len(windows) not in (1, len(args.queries)):
        print(
            f"error: give --window once (shared) or once per query "
            f"(got {len(windows)} windows for {len(args.queries)} queries)",
            file=sys.stderr,
        )
        return 2
    if len(windows) == 1:
        windows = windows * len(args.queries)

    if getattr(args, "checkpoint", None) and args.no_arena:
        print(
            "error: --checkpoint requires arena-backed query lanes "
            "(drop --no-arena)",
            file=sys.stderr,
        )
        return 2
    conflict = _kernel_conflict(args)
    if conflict:
        print(f"error: {conflict}", file=sys.stderr)
        return 2
    workers = getattr(args, "workers", 0) or 0
    if workers:
        conflict = _workers_conflict(args)
        if conflict:
            print(f"error: {conflict}", file=sys.stderr)
            return 2
    try:
        if workers:
            from repro.shard import ShardedEngine

            engine = ShardedEngine(
                workers,
                start_method=args.start_method,
                memoise=not args.no_memoise,
                collect_stats=args.stats,
                arena=not args.no_arena,
                columnar=not args.no_columnar,
                kernel=args.kernel,
                adaptive=args.adaptive,
            )
        else:
            engine = MultiQueryEngine(
                memoise=not args.no_memoise,
                collect_stats=args.stats,
                arena=not args.no_arena,
                columnar=not args.no_columnar,
                kernel=args.kernel,
                adaptive=args.adaptive,
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        return _run_multi_engine(args, engine, events, output, workers)
    finally:
        if workers:
            engine.close()


def _run_multi_engine(
    args: argparse.Namespace, engine, events: Iterable[Tuple], output: TextIO, workers: int
) -> int:
    """The multi-mode evaluation loop, over either engine flavour."""
    windows = args.windows or [1000]
    if len(windows) == 1:
        windows = windows * len(args.queries)
    try:
        # Attached before registration so the index-patch spans of the
        # initial --query registrations land in the trace.
        observer = _setup_observability(args, engine)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    names = {}
    try:
        for index, (query, window) in enumerate(zip(args.queries, windows)):
            parsed = parse_query(query)
            handle = engine.register(parsed, window=window, name=parsed.name or f"q{index}")
            names[handle.id] = handle.name
    except (ValueError, NotHierarchicalError, NotEqualityPredicateError) as exc:
        print(f"error: cannot register query: {exc}", file=sys.stderr)
        return 2

    if getattr(args, "restore", None):
        if not _restore_engine(engine, args.restore):
            return 2
        # Handle ids (and therefore routing keys) were remapped onto the
        # checkpoint's; rebuild the name table from the restored handles.
        names = {handle.id: handle.name for handle in engine.handles()}
    batch_size = getattr(args, "batch_size", 0) or 0
    if workers and batch_size == 0:
        # A per-event round-trip to every worker drowns the evaluation in
        # frame latency; sharded runs default to batched ingestion.
        batch_size = 256
    interval = getattr(args, "stats_interval", 0) or 0
    next_report = interval if interval else None
    matches = {qid: 0 for qid in names}
    events_seen = 0
    start = time.perf_counter()

    def emit(position: int, outputs) -> None:
        for qid, valuations in outputs.items():
            matches[qid] += len(valuations)
            if not args.quiet:
                for valuation in valuations:
                    print(f"{names[qid]}\t{format_match(position, valuation)}", file=output)

    if batch_size > 0:
        for batch in _batched(islice(events, args.limit), batch_size):
            events_seen += len(batch)
            base_position = engine.position + 1
            for offset, outputs in enumerate(engine.process_many(batch)):
                emit(base_position + offset, outputs)
            if next_report is not None and events_seen >= next_report:
                _emit_interval_stats(engine, observer, events_seen, start, output)
                while next_report <= events_seen:
                    next_report += interval
    else:
        for event in islice(events, args.limit):
            events_seen += 1
            emit(engine.position + 1, engine.process(event))
            if next_report is not None and events_seen >= next_report:
                _emit_interval_stats(engine, observer, events_seen, start, output)
                next_report += interval
    elapsed = time.perf_counter() - start
    rate = events_seen / elapsed if elapsed > 0 else float("inf")
    total = sum(matches.values())
    per_query = " ".join(
        f"{names[qid]}={matches[qid]}" for qid in sorted(matches)
    )
    batched = f" batch_size={batch_size}" if batch_size > 0 else ""
    print(
        f"# events={events_seen} queries={len(names)} matches={total} ({per_query}) "
        f"seconds={elapsed:.3f} events/s={rate:.0f} "
        f"hash_entries={engine.hash_table_size()} evicted={engine.evicted}{batched}",
        file=output,
    )
    if args.stats:
        _print_stats(engine, output)
        if workers:
            shard = engine.observe()["shard"]
            print(
                f"# shard: workers={shard['workers']} "
                f"start_method={shard['start_method']} "
                f"batches={shard['batches']} "
                f"rebalances={shard['rebalances']} "
                f"recoveries={shard['recoveries']} "
                f"fan_in_matches={shard['fan_in_matches']} "
                f"frames_sent={shard['frames_sent']} "
                f"bytes_sent={shard['bytes_sent']} "
                f"busy_max={shard['busy_seconds_max']:.3f}s",
                file=output,
            )
    if getattr(args, "checkpoint", None) and not _write_checkpoint(engine, args.checkpoint):
        return 2
    if not _finish_observability(args, observer, output):
        return 2
    return 0


def _workers_conflict(args: argparse.Namespace) -> Optional[str]:
    """Fail-fast message for flags the sharded coordinator cannot honour."""
    if args.workers < 1:
        return "--workers must be a positive worker count"
    if args.no_arena:
        return (
            "--workers requires arena-backed query lanes — recovery and "
            "rebalancing ride on lane snapshots (drop --no-arena)"
        )
    if getattr(args, "checkpoint", None) or getattr(args, "restore", None):
        return (
            "--checkpoint/--restore files are single-engine snapshots; the "
            "sharded coordinator keeps its own in-memory checkpoints (drop "
            "--workers or the checkpoint flags)"
        )
    if getattr(args, "trace", None):
        return (
            "--trace records in-process spans; worker processes are not "
            "traced (drop --trace or --workers; --metrics-file and --stats "
            "work with --workers)"
        )
    return None


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cer serve",
        description="Serve an engine over TCP (repro.net): clients push tuple "
        "batches and subscribe to query matches over length-prefixed binary "
        "frames; the server coalesces everything buffered across all "
        "connections into adaptive engine batches with bounded queues in "
        "both directions (see the README's 'Serving over the network').",
    )
    parser.add_argument("--host", default="127.0.0.1", help="address to bind (default loopback)")
    parser.add_argument(
        "--port", type=int, default=0, help="port to bind (default 0 = ephemeral, printed on start)"
    )
    parser.add_argument(
        "--port-file",
        metavar="PATH",
        help="write the bound port number to PATH once listening (for scripts "
        "that start the server with --port 0)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=512,
        metavar="N",
        help="most tuples the driver coalesces into one engine batch / "
        "eviction sweep (default 512)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=8192,
        metavar="N",
        help="hard bound on queued-but-unprocessed tuples across all "
        "connections; past it the sender's socket stops being read "
        "(default 8192)",
    )
    parser.add_argument(
        "--max-outbox",
        type=int,
        default=1024,
        metavar="N",
        help="hard bound on match frames queued to one subscriber before the "
        "shedding policy applies (default 1024)",
    )
    parser.add_argument(
        "--shed-policy",
        choices=("disconnect", "drop"),
        default="disconnect",
        help="what happens to a subscriber whose outbox is full: disconnect "
        "it (default; a consumer that cannot keep up should not silently "
        "lose matches) or drop that match frame and keep the connection",
    )
    parser.add_argument(
        "--exit-after-clients",
        type=int,
        default=0,
        metavar="N",
        help="exit once N clients have connected and all of them are gone "
        "(0 = serve until SIGINT/SIGTERM; used by the CI smoke)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="serve a sharded engine: N worker processes behind the "
        "coordinator (0 = in-process multi-query engine)",
    )
    parser.add_argument(
        "--start-method",
        choices=("spawn", "fork", "forkserver", "inline"),
        default="spawn",
        help="how --workers processes start (default spawn)",
    )
    parser.add_argument("--no-memoise", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--no-arena", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--no-columnar", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument(
        "--kernel",
        choices=("auto", "python", "native"),
        default=None,
        help="record-operation backend for the engine's arena hot path",
    )
    parser.add_argument("--quiet", action="store_true", help="print only the exit summary")
    parser.add_argument(
        "--stats",
        action="store_true",
        help="also print the engine's counters and the server's flow-control "
        "totals at exit",
    )
    _add_adaptive_arguments(parser)
    _add_observability_arguments(parser)
    return parser


def run_serve(args: argparse.Namespace, output: TextIO) -> int:
    """Run the ingest server until a signal (or ``--exit-after-clients``)."""
    import asyncio
    import signal

    from repro.net.server import IngestServer

    conflict = _kernel_conflict(args)
    if conflict:
        print(f"error: {conflict}", file=sys.stderr)
        return 2
    workers = args.workers or 0
    if workers:
        if args.no_arena:
            print(
                "error: --workers requires arena-backed query lanes (drop --no-arena)",
                file=sys.stderr,
            )
            return 2
        if getattr(args, "trace", None):
            print(
                "error: --trace records in-process spans; worker processes "
                "are not traced (drop --trace or --workers)",
                file=sys.stderr,
            )
            return 2
    observer = None
    sample = getattr(args, "trace_sample", None)
    if args.metrics_file or args.trace or sample is not None:
        from repro.obs import DEFAULT_SAMPLE_EVERY, Observer, TraceRecorder

        recorder = (
            TraceRecorder(sample_every=sample if sample is not None else DEFAULT_SAMPLE_EVERY)
            if args.trace
            else None
        )
        try:
            observer = Observer(trace=recorder, sample_every=sample)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        if workers:
            from repro.shard import ShardedEngine

            engine = ShardedEngine(
                workers,
                start_method=args.start_method,
                memoise=not args.no_memoise,
                collect_stats=args.stats,
                arena=not args.no_arena,
                columnar=not args.no_columnar,
                kernel=args.kernel,
                adaptive=args.adaptive,
            )
        else:
            from repro.multi import MultiQueryEngine

            engine = MultiQueryEngine(
                memoise=not args.no_memoise,
                collect_stats=args.stats,
                arena=not args.no_arena,
                columnar=not args.no_columnar,
                kernel=args.kernel,
                adaptive=args.adaptive,
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    server = IngestServer(
        engine,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        max_outbox=args.max_outbox,
        shed_policy=args.shed_policy,
        observer=observer,
        exit_after_clients=args.exit_after_clients or None,
    )

    async def _serve() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(server.stop())
                )
            except (NotImplementedError, RuntimeError):
                pass  # non-unix loop: ctrl-C lands as KeyboardInterrupt below
        print(
            f"# serving host={server.host} port={server.port} "
            f"engine={'sharded' if workers else 'multi'} "
            f"max_batch={server.max_batch} max_queue={server.max_queue} "
            f"max_outbox={server.max_outbox} shed_policy={server.shed_policy}",
            file=output,
            flush=True,
        )
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{server.port}\n")
        await server.serve_forever()

    try:
        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:
            pass
        summary = server.observe()
        print(
            f"# net: clients_served={summary['clients_served']} "
            f"frames_in={summary['frames_in']} tuples_in={summary['tuples_in']} "
            f"batches={summary['batches']} "
            f"match_frames_out={summary['match_frames_out']} "
            f"acks_out={summary['acks_out']} shed={summary['shed']} "
            f"protocol_errors={summary['protocol_errors']} "
            f"peak_queue_depth={summary['peak_queue_depth']} "
            f"peak_outbox={summary['peak_outbox']} position={summary['position']}",
            file=output,
        )
        if args.stats:
            _print_stats(engine, output)
        if not _finish_observability(args, observer, output):
            return 2
        if server.driver_error is not None:
            print(f"error: engine failed mid-batch: {server.driver_error!r}", file=sys.stderr)
            return 1
        return 0
    finally:
        if workers:
            engine.close()


def build_net_client_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cer client",
        description="Line-oriented client for 'repro-cer serve': subscribe the "
        "given queries, stream a CSV event file into the server, wait for "
        "every ack, and print the received matches in the multi-mode output "
        "format (sorted by position, then query name).",
    )
    parser.add_argument(
        "stream", nargs="?", help="path to the CSV event file (defaults to standard input)"
    )
    parser.add_argument("--host", default="127.0.0.1", help="server address")
    parser.add_argument("--port", type=int, required=True, help="server port")
    parser.add_argument(
        "--query",
        action="append",
        dest="queries",
        metavar="QUERY",
        help="a query to subscribe (repeatable); omit to ingest without "
        "subscribing",
    )
    parser.add_argument(
        "--window",
        type=int,
        action="append",
        dest="windows",
        metavar="W",
        help="sliding window size; give once for all queries or once per "
        "query (default 1000)",
    )
    parser.add_argument("--separator", default=",", help="value separator in the event file")
    parser.add_argument("--limit", type=int, default=None, help="stop after this many events")
    parser.add_argument(
        "--batch-size",
        type=int,
        default=256,
        metavar="N",
        help="tuples per ingest frame (default 256)",
    )
    parser.add_argument(
        "--pipeline",
        type=int,
        default=4,
        metavar="N",
        help="ingest frames in flight before waiting for an ack (default 4)",
    )
    parser.add_argument("--quiet", action="store_true", help="print only the final summary")
    return parser


def run_net_client(args: argparse.Namespace, events: Iterable[Tuple], output: TextIO) -> int:
    """Stream events into a running server and print the matches received."""
    from repro.net.client import IngestClient, NetClientError

    queries = args.queries or []
    windows = args.windows or [1000]
    if len(windows) not in (1, max(1, len(queries))):
        print(
            f"error: give --window once (shared) or once per query "
            f"(got {len(windows)} windows for {len(queries)} queries)",
            file=sys.stderr,
        )
        return 2
    if len(windows) == 1:
        windows = windows * max(1, len(queries))
    start = time.perf_counter()
    try:
        client = IngestClient(args.host, args.port)
    except OSError as exc:
        print(f"error: cannot connect to {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    names = {}
    events_seen = 0
    try:
        with client:
            for index, (query, window) in enumerate(zip(queries, windows)):
                try:
                    parsed = parse_query(query)
                except ValueError as exc:
                    print(f"error: cannot parse query: {exc}", file=sys.stderr)
                    return 2
                handle_id, name, _window = client.subscribe(
                    query, window, name=parsed.name or f"q{index}"
                )
                names[handle_id] = name
            outstanding: List[int] = []
            for batch in _batched(islice(events, args.limit), max(1, args.batch_size)):
                events_seen += len(batch)
                outstanding.append(client.ingest(batch))
                while len(outstanding) >= max(1, args.pipeline):
                    client.wait_ack(outstanding.pop(0))
            for seq in outstanding:
                client.wait_ack(seq)
    except NetClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    rendered = []
    total = 0
    for handle_id, batches in client.matches.items():
        name = names.get(handle_id, f"h{handle_id}")
        for position, valuations in batches:
            total += len(valuations)
            for valuation in valuations:
                rendered.append((position, name, format_match(position, valuation)))
    if not args.quiet:
        for position, name, line in sorted(rendered):
            print(f"{name}\t{line}", file=output)
    elapsed = time.perf_counter() - start
    rate = events_seen / elapsed if elapsed > 0 else float("inf")
    print(
        f"# events={events_seen} queries={len(names)} matches={total} "
        f"seconds={elapsed:.3f} events/s={rate:.0f}",
        file=output,
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        args = build_serve_parser().parse_args(argv[1:])
        return run_serve(args, sys.stdout)
    if argv and argv[0] == "client":
        parser, runner = build_net_client_parser(), run_net_client
        argv = argv[1:]
    elif argv and argv[0] == "multi":
        parser, runner = build_multi_parser(), run_multi
        argv = argv[1:]
    else:
        parser, runner = build_parser(), run
    args = parser.parse_args(argv)
    if args.stream:
        with open(args.stream, "r", encoding="utf-8") as handle:
            events = list(read_events(handle, args.separator))
    else:
        events = read_events(sys.stdin, args.separator)
    return runner(args, events, sys.stdout)


if __name__ == "__main__":
    sys.exit(main())
