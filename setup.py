"""Setuptools entry point.

The project metadata lives in ``pyproject.toml``; this file exists so that the
package can be installed editable (``pip install -e .``) on machines without
network access or without the ``wheel`` package (legacy ``setup.py develop``
path).
"""

from setuptools import setup

setup()
