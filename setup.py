"""Setuptools entry point.

Besides the (pure-python) ``repro`` packages this declares one *optional*
C extension, ``repro.core._kernel`` — the native backend for the columnar
arena's stride-5 record hot path (see ``src/repro/core/_kernelmod.c`` and
``repro/core/kernel.py``).  The extension is strictly a go-faster module:
every build failure (no compiler, no Python headers, exotic platform)
degrades to the pure-python kernel with a warning, and must never break
``pip install -e .``.  ``Extension(optional=True)`` tells setuptools the
same thing, and the ``build_ext`` subclass below enforces it on toolchains
that ignore the flag.

Build it in place for a source checkout with::

    python setup.py build_ext --inplace

and verify which backend is active with
``python -c "from repro.core.kernel import backend_info; print(backend_info())"``.
"""

from setuptools import Extension, find_packages, setup
from setuptools.command.build_ext import build_ext


class optional_build_ext(build_ext):
    """``build_ext`` that downgrades every failure to a warning.

    Some setuptools/distutils versions raise from ``run`` (no compiler at
    all), others from ``build_extension`` (compile/link error), and not all
    of them honour ``Extension(optional=True)`` — so both hooks are guarded.
    """

    def run(self):
        try:
            super().run()
        except Exception as exc:  # noqa: BLE001 - any build failure is non-fatal
            self._skip(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # noqa: BLE001
            self._skip(exc)

    def _skip(self, exc):
        print(
            "WARNING: the optional native kernel extension was not built "
            f"({exc!r}); repro will run on the pure-python kernel. "
            "Install a C toolchain and re-run `python setup.py build_ext "
            "--inplace` to enable it."
        )


setup(
    name="repro",
    version="0.6.0",
    description="Streaming enumeration for complex event queries (paper reproduction)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    ext_modules=[
        Extension(
            "repro.core._kernel",
            sources=["src/repro/core/_kernelmod.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": optional_build_ext},
)
