"""Benchmark — adaptive selectivity-driven dispatch vs the static plan.

One experiment, written to ``BENCH_adaptive_dispatch.json``: the same seeded
scenario streams are ingested twice by freshly built engines — once with
``adaptive=True`` (runtime hit counters reorder candidate groups and promote
hot constant guards) and once with ``adaptive=False`` (the compile-time
static plan, the ablation oracle) — and every run's outputs are folded into
a canonical digest, so the speedup numbers are only reported if the two
dispatch modes produced bit-identical matches.

Scenarios (all from ``workloads.py``, seeded and replayable):

* ``drift`` — 96 guarded-pair queries over one relation; the stream's hot
  guard value jumps every quarter of the stream (``drifting_guard_queries``).
  A static plan pays the full candidate walk on every tuple; promotion
  collapses it to two group evaluations and decay re-learns each phase.
  **Contract (full run): adaptive ≥ 1.5x faster than static.**
* ``burst`` — same queries, steady hot key with periodic hot-key bursts
  (``bursty_guard_queries``); reported, not gated (bursts sit between the
  drift win and the stable guard).
* ``stable_wildcard`` — adversarial wildcard-heavy mix over a uniform
  stream (``wildcard_mix_queries``): nothing to promote, firing cost
  dominates.  **Contract: adaptive ≤ 1.02x the static wall-clock.**
* ``stable_shared_star`` — the grouped-star multi-query production shape
  (``shared_star_queries``) on a uniform stream.  **Contract: ≤ 1.02x.**
* ``stable_single`` — the single-query engine on the skewed constant-guard
  disjunction (``guarded_disjunction_workload``), where the static guard
  buckets already do the work.  **Contract: ≤ 1.02x.**

Timings interleave the modes (static, adaptive, static, adaptive, ...) and
take each mode's minimum, so slow drift of the machine hits both sides
equally.  Run as a script (``PYTHONPATH=src python
benchmarks/bench_adaptive_dispatch.py``); ``--tiny`` shrinks every dimension
for CI smoke runs, always verifies output identity, and relaxes the stable
guard to ≤ 1.25x (short streams neither amortise the observation intervals
nor time above the noise floor; the drift floor likewise needs the full
stream lengths and is only gated in the full run).  Violating an enforced
contract exits non-zero.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
import time
from typing import Callable, Dict, List, Optional

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_HERE, _SRC):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.bench.harness import gc_controlled, peak_rss_bytes, write_benchmark_json
from repro.core.evaluation import StreamingEvaluator
from repro.multi.engine import MultiQueryEngine

from workloads import (
    bursty_guard_queries,
    drifting_guard_queries,
    guarded_disjunction_workload,
    shared_star_queries,
    wildcard_mix_queries,
)

STABLE_OVERHEAD_LIMIT = 1.02
#: The --tiny smoke guard: short streams do not amortise the observation
#: intervals (dormancy back-off needs dozens of flushes to saturate) and
#: wall-clock noise at a few-ms scale swamps 2%, so CI only asserts the
#: overhead is not grossly wrong; the checked-in full run enforces 1.02x.
TINY_OVERHEAD_LIMIT = 1.25
DRIFT_SPEEDUP_FLOOR = 1.5


def _digest_multi(outputs) -> str:
    digest = hashlib.sha256()
    for position, per_query in enumerate(outputs):
        for qid in sorted(per_query):
            digest.update(
                f"{position}|{qid}|{sorted(map(str, per_query[qid]))}".encode()
            )
    return digest.hexdigest()


def _digest_single(outputs) -> str:
    digest = hashlib.sha256()
    for position, valuations in enumerate(outputs):
        if valuations:
            digest.update(f"{position}|{sorted(map(str, valuations))}".encode())
    return digest.hexdigest()


def _time_multi(queries, stream, window: int, adaptive: bool):
    engine = MultiQueryEngine(collect_stats=False, adaptive=adaptive)
    for index, pcea in enumerate(queries):
        engine.register(pcea, window, f"q{index}")
    process = engine.process
    with gc_controlled():
        began = time.perf_counter()
        outputs = [process(tup) for tup in stream]
        wall = time.perf_counter() - began
    return wall, _digest_multi(outputs), engine.adaptive_info()


def _time_single(pcea, stream, window: int, adaptive: bool):
    engine = StreamingEvaluator(pcea, window=window, collect_stats=False, adaptive=adaptive)
    process = engine.process
    with gc_controlled():
        began = time.perf_counter()
        outputs = [process(tup) for tup in stream]
        wall = time.perf_counter() - began
    return wall, _digest_single(outputs), engine.adaptive_info()


def run_scenario(
    name: str,
    timer: Callable[[bool], tuple],
    tuples: int,
    repeats: int,
    contract: Optional[str],
) -> Dict:
    """Interleaved timed runs of both modes; returns the scenario row.

    ``contract`` is ``"speedup"`` (adaptive must be ≥ 1.5x faster),
    ``"overhead"`` (adaptive must be ≤ 1.02x static) or ``None`` (report
    only).  Output digests must agree across *all* runs of both modes.
    """
    walls: Dict[bool, List[float]] = {True: [], False: []}
    digests = set()
    info = None
    for _ in range(repeats):
        for adaptive in (False, True):
            wall, digest, run_info = timer(adaptive)
            walls[adaptive].append(wall)
            digests.add(digest)
            if adaptive:
                info = run_info
    static = min(walls[False])
    adaptive_wall = min(walls[True])
    speedup = static / adaptive_wall if adaptive_wall else float("inf")
    row = {
        "scenario": name,
        "tuples": tuples,
        "static_seconds": static,
        "adaptive_seconds": adaptive_wall,
        "static_us_per_tuple": static * 1e6 / tuples,
        "adaptive_us_per_tuple": adaptive_wall * 1e6 / tuples,
        "speedup_vs_static": speedup,
        "outputs_identical": len(digests) == 1,
        "contract": contract,
        "adaptive_info": info,
    }
    print(
        f"  {name:<18s} static={row['static_us_per_tuple']:8.2f}us/t  "
        f"adaptive={row['adaptive_us_per_tuple']:8.2f}us/t  "
        f"speedup={speedup:5.2f}x  identical={row['outputs_identical']}"
    )
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true", help="CI smoke dimensions")
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(_HERE), "BENCH_adaptive_dispatch.json"),
    )
    args = parser.parse_args()
    if args.tiny:
        drift_queries, drift_length = 32, 6_000
        stable_length, wildcard_queries = 6_000, 8
        star_queries, repeats, window = 32, 3, 128
        single_branches, single_length = 32, 6_000
    else:
        drift_queries, drift_length = 96, 40_000
        stable_length, wildcard_queries = 40_000, 16
        star_queries, repeats, window = 64, 5, 256
        single_branches, single_length = 64, 40_000

    print(
        f"adaptive dispatch vs static plan "
        f"(drift: {drift_queries} queries x {drift_length} tuples, "
        f"repeats={repeats}, min-of-repeats per mode)"
    )

    queries, stream = drifting_guard_queries(
        drift_queries, drift_length, filter_selectivity=0.01, seed=11
    )
    drift = run_scenario(
        "drift",
        lambda adaptive: _time_multi(queries, stream, window, adaptive),
        len(stream),
        repeats,
        "speedup",
    )
    queries, stream = bursty_guard_queries(
        drift_queries, drift_length, filter_selectivity=0.01, seed=12
    )
    burst = run_scenario(
        "burst",
        lambda adaptive: _time_multi(queries, stream, window, adaptive),
        len(stream),
        repeats,
        None,
    )
    queries, stream = wildcard_mix_queries(wildcard_queries, stable_length, seed=13)
    wildcard = run_scenario(
        "stable_wildcard",
        lambda adaptive: _time_multi(queries, stream, window, adaptive),
        len(stream),
        repeats,
        "overhead",
    )
    queries, stream = shared_star_queries(star_queries, stable_length, seed=14)
    star = run_scenario(
        "stable_shared_star",
        lambda adaptive: _time_multi(queries, stream, window, adaptive),
        len(stream),
        repeats,
        "overhead",
    )
    pcea, stream = guarded_disjunction_workload(single_branches, single_length, seed=15)
    single = run_scenario(
        "stable_single",
        lambda adaptive: _time_single(pcea, stream, window, adaptive),
        len(stream),
        repeats,
        "overhead",
    )

    scenarios = [drift, burst, wildcard, star, single]
    overhead_limit = TINY_OVERHEAD_LIMIT if args.tiny else STABLE_OVERHEAD_LIMIT
    failures: List[str] = []
    for row in scenarios:
        if not row["outputs_identical"]:
            failures.append(f"{row['scenario']}: outputs differ between dispatch modes")
        if row["contract"] == "overhead" and row["speedup_vs_static"] < 1 / overhead_limit:
            failures.append(
                f"{row['scenario']}: adaptive overhead "
                f"{1 / row['speedup_vs_static']:.3f}x exceeds the "
                f"{overhead_limit}x stable guard"
            )
        if (
            row["contract"] == "speedup"
            and not args.tiny
            and row["speedup_vs_static"] < DRIFT_SPEEDUP_FLOOR
        ):
            failures.append(
                f"{row['scenario']}: speedup {row['speedup_vs_static']:.2f}x "
                f"is below the {DRIFT_SPEEDUP_FLOOR}x drift floor"
            )

    summary = {
        "outputs_identical_all_scenarios": all(r["outputs_identical"] for r in scenarios),
        "drift_speedup_vs_static": drift["speedup_vs_static"],
        "burst_speedup_vs_static": burst["speedup_vs_static"],
        "stable_wildcard_overhead": 1 / wildcard["speedup_vs_static"],
        "stable_shared_star_overhead": 1 / star["speedup_vs_static"],
        "stable_single_overhead": 1 / single["speedup_vs_static"],
        "drift_floor": DRIFT_SPEEDUP_FLOOR,
        "stable_overhead_limit": overhead_limit,
        "drift_promotions": (drift["adaptive_info"] or {}).get("promotions", 0),
        "drift_demotions": (drift["adaptive_info"] or {}).get("demotions", 0),
        "contracts_enforced": "stable only" if args.tiny else "drift floor + stable",
    }
    payload = {
        "benchmark": "adaptive_dispatch",
        "description": (
            "Adaptive selectivity-driven dispatch (runtime candidate reordering "
            "+ hot constant-guard promotion) vs the frozen compile-time plan on "
            "drifting-skew, bursty, and stable/adversarial scenario workloads; "
            "outputs verified bit-identical between the two modes in every "
            "scenario before any speedup is reported."
        ),
        "tiny": args.tiny,
        "gc_enabled": False,
        "peak_rss_bytes": peak_rss_bytes(),
        "speedup_vs_static": drift["speedup_vs_static"],
        "adaptive": drift["adaptive_info"] or {},
        "scenarios": scenarios,
        "summary": summary,
    }
    write_benchmark_json(args.output, payload)
    print(f"wrote {args.output}")
    for failure in failures:
        print(f"  CONTRACT VIOLATION: {failure}", file=sys.stderr)
    if failures:
        sys.exit(1)


if __name__ == "__main__":
    main()
