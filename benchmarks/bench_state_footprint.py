"""Benchmark — columnar compact state: resident bytes and protocol overhead.

Three experiments, written to ``BENCH_state_footprint.json``:

* **arena resident bytes, columnar vs list slabs** — both layouts process the
  same 1M-tuple hot-key store-heavy stream (``fanout_star``: two hot join
  keys, every arm tuple unioned into ``fan`` run-index entries — the
  workload that accumulates the densest enumeration-structure state).  The
  metric is :meth:`~repro.core.arena.ArenaDataStructure.resident_bytes` — the
  deep size of the retained slab storage, counting the boxed int objects the
  list layout keeps alive and the packed ``array('q')`` words the columnar
  layout replaces them with.  Outputs are compared position by position
  across the full stream, and the two arenas' structural snapshots are
  asserted equal at the end (the structural-identity guarantee the byte
  comparison rests on).
* **per-tuple update time, columnar vs list** — best-of-``repeats``
  update-only timing on the data-structure-dominated workloads
  (``relation_star`` / ``fanout_star``), gc-controlled, plus the object-graph
  oracle (``arena=False``) for reference.  This is the honest cost side of
  the columnar trade: CPython boxes every ``array('q')`` element read, so the
  packed layout pays a per-read tax the list layout's shared int objects do
  not — single-digit percent on join-dominated workloads, up to ~20% on the
  union-heaviest hot-key stream — while staying faster than the object-graph
  oracle.  Deployments where this margin matters more than the ≥2× resident
  cut keep ``columnar=False``.
* **expiry-bucket protocol, flat int triples vs per-entry tuples** — a
  microbenchmark of the runtime's registration+sweep protocol: register
  ``entries_per_position`` entries per position into the expiry bucket one
  window ahead and pop the due bucket, in the flat
  ``[lane_id, key, node, ...]`` representation the runtime uses versus the
  ``[(lane, key, node), ...]`` tuple layout it replaced.  Reports ns per
  registered entry and the steady-state allocated-blocks difference (the
  per-entry tuples the flat layout never allocates — the retained-garbage
  cut is the point; raw op time is reported honestly either way).

The payload also records ``peak_rss_bytes`` (process high-water mark, coarse
corroboration for the structure-level byte counts; the field is schema-checked
by ``validate_benchmark_payload``).

Run as a script (``PYTHONPATH=src python benchmarks/bench_state_footprint.py``);
``--tiny`` shrinks every dimension for CI smoke runs.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_HERE, _SRC):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.bench.harness import gc_controlled, peak_rss_bytes, write_benchmark_json
from repro.core.evaluation import StreamingEvaluator

from workloads import fanout_star_workload, relation_star_workload


def footprint_experiment(length: int, window: int, key_domain: int) -> Dict:
    """Resident slab bytes after the hot-key store-heavy stream, columnar vs list."""
    pcea, stream = fanout_star_workload(
        4, length=length, fan=7, key_domain=key_domain, arm_fraction=0.8
    )
    # kernel="python" pins the pure-python record ops: this benchmark compares
    # *layouts* (packed records vs parallel lists, both all-python, sealed
    # slabs trimmed exact), so auto-detecting the native kernel — which
    # preallocates full-capacity slabs and never trims — would misstate both
    # the resident-byte and the boxing-tax numbers.  The backend comparison
    # lives in BENCH_kernel_backends.json.
    columnar = StreamingEvaluator(
        pcea, window=window, columnar=True, kernel="python", collect_stats=False
    )
    listy = StreamingEvaluator(pcea, window=window, columnar=False, collect_stats=False)
    outputs_equal = True
    columnar_process = columnar.process
    listy_process = listy.process
    with gc_controlled():
        start = time.perf_counter()
        for tup in stream:
            if columnar_process(tup) != listy_process(tup):
                outputs_equal = False
        elapsed = time.perf_counter() - start
    columnar_bytes = columnar.ds.resident_bytes()
    list_bytes = listy.ds.resident_bytes()
    columnar_stats = columnar.ds.memory_stats()
    list_stats = listy.ds.memory_stats()
    result = {
        "stream_length": length,
        "window": window,
        "transitions": len(pcea.transitions),
        "key_domain": key_domain,
        "outputs_equal_full_stream": outputs_equal,
        "seconds_both_engines": elapsed,
        "columnar_resident_bytes": columnar_bytes,
        "list_resident_bytes": list_bytes,
        "resident_bytes_ratio": list_bytes / columnar_bytes if columnar_bytes else float("inf"),
        "columnar_live_nodes": columnar_stats["live_nodes"],
        "list_live_nodes": list_stats["live_nodes"],
        "columnar_slabs": columnar_stats["slabs"],
        "list_slabs": list_stats["slabs"],
        "structurally_identical": columnar.ds.snapshot() == listy.ds.snapshot(),
    }
    print(
        f"  n={length} window={window}: columnar={columnar_bytes} B, "
        f"list={list_bytes} B ({result['resident_bytes_ratio']:.2f}x), "
        f"live nodes {columnar_stats['live_nodes']}/{list_stats['live_nodes']}, "
        f"outputs equal={outputs_equal}, snapshots equal={result['structurally_identical']}"
    )
    return result


def time_updates(engine: StreamingEvaluator, stream) -> float:
    update = engine.update
    start = time.perf_counter()
    for tup in stream:
        update(tup)
    return (time.perf_counter() - start) / len(stream)


def speed_experiment(length: int, window: int, repeats: int) -> List[Dict]:
    """Per-tuple update time: columnar vs list slabs vs object oracle."""
    workloads = [
        ("relation_star", *relation_star_workload(16, length=length, arms=2, key_domain=2)),
        ("fanout_star", *fanout_star_workload(4, length=length, fan=7, key_domain=2, arm_fraction=0.8)),
    ]
    rows: List[Dict] = []
    for name, pcea, stream in workloads:
        best = {"columnar": float("inf"), "list": float("inf"), "object": float("inf")}
        with gc_controlled():
            for _ in range(repeats):
                for kind in best:
                    if kind == "columnar":
                        # Pure-python kernel on purpose — see footprint_experiment.
                        engine = StreamingEvaluator(
                            pcea,
                            window=window,
                            columnar=True,
                            kernel="python",
                            collect_stats=False,
                        )
                    elif kind == "list":
                        engine = StreamingEvaluator(
                            pcea, window=window, columnar=False, collect_stats=False
                        )
                    else:
                        engine = StreamingEvaluator(
                            pcea, window=window, arena=False, collect_stats=False
                        )
                    best[kind] = min(best[kind], time_updates(engine, stream))
        rows.append(
            {
                "workload": name,
                "transitions": len(pcea.transitions),
                "stream_length": len(stream),
                "window": window,
                "columnar_us_per_tuple": best["columnar"] * 1e6,
                "list_us_per_tuple": best["list"] * 1e6,
                "object_us_per_tuple": best["object"] * 1e6,
                "update_time_ratio": (
                    best["columnar"] / best["list"] if best["list"] else float("inf")
                ),
                "speedup_vs_object": (
                    best["object"] / best["columnar"] if best["columnar"] else float("inf")
                ),
            }
        )
        print(
            f"  {name:<14s} columnar={rows[-1]['columnar_us_per_tuple']:6.2f}µs  "
            f"list={rows[-1]['list_us_per_tuple']:6.2f}µs  "
            f"object={rows[-1]['object_us_per_tuple']:6.2f}µs  "
            f"col/list={rows[-1]['update_time_ratio']:.3f}  "
            f"obj/col={rows[-1]['speedup_vs_object']:.2f}x"
        )
    return rows


def _drive_flat(operations: int, window: int, entries: int, keys: List[tuple]) -> float:
    """The runtime's flat-triple protocol: 3 appends in, stride-3 sweep out."""
    buckets: Dict[int, list] = {}
    start = time.perf_counter()
    for position in range(operations):
        expiry_position = position + window + 1
        expiry = buckets.get(expiry_position)
        if expiry is None:
            expiry = buckets[expiry_position] = []
        for entry in range(entries):
            expiry.append(7)
            expiry.append(keys[entry])
            expiry.append(position)
        expired = buckets.pop(position, None)
        if expired:
            for index in range(0, len(expired), 3):
                _ = expired[index]
                _ = expired[index + 1]
                _ = expired[index + 2]
    return time.perf_counter() - start


def _drive_tuples(operations: int, window: int, entries: int, keys: List[tuple]) -> float:
    """The pre-refactor layout: one (lane, key, node) tuple per entry."""
    buckets: Dict[int, list] = {}
    start = time.perf_counter()
    for position in range(operations):
        expiry_position = position + window + 1
        expiry = buckets.get(expiry_position)
        if expiry is None:
            expiry = buckets[expiry_position] = []
        for entry in range(entries):
            expiry.append((7, keys[entry], position))
        expired = buckets.pop(position, None)
        if expired:
            for lane_id, key, node in expired:
                _ = lane_id
                _ = key
                _ = node
    return time.perf_counter() - start


def bucket_protocol_experiment(operations: int, window: int, entries: int, repeats: int) -> Dict:
    """Registration+sweep microbenchmark, flat triples vs per-entry tuples."""
    keys = [("k", 0, value) for value in range(entries)]  # pre-existing, as in H
    best = {"flat_triples": float("inf"), "tuples": float("inf")}
    drivers = {"flat_triples": _drive_flat, "tuples": _drive_tuples}
    blocks = {}
    with gc_controlled():
        for _ in range(repeats):
            for name, driver in drivers.items():
                best[name] = min(best[name], driver(operations, window, entries, keys))
        # Steady-state allocated blocks: fill exactly one window's worth of
        # live buckets per flavour and difference the block counts — the
        # per-entry tuples are the only systematic difference.
        for name, driver in drivers.items():
            before = sys.getallocatedblocks()
            buckets: Dict[int, list] = {}
            for position in range(window):
                bucket = buckets.setdefault(position + window + 1, [])
                for entry in range(entries):
                    if name == "flat_triples":
                        bucket.append(7)
                        bucket.append(keys[entry])
                        bucket.append(position)
                    else:
                        bucket.append((7, keys[entry], position))
            blocks[name] = sys.getallocatedblocks() - before
            del buckets
    total_entries = operations * entries
    live_entries = window * entries
    result = {
        "operations": operations,
        "window": window,
        "entries_per_position": entries,
        "flat_ns_per_entry": best["flat_triples"] / total_entries * 1e9,
        "tuple_ns_per_entry": best["tuples"] / total_entries * 1e9,
        "bucket_time_ratio": (
            best["tuples"] / best["flat_triples"] if best["flat_triples"] else float("inf")
        ),
        "flat_steady_blocks": blocks["flat_triples"],
        "tuple_steady_blocks": blocks["tuples"],
        "blocks_saved_per_live_entry": (
            (blocks["tuples"] - blocks["flat_triples"]) / live_entries if live_entries else 0.0
        ),
    }
    print(
        f"  flat={result['flat_ns_per_entry']:.0f}ns/entry  "
        f"tuples={result['tuple_ns_per_entry']:.0f}ns/entry  "
        f"(ratio {result['bucket_time_ratio']:.2f}x); steady blocks "
        f"{blocks['flat_triples']} vs {blocks['tuples']} "
        f"({result['blocks_saved_per_live_entry']:.2f} blocks/live entry saved)"
    )
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true", help="CI smoke mode (small workloads)")
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(_HERE), "BENCH_state_footprint.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    if args.tiny:
        mem_len, mem_window, mem_kd = 20_000, 256, 2
        speed_len, speed_window, repeats = 3_000, 512, 2
        bucket_ops, bucket_window, bucket_entries, bucket_repeats = 20_000, 1_024, 4, 2
    else:
        mem_len, mem_window, mem_kd = 1_000_000, 2048, 4
        speed_len, speed_window, repeats = 20_000, 1024, 9
        bucket_ops, bucket_window, bucket_entries, bucket_repeats = 200_000, 4_096, 4, 5

    print(f"arena resident bytes, columnar vs list slabs (n={mem_len}, window={mem_window})")
    footprint = footprint_experiment(mem_len, mem_window, key_domain=mem_kd)
    print(f"per-tuple update time, columnar vs list (n={speed_len}, window={speed_window})")
    speeds = speed_experiment(speed_len, speed_window, repeats)
    print(
        f"expiry-bucket protocol, flat triples vs tuples "
        f"(ops={bucket_ops}, window={bucket_window}, entries/pos={bucket_entries})"
    )
    bucket = bucket_protocol_experiment(bucket_ops, bucket_window, bucket_entries, bucket_repeats)

    payload = {
        "benchmark": "state_footprint",
        "tiny": args.tiny,
        "python": sys.version.split()[0],
        "gc_enabled": False,  # timed sections run under gc_controlled()
        "peak_rss_bytes": peak_rss_bytes(),
        "columnar_vs_list_footprint": footprint,
        "columnar_vs_list_update_time": speeds,
        "bucket_protocol": bucket,
        "summary": {
            "resident_bytes_ratio": footprint["resident_bytes_ratio"],
            "columnar_resident_bytes": footprint["columnar_resident_bytes"],
            "list_resident_bytes": footprint["list_resident_bytes"],
            "outputs_equal_full_stream": footprint["outputs_equal_full_stream"],
            "structurally_identical": footprint["structurally_identical"],
            "best_update_time_ratio": min(row["update_time_ratio"] for row in speeds),
            "worst_update_time_ratio": max(row["update_time_ratio"] for row in speeds),
            "min_speedup_vs_object": min(row["speedup_vs_object"] for row in speeds),
            "bucket_time_ratio": bucket["bucket_time_ratio"],
            "blocks_saved_per_live_entry": bucket["blocks_saved_per_live_entry"],
        },
    }
    write_benchmark_json(args.output, payload)
    print(f"wrote {args.output}")
    summary = payload["summary"]
    print(
        f"resident bytes: {summary['resident_bytes_ratio']:.2f}x smaller columnar "
        f"({summary['columnar_resident_bytes']} vs {summary['list_resident_bytes']} B); "
        f"update col/list {summary['best_update_time_ratio']:.3f}-"
        f"{summary['worst_update_time_ratio']:.3f} (boxing tax; still "
        f"{summary['min_speedup_vs_object']:.2f}x+ faster than the object oracle); "
        f"bucket protocol time x{summary['bucket_time_ratio']:.2f}, "
        f"{summary['blocks_saved_per_live_entry']:.2f} blocks/live entry saved"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
