"""Benchmark — multi-query sharing, batched ingestion, constant-guard dispatch.

Three experiments, written to ``BENCH_multi_query.json``:

* **shared engine vs independent engines** — K overlapping star queries over a
  shared relation alphabet (``workloads.shared_star_queries``); the
  :class:`~repro.multi.engine.MultiQueryEngine` evaluates all K through one
  merged dispatch index with shared unary-predicate memoisation, against K
  independent indexed :class:`~repro.core.evaluation.StreamingEvaluator`
  instances over the same stream.  The headline number: per-tuple total cost
  at K=16 should be ≥2× lower on the shared engine, with per-query outputs
  verified identical.
* **batched ingestion** — ``process_many`` (one eviction sweep and one stats
  flush per batch, hoisted locals) vs the per-event ``process`` loop, on both
  the single-query and the multi-query engines.
* **constant-guard dispatch** — a skewed disjunction of constant-guarded
  branches (``workloads.guarded_disjunction_workload``); dispatch with the
  ``(relation, guard value)`` index vs relation-name-only dispatch.

Run as a script (``PYTHONPATH=src python benchmarks/bench_multi_query.py``);
``--tiny`` shrinks every dimension for CI smoke runs.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_HERE, _SRC):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.bench.harness import write_benchmark_json
from repro.core.dispatch import TransitionDispatchIndex
from repro.core.evaluation import StreamingEvaluator
from repro.multi import MultiQueryEngine

from workloads import guarded_disjunction_workload, shared_star_queries


def build_shared_engine(queries, window: int, memoise: bool = True) -> MultiQueryEngine:
    engine = MultiQueryEngine(memoise=memoise)
    for pcea in queries:
        engine.register(pcea, window=window)
    return engine


def time_shared(queries, stream, window: int) -> float:
    """Seconds per tuple for the shared engine (outputs drained)."""
    engine = build_shared_engine(queries, window)
    process = engine.process
    start = time.perf_counter()
    for tup in stream:
        process(tup)
    return (time.perf_counter() - start) / len(stream)


def time_independent(queries, stream, window: int) -> float:
    """Seconds per tuple for one indexed StreamingEvaluator per query."""
    engines = [
        StreamingEvaluator(pcea, window=window, collect_stats=False) for pcea in queries
    ]
    processes = [engine.process for engine in engines]
    start = time.perf_counter()
    for tup in stream:
        for process in processes:
            process(tup)
    return (time.perf_counter() - start) / len(stream)


def same_outputs(left, right) -> bool:
    """Order-insensitive, multiplicity-sensitive comparison of output lists.

    Comparing multisets (not sets) keeps the check able to catch duplicated
    outputs — the regression the unambiguity guarantee rules out.
    """
    return sorted(map(str, left)) == sorted(map(str, right))


def check_equivalence(queries, stream, window: int) -> bool:
    """Shared-engine outputs must match the independent engines per query."""
    engine = build_shared_engine(queries, window)
    handles = engine.handles()
    references = [
        StreamingEvaluator(pcea, window=window, collect_stats=False) for pcea in queries
    ]
    for tup in stream:
        outputs = engine.process(tup)
        for handle, reference in zip(handles, references):
            if not same_outputs(outputs.get(handle.id, []), reference.process(tup)):
                return False
    return True


def sweep_query_count(counts: List[int], length: int, window: int, check_length: int) -> List[Dict]:
    rows: List[Dict] = []
    for count in counts:
        queries, stream = shared_star_queries(count, length=length)
        shared = time_shared(queries, stream, window)
        independent = time_independent(queries, stream, window)
        info = build_shared_engine(queries, window).dispatch_info()
        rows.append(
            {
                "queries": count,
                "merged_transitions": int(info["transitions"]),
                "predicate_groups": int(info["predicate_groups"]),
                "shared_predicate_groups": int(info["shared_predicate_groups"]),
                "shared_us_per_tuple": shared * 1e6,
                "independent_us_per_tuple": independent * 1e6,
                "shared_us_per_tuple_per_query": shared * 1e6 / count,
                "speedup": independent / shared if shared else float("inf"),
                "outputs_equal": check_equivalence(queries, stream[:check_length], window),
            }
        )
        print(
            f"  K={count:<3d} shared={rows[-1]['shared_us_per_tuple']:8.2f}µs  "
            f"independent={rows[-1]['independent_us_per_tuple']:8.2f}µs  "
            f"speedup={rows[-1]['speedup']:5.2f}x  equal={rows[-1]['outputs_equal']}"
        )
    return rows


def batched_ingestion_experiment(
    batch_sizes: List[int], num_queries: int, length: int, window: int
) -> Dict:
    queries, stream = shared_star_queries(num_queries, length=length)
    single_pcea = queries[0]

    def time_single_loop() -> float:
        engine = StreamingEvaluator(single_pcea, window=window, collect_stats=False)
        start = time.perf_counter()
        for tup in stream:
            engine.process(tup)
        return (time.perf_counter() - start) / len(stream)

    def time_single_batched(batch: int) -> float:
        engine = StreamingEvaluator(single_pcea, window=window, collect_stats=False)
        start = time.perf_counter()
        for begin in range(0, len(stream), batch):
            engine.process_many(stream[begin : begin + batch])
        return (time.perf_counter() - start) / len(stream)

    def time_multi_batched(batch: int) -> float:
        engine = build_shared_engine(queries, window)
        start = time.perf_counter()
        for begin in range(0, len(stream), batch):
            engine.process_many(stream[begin : begin + batch])
        return (time.perf_counter() - start) / len(stream)

    per_event = time_single_loop()
    multi_per_event = time_shared(queries, stream, window)
    rows = []
    for batch in batch_sizes:
        single = time_single_batched(batch)
        multi = time_multi_batched(batch)
        rows.append(
            {
                "batch_size": batch,
                "single_us_per_tuple": single * 1e6,
                "single_speedup_vs_per_event": per_event / single if single else float("inf"),
                "multi_us_per_tuple": multi * 1e6,
                "multi_speedup_vs_per_event": multi_per_event / multi if multi else float("inf"),
            }
        )
        print(
            f"  batch={batch:<5d} single={single * 1e6:7.2f}µs "
            f"({rows[-1]['single_speedup_vs_per_event']:4.2f}x)  "
            f"multi={multi * 1e6:7.2f}µs ({rows[-1]['multi_speedup_vs_per_event']:4.2f}x)"
        )
    # Outputs must be identical between the batched and per-event paths.
    reference = StreamingEvaluator(single_pcea, window=window, collect_stats=False)
    batched = StreamingEvaluator(single_pcea, window=window, collect_stats=False)
    per_event_outputs = [reference.process(tup) for tup in stream]
    batched_outputs: List = []
    for begin in range(0, len(stream), batch_sizes[0]):
        batched_outputs.extend(batched.process_many(stream[begin : begin + batch_sizes[0]]))
    outputs_equal = all(
        same_outputs(a, b) for a, b in zip(per_event_outputs, batched_outputs)
    )
    return {
        "single_per_event_us_per_tuple": per_event * 1e6,
        "multi_per_event_us_per_tuple": multi_per_event * 1e6,
        "queries": num_queries,
        "rows": rows,
        "outputs_equal": outputs_equal,
    }


def guard_dispatch_experiment(branch_counts: List[int], length: int, window: int) -> List[Dict]:
    rows: List[Dict] = []
    for branches in branch_counts:
        pcea, stream = guarded_disjunction_workload(branches, length=length)
        guarded_engine = StreamingEvaluator(pcea, window=window, collect_stats=False)
        unguarded_index = TransitionDispatchIndex(
            pcea.transitions, final=pcea.final, guards=False
        )
        unguarded_engine = StreamingEvaluator(
            pcea, window=window, dispatch=unguarded_index, collect_stats=False
        )
        timings = {}
        for name, engine in (("guarded", guarded_engine), ("unguarded", unguarded_engine)):
            update = engine.update
            start = time.perf_counter()
            for tup in stream:
                update(tup)
            timings[name] = (time.perf_counter() - start) / len(stream)
        rows.append(
            {
                "branches": branches,
                "guarded_us_per_tuple": timings["guarded"] * 1e6,
                "unguarded_us_per_tuple": timings["unguarded"] * 1e6,
                "speedup": (
                    timings["unguarded"] / timings["guarded"]
                    if timings["guarded"]
                    else float("inf")
                ),
            }
        )
        print(
            f"  branches={branches:<4d} guarded={rows[-1]['guarded_us_per_tuple']:7.2f}µs  "
            f"unguarded={rows[-1]['unguarded_us_per_tuple']:7.2f}µs  "
            f"speedup={rows[-1]['speedup']:5.2f}x"
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true", help="CI smoke mode (small workloads)")
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(_HERE), "BENCH_multi_query.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    if args.tiny:
        counts, length, window, check_length = [2, 4], 300, 64, 150
        batch_sizes, batch_queries, batch_length = [32], 4, 300
        branch_counts, guard_length = [4, 16], 300
    else:
        counts, length, window, check_length = [1, 2, 4, 8, 16], 4_000, 256, 1_500
        batch_sizes, batch_queries, batch_length = [64, 512], 8, 8_000
        branch_counts, guard_length = [4, 16, 64], 6_000

    print(f"shared engine vs independent engines (stream={length}, window={window})")
    query_rows = sweep_query_count(counts, length, window, check_length)
    print(f"batched ingestion (queries={batch_queries}, stream={batch_length})")
    batching = batched_ingestion_experiment(batch_sizes, batch_queries, batch_length, window)
    print(f"constant-guard dispatch (stream={guard_length}, window={window})")
    guard_rows = guard_dispatch_experiment(branch_counts, guard_length, window)

    speedup_at_max = query_rows[-1]["speedup"]
    payload = {
        "benchmark": "multi_query",
        "tiny": args.tiny,
        "python": sys.version.split()[0],
        "shared_vs_independent": query_rows,
        "batched_ingestion": batching,
        "constant_guard_dispatch": guard_rows,
        "summary": {
            "max_queries": query_rows[-1]["queries"],
            "speedup_at_max_queries": speedup_at_max,
            "meets_2x_target": speedup_at_max >= 2.0,
            "all_outputs_equal": (
                all(row["outputs_equal"] for row in query_rows)
                and batching["outputs_equal"]
            ),
            "best_batched_speedup": max(
                row["single_speedup_vs_per_event"] for row in batching["rows"]
            ),
            "max_guard_speedup": max(row["speedup"] for row in guard_rows),
        },
    }
    write_benchmark_json(args.output, payload)
    print(f"wrote {args.output}")
    summary = payload["summary"]
    print(
        f"speedup at K={summary['max_queries']}: {summary['speedup_at_max_queries']:.2f}x "
        f"(target ≥2x: {summary['meets_2x_target']}); outputs equal: {summary['all_outputs_equal']}; "
        f"batched: {summary['best_batched_speedup']:.2f}x; guards: {summary['max_guard_speedup']:.2f}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
