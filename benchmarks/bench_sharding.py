"""Benchmark — sharded multi-process engine: throughput vs worker count.

One experiment, written to ``BENCH_sharding.json``:

* **scaling sweep** — the grouped-star multi-query workload
  (``shared_star_queries``, K ≥ 1024 queries in the full run) ingested by a
  single shared ``MultiQueryEngine`` and by ``ShardedEngine`` at 1, 2, 4 and
  8 workers.  Every run feeds the identical stream in identical batches and
  must produce bit-identical output (verified in-benchmark with a canonical
  per-position digest — the run is invalid otherwise, and
  ``summary.outputs_identical_all_runs`` records it).

Two throughput numbers are reported per row, and the distinction matters:

* ``wall_tuples_per_s`` — tuples over coordinator wall-clock time.  On a
  machine with fewer cores than workers this *degrades* with worker count:
  the processes time-slice one core and the broadcast adds frame overhead,
  so wall-clock measures serialisation cost, not parallel speedup.
* ``critical_path_tuples_per_s`` — tuples over the *busiest single worker's*
  busy time (decode + evaluate + encode, measured inside each worker as
  per-process CPU time, excluding time blocked on ``recv`` and time
  descheduled by the OS).  This is the wall-clock an N-core
  machine would observe, because the broadcast design gives every worker the
  same frame stream and the slowest worker gates each batch.  The headline
  ``critical_path_speedup_4_workers`` (target ≥ 3× over 1 worker) is this
  metric; ``summary.machine_cpus`` records how many cores actually backed
  the run so readers can interpret the wall-clock column.

Run as a script (``PYTHONPATH=src python benchmarks/bench_sharding.py``);
``--tiny`` shrinks every dimension for CI smoke runs.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
import time
from typing import Dict, List

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_HERE, _SRC):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.bench.harness import gc_controlled, peak_rss_bytes, write_benchmark_json
from repro.multi.engine import MultiQueryEngine
from repro.shard import ShardedEngine

from workloads import shared_star_queries


def make_workload(
    num_queries: int,
    length: int,
    window: int,
    groups: int,
    key_domain: int,
    selectivity: float,
):
    pceas, stream = shared_star_queries(
        num_queries,
        length,
        arms=3,
        groups=groups,
        key_domain=key_domain,
        selectivity=selectivity,
        seed=7,
    )
    return [(pcea, window) for pcea in pceas], stream


def ingest(engine, stream, batch_size: int):
    """Feed ``stream`` in batches; return (wall_seconds, matches, digest).

    The digest folds every (position, handle id, sorted valuations) triple in
    stream order, so two runs agree iff their outputs are bit-identical.
    Digesting happens outside the timed region.
    """
    wall = 0.0
    matches = 0
    digest = hashlib.sha256()
    position = 0
    for start in range(0, len(stream), batch_size):
        chunk = stream[start : start + batch_size]
        began = time.perf_counter()
        outputs = engine.process_many(chunk)
        wall += time.perf_counter() - began
        for per_query in outputs:
            for qid in sorted(per_query):
                valuations = per_query[qid]
                matches += len(valuations)
                digest.update(
                    f"{position}|{qid}|{sorted(map(str, valuations))}".encode()
                )
            position += 1
    return wall, matches, digest.hexdigest()


def run_single(queries, stream, batch_size: int) -> Dict:
    engine = MultiQueryEngine(collect_stats=False)
    for pcea, window in queries:
        engine.register(pcea, window=window)
    with gc_controlled():
        wall, matches, digest = ingest(engine, stream, batch_size)
    row = {
        "workers": 0,
        "engine": "single",
        "wall_seconds": wall,
        "wall_tuples_per_s": len(stream) / wall,
        "matches": matches,
        "digest": digest,
    }
    print(
        f"  single        wall={wall:7.2f}s  "
        f"{row['wall_tuples_per_s']:8.1f} tup/s  matches={matches}"
    )
    return row


def run_sharded(
    workers: int, queries, stream, batch_size: int, start_method: str
) -> Dict:
    with ShardedEngine(
        workers, start_method=start_method, collect_stats=False
    ) as engine:
        engine.register_many(queries)
        with gc_controlled():
            wall, matches, digest = ingest(engine, stream, batch_size)
        observed = engine.observe()["shard"]
    busy_max = observed["busy_seconds_max"]
    busy_sum = sum(entry["busy_seconds"] for entry in observed["per_shard"])
    row = {
        "workers": workers,
        "engine": "sharded",
        "wall_seconds": wall,
        "wall_tuples_per_s": len(stream) / wall,
        "busy_seconds_max": busy_max,
        "busy_seconds_sum": busy_sum,
        "critical_path_tuples_per_s": len(stream) / busy_max,
        "frames_sent": observed["frames_sent"],
        "bytes_sent": observed["bytes_sent"],
        "matches": matches,
        "digest": digest,
    }
    print(
        f"  workers={workers:<2d}    wall={wall:7.2f}s  "
        f"{row['wall_tuples_per_s']:8.1f} tup/s  "
        f"critical-path={row['critical_path_tuples_per_s']:8.1f} tup/s  "
        f"matches={matches}"
    )
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true", help="CI smoke dimensions")
    parser.add_argument(
        "--start-method",
        default="fork",
        choices=["spawn", "fork", "forkserver"],
        help="how worker processes are started (fork keeps the sweep fast)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(_HERE), "BENCH_sharding.json"),
    )
    args = parser.parse_args()
    if args.tiny:
        num_queries, length, window, batch_size = 64, 400, 32, 128
        groups, key_domain, selectivity = 4, 4, 0.6
        worker_counts = [1, 2]
    else:
        num_queries, length, window, batch_size = 1024, 2000, 128, 256
        groups, key_domain, selectivity = 16, 3, 0.8
        worker_counts = [1, 2, 4, 8]

    queries, stream = make_workload(
        num_queries, length, window, groups, key_domain, selectivity
    )
    print(
        f"workload: {num_queries} grouped-star queries, {len(stream)} tuples, "
        f"window={window}, batch={batch_size}, start_method={args.start_method}, "
        f"machine_cpus={os.cpu_count()}"
    )
    single = run_single(queries, stream, batch_size)
    scaling: List[Dict] = [
        run_sharded(workers, queries, stream, batch_size, args.start_method)
        for workers in worker_counts
    ]

    digests = {single["digest"]} | {row["digest"] for row in scaling}
    identical = len(digests) == 1
    baseline = scaling[0]
    summary: Dict[str, object] = {
        "queries": num_queries,
        "stream_length": len(stream),
        "machine_cpus": os.cpu_count(),
        "start_method": args.start_method,
        "outputs_identical_all_runs": identical,
        "single_engine_wall_tuples_per_s": single["wall_tuples_per_s"],
        "wall_clock_note": (
            "wall-clock columns are bounded by the machine's core count; "
            "critical_path_tuples_per_s (busiest worker's busy time) is the "
            "core-count-independent scaling metric"
        ),
    }
    for row in scaling[1:]:
        n = row["workers"]
        summary[f"critical_path_speedup_{n}_workers"] = (
            row["critical_path_tuples_per_s"] / baseline["critical_path_tuples_per_s"]
        )
        summary[f"wall_speedup_{n}_workers"] = (
            row["wall_tuples_per_s"] / baseline["wall_tuples_per_s"]
        )
    for key, value in sorted(summary.items()):
        if key.startswith("critical_path_speedup"):
            print(f"  {key} = {value:.2f}x")
    if not identical:
        print("  OUTPUT MISMATCH ACROSS RUNS — results are invalid", file=sys.stderr)

    payload = {
        "benchmark": "sharding",
        "description": (
            "Grouped-star multi-query workload broadcast to N worker processes "
            "each owning 1/N of the query lanes; wall-clock and critical-path "
            "(busiest worker) throughput vs worker count, with in-benchmark "
            "verification that every run's output is bit-identical to the "
            "single shared engine's."
        ),
        "workers": max(worker_counts),
        "workload": {
            "queries": num_queries,
            "groups": groups,
            "arms": 3,
            "key_domain": key_domain,
            "selectivity": selectivity,
            "stream_length": len(stream),
            "window": window,
            "batch_size": batch_size,
        },
        "gc_enabled": False,
        "peak_rss_bytes": peak_rss_bytes(),
        "single_engine": single,
        "scaling": scaling,
        "summary": summary,
    }
    write_benchmark_json(args.output, payload)
    print(f"wrote {args.output}")
    if not identical:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
