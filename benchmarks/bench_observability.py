"""Benchmark — observability overhead and trace determinism.

Two experiments, written to ``BENCH_observability.json``:

* **overhead** — per-tuple update timing on the hot-key fan-out star and
  the union storm, as paired chunk-interleaved ratios (see
  :func:`paired_overhead_ratio` for the methodology):

  - ``baseline``  — the PR 6 tree (commit ``ac822b7``, extracted from git
    with ``git archive``), which predates every observability hook;
  - ``disabled``  — the current tree with **no observer attached**: the
    no-op path whose contract is ≤1.02× of baseline;
  - ``metrics``   — an attached :class:`repro.obs.Observer` with metrics
    only (sampled latency histograms, no trace recorder);
  - ``trace``     — metrics plus a ring-buffered
    :class:`repro.obs.TraceRecorder` at the default 1-in-64 sampling,
    whose contract is ≤1.05× of baseline.

  When the git history is unavailable (shallow CI checkout) the baseline
  column falls back to comparing the *disabled* configuration against
  itself (``summary.baseline_source == "self_ab"``), which turns the
  disabled ratio into an A/B noise floor — the guard below still applies.

* **trace determinism** — the same traced union-storm stream run once
  uninterrupted and once as checkpoint → fresh engine → restore → resume.
  Stream-driven span counts (``tuple``/``union``/``sweep``/``batch``/
  ``enumeration``) and the output sequences must be identical; the resumed
  run's Chrome ``trace_event`` export (Perfetto-loadable) is written next
  to the JSON as ``*.trace.perfetto.json`` (named so the ``BENCH_*.json``
  schema validation never mistakes the trace artifact for a benchmark
  payload).

``--tiny`` shrinks every dimension for CI smoke runs **and enforces the
overhead guard**: the run fails if the disabled-path ratio exceeds 1.05
(the looser tiny bound absorbs small-stream jitter; the checked-in full
run documents the real ≤1.02 margin).

Run as a script: ``PYTHONPATH=src python benchmarks/bench_observability.py``.
"""

from __future__ import annotations

import argparse
import gc
import io
import json
import os
import subprocess
import sys
import tarfile
import tempfile
import time
from typing import Dict, List, Optional, Tuple

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
_SRC = os.path.join(_ROOT, "src")
for path in (_HERE, _SRC):
    if path not in sys.path:
        sys.path.insert(0, path)

#: The commit the disabled-path contract is measured against (PR 6: kernel
#: backends — the last tree with no observability hooks anywhere).
BASELINE_COMMIT = "ac822b7f305a02fc7c05b9826e412aa625e01c28"

#: Span kinds driven by the stream itself; checkpoint/restore spans are
#: lifecycle events and are reported separately.
STREAM_SPAN_KINDS = ("tuple", "union", "sweep", "batch", "enumeration")


# --------------------------------------------------------------------- driver
#
# The timing driver re-executes this file in a subprocess with ``--driver``.
# One driver process hosts exactly TWO configurations — (tree_a, obs_a) and
# (tree_b, obs_b) — each imported as an independent module set (see
# :func:`_load_tree_copy`), and times them chunk-interleaved over the same
# stream.  Top-level imports in this module are stdlib-only so the file can
# re-execute against an arbitrary tree.


def _is_repro_module(name: str) -> bool:
    return name == "repro" or name.startswith("repro.") or name == "workloads"


def _load_tree_copy(tree: str) -> Dict[str, object]:
    """Import ``repro`` + ``workloads`` from ``tree`` as an independent copy.

    Two configurations measured in one process must not share *code
    objects*: CPython's adaptive interpreter keeps inline caches on the
    bytecode, and an attached engine periodically armed with a sampling
    shim re-trains the caches that a disabled engine sharing the same
    ``update`` code object then misses on (a measured systematic few
    percent — as large as the effect under test).  Importing the package
    once per configuration gives every engine its own bytecode and inline
    caches, so the chunk-interleaved comparison isolates the hooks
    themselves.  ``sys.modules`` and ``sys.path`` are restored on exit;
    the returned mapping is the copy's private module set.
    """
    saved_modules = {k: v for k, v in sys.modules.items() if _is_repro_module(k)}
    saved_path = list(sys.path)
    for name in saved_modules:
        del sys.modules[name]
    sys.path.insert(0, os.path.join(tree, "benchmarks"))
    sys.path.insert(0, os.path.join(tree, "src"))
    try:
        import repro.core.evaluation  # noqa: F401
        import workloads  # noqa: F401

        try:
            import repro.obs  # noqa: F401 (absent in the PR 6 baseline tree)
        except ImportError:
            pass
        return {k: v for k, v in sys.modules.items() if _is_repro_module(k)}
    finally:
        for name in [k for k in sys.modules if _is_repro_module(k)]:
            del sys.modules[name]
        sys.modules.update(saved_modules)
        sys.path[:] = saved_path


def _driver_workload(workloads_module, name: str, length: int):
    if name == "fanout_star":
        return workloads_module.fanout_star_workload(
            4, length=length, fan=7, key_domain=2, arm_fraction=0.8
        )
    if name == "union_storm":
        return workloads_module.union_storm_workload(
            4, length=length, variants=8, key_domain=8, arm_fraction=0.75
        )
    raise ValueError(f"unknown workload {name!r}")


def _make_configuration(modules, obs_mode: str, args: argparse.Namespace):
    pcea, stream = _driver_workload(modules["workloads"], args.workload, args.length)
    engine = modules["repro.core.evaluation"].StreamingEvaluator(
        pcea, window=args.window, collect_stats=False
    )
    if obs_mode != "none":
        obs = modules["repro.obs"]
        trace = obs.TraceRecorder() if obs_mode == "trace" else None
        obs.Observer(metrics=obs.MetricsRegistry(), trace=trace).attach(engine)
    return engine, stream


def driver_main(args: argparse.Namespace) -> None:
    """Time (tree_a, obs_a) vs (tree_b, obs_b) chunk-interleaved.

    Host load on a shared box drifts ±5-10 % on second timescales —
    sequential whole-stream runs of two configurations see *different*
    machines, and that drift buries a few-percent hook cost.  Here the two
    engines advance through the same stream a few milliseconds at a time,
    so each chunk compares them under the same instantaneous load, and the
    median of per-chunk ratios is stable to about a percent.  Residual
    bias from load/creation *order* inside the process is cancelled by the
    caller, which runs every comparison in both orientations
    (:func:`paired_overhead_ratio`).
    """
    try:
        # Every driver pins to the same core: chunks then compare like with
        # like (no migration / asymmetric-core noise).
        os.sched_setaffinity(0, {min(os.sched_getaffinity(0))})
    except (AttributeError, OSError):
        pass

    copy_a = _load_tree_copy(os.path.abspath(args.tree_a))
    copy_b = _load_tree_copy(os.path.abspath(args.tree_b))
    engine_a, stream_a = _make_configuration(copy_a, args.obs_a, args)
    engine_b, stream_b = _make_configuration(copy_b, args.obs_b, args)
    # Each copy builds its own (identical-valued) workload so engine code
    # only ever touches objects from its own module set.
    sides = ((engine_a, stream_a), (engine_b, stream_b))

    chunk = max(500, args.length // 32)
    ratios: List[float] = []
    a_us: List[float] = []
    b_us: List[float] = []
    index = 0
    gc.disable()
    try:
        # Two passes over the stream: the engines roll on in steady state
        # and every chunk contributes one paired ratio sample to the median.
        for sweep_pass in range(2):
            for begin in range(0, args.length, chunk):
                end = begin + chunk
                gc.collect()
                elapsed: Dict[int, float] = {}
                for engine, stream in (sides if index % 2 else sides[::-1]):
                    part = stream[begin:end]
                    start = time.perf_counter()
                    # Attribute dispatch per tuple, in every configuration:
                    # armed sampling swaps the entry point around sampled
                    # positions, so hoisting it would freeze one binding and
                    # skew the comparison.
                    for tup in part:
                        engine.update(tup)
                    elapsed[id(engine)] = time.perf_counter() - start
                index += 1
                if sweep_pass == 0 and index <= 2:
                    continue  # warmup: caches and window state still filling
                count = len(stream_a[begin:end])
                a_us.append(elapsed[id(engine_a)] / count * 1e6)
                b_us.append(elapsed[id(engine_b)] / count * 1e6)
                ratios.append(elapsed[id(engine_b)] / elapsed[id(engine_a)])
    finally:
        gc.enable()
    json.dump(
        {
            "a_us_per_tuple": _median(a_us),
            "b_us_per_tuple": _median(b_us),
            "ratio_b_vs_a": _median(ratios),
            "chunks": len(ratios),
        },
        sys.stdout,
    )


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2


def run_pair_driver(
    side_a: Tuple[str, str], side_b: Tuple[str, str], workload: str, length: int, window: int
) -> Dict[str, object]:
    result = subprocess.run(
        [
            sys.executable, os.path.abspath(__file__), "--driver",
            "--tree-a", side_a[0], "--obs-a", side_a[1],
            "--tree-b", side_b[0], "--obs-b", side_b[1],
            "--workload", workload,
            "--length", str(length), "--window", str(window),
        ],
        check=True,
        capture_output=True,
        text=True,
    )
    return json.loads(result.stdout)


def paired_overhead_ratio(
    denominator: Tuple[str, str],
    numerator: Tuple[str, str],
    workload: str,
    length: int,
    window: int,
    rounds: int,
) -> Dict[str, object]:
    """``numerator / denominator`` per-tuple ratio, orientation-balanced.

    Each round launches the pair driver twice with the sides swapped.  A
    single driver process has a systematic few-percent bias from which
    configuration is created (and per chunk, run) first — heap placement of
    the arenas and shared-cache pressure favour one slot — so the round's
    sample is the geometric mean of the forward ratio and the inverted
    reverse ratio, which cancels any slot-linked bias.  The median over
    rounds then discards the odd load-spiked process pair.
    """
    samples: List[float] = []
    denominator_us: List[float] = []
    numerator_us: List[float] = []
    chunks = 0
    for _ in range(rounds):
        forward = run_pair_driver(denominator, numerator, workload, length, window)
        reverse = run_pair_driver(numerator, denominator, workload, length, window)
        samples.append(
            (forward["ratio_b_vs_a"] / reverse["ratio_b_vs_a"]) ** 0.5
        )
        denominator_us.extend([forward["a_us_per_tuple"], reverse["b_us_per_tuple"]])
        numerator_us.extend([forward["b_us_per_tuple"], reverse["a_us_per_tuple"]])
        chunks = forward["chunks"]
    return {
        "ratio": _median(samples),
        "denominator_us_per_tuple": _median(denominator_us),
        "numerator_us_per_tuple": _median(numerator_us),
        "rounds": rounds,
        "chunks": chunks,
    }


# ------------------------------------------------------------------ baseline


def extract_baseline(destination: str) -> Optional[str]:
    """Materialise the PR 6 tree from git; ``None`` on shallow checkouts."""
    try:
        archive = subprocess.run(
            ["git", "-C", _ROOT, "archive", BASELINE_COMMIT],
            check=True,
            capture_output=True,
        )
    except (subprocess.CalledProcessError, OSError):
        return None
    with tarfile.open(fileobj=io.BytesIO(archive.stdout)) as tar:
        tar.extractall(destination)
    if not os.path.isdir(os.path.join(destination, "src", "repro")):
        return None
    _copy_native_kernel(destination)
    return destination


def _copy_native_kernel(destination: str) -> None:
    """Carry the built native-kernel extension into the extracted tree.

    ``git archive`` only materialises sources; without the ``.so`` the
    baseline would silently fall back to the python kernel and the ratios
    would compare different backends.  Copying is only honest while the C
    source is identical in both trees — verified file-by-file here, and the
    baseline keeps its python fallback otherwise.
    """
    import glob
    import shutil

    for so_path in glob.glob(os.path.join(_SRC, "repro", "**", "*.so"), recursive=True):
        relative = os.path.relpath(so_path, _SRC)
        target_dir = os.path.join(destination, "src", os.path.dirname(relative))
        if not os.path.isdir(target_dir):
            continue
        sources_match = True
        for c_path in glob.glob(os.path.join(os.path.dirname(so_path), "*.c")):
            baseline_c = os.path.join(target_dir, os.path.basename(c_path))
            if not os.path.exists(baseline_c):
                sources_match = False
                break
            with open(c_path, "rb") as current, open(baseline_c, "rb") as baseline:
                if current.read() != baseline.read():
                    sources_match = False
                    break
        if sources_match:
            shutil.copy2(so_path, os.path.join(destination, "src", relative))


# ----------------------------------------------------------------- overhead


def overhead_experiment(
    baseline_tree: Optional[str], length: int, window: int, rounds: int
) -> Tuple[List[Dict], str]:
    source = f"git:{BASELINE_COMMIT[:12]}" if baseline_tree else "self_ab"
    baseline = (baseline_tree or _ROOT, "none")
    disabled = (_ROOT, "none")
    rows: List[Dict] = []
    for workload in ("fanout_star", "union_storm"):
        against_baseline = paired_overhead_ratio(
            baseline, disabled, workload, length, window, rounds
        )
        metrics = paired_overhead_ratio(
            disabled, (_ROOT, "metrics"), workload, length, window, rounds
        )
        trace = paired_overhead_ratio(
            disabled, (_ROOT, "trace"), workload, length, window, rounds
        )
        disabled_vs_baseline = against_baseline["ratio"]
        metrics_vs_disabled = metrics["ratio"]
        trace_vs_disabled = trace["ratio"]
        row: Dict[str, object] = {
            "workload": workload,
            "stream_length": length,
            "window": window,
            "baseline_us_per_tuple": against_baseline["denominator_us_per_tuple"],
            "disabled_us_per_tuple": against_baseline["numerator_us_per_tuple"],
            "rounds": rounds,
            "chunks": against_baseline["chunks"],
            "disabled_vs_baseline": disabled_vs_baseline,
            "metrics_vs_disabled": metrics_vs_disabled,
            "trace_vs_disabled": trace_vs_disabled,
            # The contract ratios vs PR 6 compose the two paired measurements
            # (each tight) instead of comparing two drift-separated wall
            # clocks directly.
            "metrics_vs_baseline": disabled_vs_baseline * metrics_vs_disabled,
            "trace_vs_baseline": disabled_vs_baseline * trace_vs_disabled,
        }
        rows.append(row)
        print(
            f"  {workload:<12s} baseline={row['baseline_us_per_tuple']:6.2f}µs  "
            f"disabled={disabled_vs_baseline:.3f}x  metrics={row['metrics_vs_baseline']:.3f}x  "
            f"trace={row['trace_vs_baseline']:.3f}x"
        )
    return rows, source


# ------------------------------------------------------- trace determinism


def _traced_engine(pcea, window: int, sample_every: int):
    from repro.core.evaluation import StreamingEvaluator
    from repro.obs import MetricsRegistry, Observer, TraceRecorder

    trace = TraceRecorder(sample_every=sample_every)
    observer = Observer(metrics=MetricsRegistry(), trace=trace, sample_every=sample_every)
    engine = StreamingEvaluator(pcea, window=window)
    observer.attach(engine)
    return engine, observer, trace


def trace_determinism_experiment(length: int, window: int, trace_path: str) -> Dict:
    """Checkpoint → restore must not change what the trace records.

    Sampling is keyed to the absolute stream position (which the snapshot
    carries), so the resumed run lands on the same grid as the
    uninterrupted one — this experiment pins that down and exports the
    resumed run's trace for Perfetto.
    """
    from workloads import union_storm_workload

    sample_every = 16
    pcea, stream = union_storm_workload(
        4, length=length, variants=8, key_domain=8, arm_fraction=0.75
    )
    midpoint = len(stream) // 2

    engine, _, trace = _traced_engine(pcea, window, sample_every)
    uninterrupted_outputs = [list(engine.process(tup)) for tup in stream]
    uninterrupted_counts = trace.counts()

    first, observer, resumed_trace = _traced_engine(pcea, window, sample_every)
    resumed_outputs = [list(first.process(tup)) for tup in stream[:midpoint]]
    checkpoint = first.snapshot()
    from repro.core.evaluation import StreamingEvaluator

    second = StreamingEvaluator(pcea, window=window)
    observer.attach(second)
    second.restore(checkpoint)
    resumed_outputs += [list(second.process(tup)) for tup in stream[midpoint:]]
    resumed_counts = resumed_trace.counts()

    spans_written = observer.export_trace(trace_path)
    span_counts_identical = all(
        uninterrupted_counts.get(kind, 0) == resumed_counts.get(kind, 0)
        for kind in STREAM_SPAN_KINDS
    )
    result = {
        "stream_length": len(stream),
        "window": window,
        "sample_every": sample_every,
        "checkpoint_position": midpoint,
        "uninterrupted_span_counts": uninterrupted_counts,
        "resumed_span_counts": resumed_counts,
        "span_counts_identical": span_counts_identical,
        "outputs_identical": uninterrupted_outputs == resumed_outputs,
        "checkpoint_spans": resumed_counts.get("checkpoint", 0),
        "restore_spans": resumed_counts.get("restore", 0),
        "trace_artifact": os.path.basename(trace_path),
        "trace_spans_written": spans_written,
    }
    print(
        f"  determinism: spans identical={span_counts_identical} "
        f"(uninterrupted={ {k: uninterrupted_counts.get(k, 0) for k in STREAM_SPAN_KINDS} }, "
        f"resumed adds checkpoint={result['checkpoint_spans']} restore={result['restore_spans']}), "
        f"outputs identical={result['outputs_identical']}"
    )
    print(f"  wrote {trace_path} ({spans_written} trace events)")
    return result


# --------------------------------------------------------------------- main


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true", help="CI smoke dimensions + overhead guard")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--output", default=os.path.join(_ROOT, "BENCH_observability.json"))
    obs_choices = ["none", "metrics", "trace"]
    parser.add_argument("--driver", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--tree-a", default=_ROOT, help=argparse.SUPPRESS)
    parser.add_argument("--obs-a", default="none", choices=obs_choices, help=argparse.SUPPRESS)
    parser.add_argument("--tree-b", default=_ROOT, help=argparse.SUPPRESS)
    parser.add_argument("--obs-b", default="none", choices=obs_choices, help=argparse.SUPPRESS)
    parser.add_argument("--workload", default="union_storm", help=argparse.SUPPRESS)
    parser.add_argument("--length", type=int, default=0, help=argparse.SUPPRESS)
    parser.add_argument("--window", type=int, default=0, help=argparse.SUPPRESS)
    args = parser.parse_args()
    if args.driver:
        driver_main(args)
        return

    from repro.bench.harness import peak_rss_bytes, write_benchmark_json

    if args.tiny:
        length, window, rounds, determinism_length = 4_000, 128, 2, 2_000
    else:
        length, window, rounds, determinism_length = 40_000, 512, 3, 12_000
    if args.repeats is not None:
        rounds = args.repeats

    with tempfile.TemporaryDirectory(prefix="bench_obs_baseline_") as scratch:
        baseline_tree = extract_baseline(scratch)
        print(
            "baseline: "
            + (f"git {BASELINE_COMMIT[:12]} (PR 6 tree)" if baseline_tree else "unavailable — A/B self-comparison")
        )
        print("per-tuple update overhead:")
        rows, baseline_source = overhead_experiment(baseline_tree, length, window, rounds)

    print("trace determinism (union_storm, checkpoint at midpoint):")
    # Named so the ``BENCH_*.json`` schema validation never globs the trace
    # artifact as a benchmark payload.
    output_dir, output_name = os.path.split(os.path.abspath(args.output))
    stem = os.path.splitext(output_name)[0]
    if stem.startswith("BENCH_"):
        stem = stem[len("BENCH_"):]
    trace_path = os.path.join(output_dir, f"{stem}.trace.perfetto.json")
    determinism = trace_determinism_experiment(determinism_length, window, trace_path)

    disabled_ratio = max(row["disabled_vs_baseline"] for row in rows)
    metrics_ratio = max(row["metrics_vs_baseline"] for row in rows)
    trace_ratio = max(row["trace_vs_baseline"] for row in rows)
    summary: Dict[str, object] = {
        "baseline_source": baseline_source,
        "disabled_max_ratio_vs_baseline": disabled_ratio,
        "metrics_max_ratio_vs_baseline": metrics_ratio,
        "trace_max_ratio_vs_baseline": trace_ratio,
        "disabled_within_1_02": disabled_ratio <= 1.02,
        "trace_within_1_05": trace_ratio <= 1.05,
        "span_counts_identical_after_restore": determinism["span_counts_identical"],
        "outputs_identical_after_restore": determinism["outputs_identical"],
        "trace_artifact": determinism["trace_artifact"],
    }
    payload = {
        "benchmark": "observability",
        "description": (
            "Per-tuple overhead of the repro.obs hooks (disabled path vs the "
            "pre-observability PR 6 baseline, metrics-only, and 1-in-64 sampled "
            "tracing) plus checkpoint/restore trace determinism."
        ),
        "baseline_commit": BASELINE_COMMIT,
        "gc_enabled": False,
        "peak_rss_bytes": peak_rss_bytes(),
        "overhead": rows,
        "trace_determinism": determinism,
        "summary": summary,
    }
    write_benchmark_json(args.output, payload)
    print(f"wrote {args.output}")

    if args.tiny:
        # The CI guard: small streams jitter, so the tiny bound is 1.05; the
        # checked-in full run is where the ≤1.02 contract is demonstrated.
        if disabled_ratio > 1.05:
            sys.exit(f"overhead guard FAILED: disabled path {disabled_ratio:.3f}x > 1.05x baseline")
        if not determinism["span_counts_identical"]:
            sys.exit("trace determinism FAILED: span counts diverge after restore")
        print(f"overhead guard OK: disabled {disabled_ratio:.3f}x <= 1.05x")


if __name__ == "__main__":
    main()
