"""Experiment E9 — end-to-end throughput of DSL-compiled CER patterns.

Measures the full pipeline (pattern → PCEA → Algorithm 1) on the two motivating
scenarios (market data and sensor network), for both unordered (conjunctive)
and sequenced patterns, reporting events/second and matches found.  This is the
"does the system hold together" experiment rather than a single claim from the
paper.
"""

import time

import pytest

from repro.bench.harness import format_table
from repro.core.evaluation import StreamingEvaluator
from repro.engine.compiler import compile_pattern
from repro.engine.dsl import atom, conjunction, sequence
from repro.streams.generators import SensorStreamGenerator, StockStreamGenerator

from workloads import drain


WINDOW = 80
STREAM_LENGTH = 2_000


def market_patterns():
    return {
        "market/conjunction": conjunction(
            atom("News", "s"), atom("Buy", "s", "p"), atom("Sell", "s", "q")
        ),
        "market/sequence": sequence(
            atom("News", "s"), atom("Buy", "s", "p"), atom("Sell", "s", "q")
        ),
        "market/filtered": conjunction(
            atom("News", "s"),
            atom("Buy", "s", "p", filters=[("p", ">", 25)]),
            atom("Sell", "s", "q", filters=[("q", "<", 25)]),
        ),
    }


def sensor_patterns():
    return {
        "sensor/conjunction": conjunction(
            atom("Alarm", "s"), atom("Temp", "s", "t"), atom("Humid", "s", "h")
        ),
        "sensor/escalation": sequence(
            conjunction(atom("Temp", "s", "t", filters=[("t", ">", 80)]), atom("Humid", "s", "h")),
            atom("Alarm", "s"),
        ),
    }


def workload_for(name: str):
    if name.startswith("market"):
        return StockStreamGenerator(symbols=20, news_probability=0.1, seed=3).stream(STREAM_LENGTH)
    return SensorStreamGenerator(sensors=12, alarm_probability=0.06, seed=3).stream(STREAM_LENGTH)


ALL_PATTERNS = {**market_patterns(), **sensor_patterns()}


@pytest.mark.parametrize("name", sorted(ALL_PATTERNS))
def test_pattern_throughput(benchmark, name):
    pattern = ALL_PATTERNS[name]
    stream = workload_for(name).materialise()
    pcea = compile_pattern(pattern)

    def run():
        return drain(StreamingEvaluator(pcea, window=WINDOW), stream)

    matches = benchmark(run)
    assert matches >= 0


def test_end_to_end_summary(benchmark):
    def sweep():
        rows = []
        for name, pattern in sorted(ALL_PATTERNS.items()):
            stream = workload_for(name).materialise()
            pcea = compile_pattern(pattern)
            engine = StreamingEvaluator(pcea, window=WINDOW)
            start = time.perf_counter()
            matches = drain(engine, stream)
            elapsed = time.perf_counter() - start
            rows.append(
                (
                    name,
                    pcea.size(),
                    matches,
                    f"{len(stream) / elapsed / 1000:.1f}k ev/s",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"E9: end-to-end throughput (window {WINDOW}, {STREAM_LENGTH} events per stream)")
    print(format_table(["pattern", "|P|", "matches", "throughput"], rows))
    assert any(matches > 0 for _, _, matches, _ in rows)
