"""Shared workload builders for the benchmark suite.

Each experiment file (``bench_*.py``) imports from here so that all experiments
run on the same family of synthetic workloads: the parametric star-HCQ of
:class:`repro.streams.generators.HCQWorkloadGenerator` plus the two CER
scenarios.  Keeping workload construction in one place also makes the numbers
recorded in EXPERIMENTS.md easy to regenerate.
"""

from __future__ import annotations

from typing import List

from repro.core.evaluation import StreamingEvaluator
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.cq.query import ConjunctiveQuery
from repro.cq.schema import Tuple
from repro.streams.generators import HCQWorkloadGenerator


DEFAULT_ARMS = 3
DEFAULT_KEY_DOMAIN = 32


def star_workload(
    length: int,
    arms: int = DEFAULT_ARMS,
    key_domain: int = DEFAULT_KEY_DOMAIN,
    seed: int = 0,
) -> tuple[ConjunctiveQuery, List[Tuple]]:
    """A star HCQ and a materialised random stream for it."""
    generator = HCQWorkloadGenerator(arms=arms, key_domain=key_domain, seed=seed)
    return generator.query(), generator.stream(length).materialise()


def hot_star_workload(
    length: int,
    arms: int = 2,
    hot_fraction: float = 0.6,
    seed: int = 0,
) -> tuple[ConjunctiveQuery, List[Tuple]]:
    """A star workload with a skewed key so many outputs fire per position."""
    generator = HCQWorkloadGenerator(arms=arms, key_domain=64, seed=seed)
    return generator.query(), generator.hot_key_stream(length, hot_fraction).materialise()


def streaming_engine(query: ConjunctiveQuery, window: int) -> StreamingEvaluator:
    return StreamingEvaluator(hcq_to_pcea(query), window=window)


def drain(engine, stream) -> int:
    """Process a whole stream, counting (but not storing) the outputs."""
    outputs = 0
    for tup in stream:
        outputs += len(engine.process(tup))
    return outputs


def update_only(engine: StreamingEvaluator, stream) -> None:
    """Run only the update phase of Algorithm 1 over the stream (no enumeration)."""
    for tup in stream:
        engine.update(tup)
