"""Shared workload builders for the benchmark suite.

Each experiment file (``bench_*.py``) imports from here so that all experiments
run on the same family of synthetic workloads: the parametric star-HCQ of
:class:`repro.streams.generators.HCQWorkloadGenerator` plus the two CER
scenarios.  Keeping workload construction in one place also makes the numbers
recorded in EXPERIMENTS.md easy to regenerate.
"""

from __future__ import annotations

import random
from typing import List, Tuple as Tup

from repro.core.evaluation import StreamingEvaluator
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.core.pcea import PCEA
from repro.cq.query import ConjunctiveQuery
from repro.cq.schema import Tuple
from repro.engine.compiler import compile_pattern
from repro.engine.dsl import atom, conjunction, disjunction
from repro.streams.generators import HCQWorkloadGenerator


DEFAULT_ARMS = 3
DEFAULT_KEY_DOMAIN = 32


def star_workload(
    length: int,
    arms: int = DEFAULT_ARMS,
    key_domain: int = DEFAULT_KEY_DOMAIN,
    seed: int = 0,
) -> tuple[ConjunctiveQuery, List[Tuple]]:
    """A star HCQ and a materialised random stream for it."""
    generator = HCQWorkloadGenerator(arms=arms, key_domain=key_domain, seed=seed)
    return generator.query(), generator.stream(length).materialise()


def hot_star_workload(
    length: int,
    arms: int = 2,
    hot_fraction: float = 0.6,
    seed: int = 0,
) -> tuple[ConjunctiveQuery, List[Tuple]]:
    """A star workload with a skewed key so many outputs fire per position."""
    generator = HCQWorkloadGenerator(arms=arms, key_domain=64, seed=seed)
    return generator.query(), generator.hot_key_stream(length, hot_fraction).materialise()


PAYLOAD_DOMAIN = 1_000


def multi_star_workload(
    groups: int,
    length: int,
    arms: int = 2,
    key_domain: int = 32,
    selectivity: float = 1.0,
    seed: int = 0,
) -> Tup[PCEA, List[Tuple]]:
    """A multi-pattern PCEA (disjoint union of ``groups`` star patterns) + stream.

    Each group ``g`` is the star conjunction over its private relation
    alphabet ``G<g>R1 ... G<g>R<arms>``, so the compiled automaton has
    ``2·arms·groups`` transitions of which only one group's worth can fire on
    any tuple — the workload where the transition dispatch index matters and
    the seed engine's full per-tuple scan is pure overhead.

    ``selectivity < 1`` adds a local payload filter ``y < selectivity·domain``
    to every atom, the typical CER situation where most events fail their
    pattern's local predicate and transitions rarely fire.

    The stream draws a group, a relation within the group, a join key and a
    payload uniformly at random.
    """
    threshold = int(PAYLOAD_DOMAIN * selectivity)
    selective = selectivity < 1.0

    def make_atom(g: int, j: int):
        filters = [(f"y{j}", "<", threshold)] if selective else []
        return atom(f"G{g}R{j}", "x", f"y{j}", filters=filters)

    parts = [
        conjunction(*(make_atom(g, j) for j in range(1, arms + 1))) for g in range(groups)
    ]
    pattern = disjunction(*parts) if groups > 1 else parts[0]
    pcea = compile_pattern(pattern)
    rng = random.Random(seed)
    relations = [f"G{g}R{j}" for g in range(groups) for j in range(1, arms + 1)]
    stream = [
        Tuple(rng.choice(relations), (rng.randrange(key_domain), rng.randrange(PAYLOAD_DOMAIN)))
        for _ in range(length)
    ]
    return pcea, stream


def streaming_engine(query: ConjunctiveQuery, window: int) -> StreamingEvaluator:
    return StreamingEvaluator(hcq_to_pcea(query), window=window)


def drain(engine, stream) -> int:
    """Process a whole stream, counting (but not storing) the outputs."""
    outputs = 0
    for tup in stream:
        outputs += len(engine.process(tup))
    return outputs


def update_only(engine: StreamingEvaluator, stream) -> None:
    """Run only the update phase of Algorithm 1 over the stream (no enumeration)."""
    for tup in stream:
        engine.update(tup)
